//! Darshan-style I/O instrumentation.
//!
//! The paper verifies its tuning with two kinds of profile data: per-rank
//! I/O time distributions (Figs. 9–11) and Darshan write-activity plots
//! (Fig. 12). This crate collects the same information from a simulated (or
//! real) run: a [`Timeline`] of per-rank op intervals, from which the
//! distribution series, activity Gantt rows, and counter summaries are
//! derived.

pub mod counters;

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use rbio_sim::SimTime;

/// The kind of operation an interval covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// File open/create (metadata).
    Open,
    /// File write.
    Write,
    /// File read.
    Read,
    /// File close (metadata).
    Close,
    /// Message send (handoff portion).
    Send,
    /// Message receive (blocked portion).
    Recv,
    /// Barrier wait.
    Barrier,
    /// Local memory copy.
    Pack,
    /// Application computation.
    Compute,
    /// Atomic checkpoint publication (footer + rename, metadata).
    Commit,
    /// A write attempt repeated after a transient error.
    Retry,
    /// Background work (flush/close/commit) a pipelined writer overlaps
    /// with its foreground aggregation; the interval covers the hidden
    /// portion, so writer busy time = Write + Overlap while the rank's
    /// critical path only carries Write.
    Overlap,
}

impl OpKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [OpKind; 12] = [
        OpKind::Open,
        OpKind::Write,
        OpKind::Read,
        OpKind::Close,
        OpKind::Send,
        OpKind::Recv,
        OpKind::Barrier,
        OpKind::Pack,
        OpKind::Compute,
        OpKind::Commit,
        OpKind::Retry,
        OpKind::Overlap,
    ];

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Write => "write",
            OpKind::Read => "read",
            OpKind::Close => "close",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::Barrier => "barrier",
            OpKind::Pack => "pack",
            OpKind::Compute => "compute",
            OpKind::Commit => "commit",
            OpKind::Retry => "retry",
            OpKind::Overlap => "overlap",
        }
    }
}

/// One recorded interval.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Rank the op ran on.
    pub rank: u32,
    /// Kind.
    pub kind: OpKind,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Bytes moved (0 for barriers etc.).
    pub bytes: u64,
}

/// One write burst in a Fig.-12-style activity row: `(start, end, bytes)`.
pub type WriteInterval = (SimTime, SimTime, u64);

/// A run's recorded intervals plus the derived views the paper's plots
/// need.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    intervals: Vec<Interval>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval.
    pub fn record(&mut self, rank: u32, kind: OpKind, start: SimTime, end: SimTime, bytes: u64) {
        debug_assert!(end >= start);
        self.intervals.push(Interval {
            rank,
            kind,
            start,
            end,
            bytes,
        });
    }

    /// All intervals, in recording order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Per-rank completion time of the last interval (Figs. 9–11 plot this
    /// per rank). Ranks with no intervals report `SimTime::ZERO`.
    pub fn per_rank_finish(&self, nranks: u32) -> Vec<SimTime> {
        let mut out = vec![SimTime::ZERO; nranks as usize];
        for iv in &self.intervals {
            let slot = &mut out[iv.rank as usize];
            *slot = (*slot).max(iv.end);
        }
        out
    }

    /// Total bytes moved by ops of `kind`.
    pub fn bytes_of(&self, kind: OpKind) -> u64 {
        self.intervals
            .iter()
            .filter(|iv| iv.kind == kind)
            .map(|iv| iv.bytes)
            .sum()
    }

    /// Number of ops of `kind`.
    pub fn count_of(&self, kind: OpKind) -> u64 {
        self.intervals.iter().filter(|iv| iv.kind == kind).count() as u64
    }

    /// Busy time (sum of interval lengths) of `kind` on `rank`.
    pub fn busy_of(&self, rank: u32, kind: OpKind) -> SimTime {
        self.intervals
            .iter()
            .filter(|iv| iv.rank == rank && iv.kind == kind)
            .map(|iv| iv.end - iv.start)
            .sum()
    }

    /// Duration of the longest single interval of `kind` across all ranks
    /// (`SimTime::ZERO` when none was recorded). The perceived-bandwidth
    /// counters use this for the slowest observed handoff.
    pub fn longest_of(&self, kind: OpKind) -> SimTime {
        self.intervals
            .iter()
            .filter(|iv| iv.kind == kind)
            .map(|iv| iv.end - iv.start)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Write-activity rows (Fig. 12): for each rank that wrote, the sorted
    /// list of its write intervals `(start, end, bytes)`.
    pub fn write_activity(&self) -> Vec<(u32, Vec<WriteInterval>)> {
        let mut per_rank: std::collections::BTreeMap<u32, Vec<WriteInterval>> =
            std::collections::BTreeMap::new();
        for iv in &self.intervals {
            if iv.kind == OpKind::Write {
                per_rank
                    .entry(iv.rank)
                    .or_default()
                    .push((iv.start, iv.end, iv.bytes));
            }
        }
        per_rank
            .into_iter()
            .map(|(r, mut v)| {
                v.sort_by_key(|&(s, ..)| s);
                (r, v)
            })
            .collect()
    }

    /// Counter summary table as text (a Darshan-log-like digest).
    pub fn counter_report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>16} {:>14}",
            "op", "count", "bytes", "busy (s)"
        );
        for kind in OpKind::ALL {
            let count = self.count_of(kind);
            if count == 0 {
                continue;
            }
            let bytes = self.bytes_of(kind);
            let busy: SimTime = self
                .intervals
                .iter()
                .filter(|iv| iv.kind == kind)
                .map(|iv| iv.end - iv.start)
                .sum();
            let _ = writeln!(
                s,
                "{:<10} {:>10} {:>16} {:>14.6}",
                kind.label(),
                count,
                bytes,
                busy.as_secs_f64()
            );
        }
        s
    }

    /// ASCII activity strip for Fig.-12-style visual inspection: one row
    /// per writing rank, `cols` buckets from t=0 to `horizon`, `#` where the
    /// rank was writing. Rows are capped at `max_rows` (evenly sampled).
    pub fn activity_ascii(&self, horizon: SimTime, cols: usize, max_rows: usize) -> String {
        let rows = self.write_activity();
        let n = rows.len();
        if n == 0 || cols == 0 {
            return String::new();
        }
        let step = n.div_ceil(max_rows.max(1));
        let mut out = String::new();
        let h = horizon.as_secs_f64().max(1e-12);
        for (rank, ivs) in rows.iter().step_by(step) {
            let mut line = vec![b'.'; cols];
            for &(s, e, _) in ivs {
                let c0 = ((s.as_secs_f64() / h) * cols as f64) as usize;
                let c1 = ((e.as_secs_f64() / h) * cols as f64).ceil() as usize;
                for c in line.iter_mut().take(c1.min(cols)).skip(c0.min(cols)) {
                    *c = b'#';
                }
            }
            let _ = writeln!(
                out,
                "{:>8} |{}|",
                rank,
                String::from_utf8(line).expect("ascii")
            );
        }
        out
    }
}

impl OpKind {
    /// Parse a [`OpKind::label`] back.
    pub fn from_label(s: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Serialize a timeline as a "darshan-lite" CSV log:
/// `rank,op,start_ns,end_ns,bytes` per line, with a header row. The format
/// is stable and diff-friendly so logs can be archived next to experiment
/// results.
pub fn write_csv(tl: &Timeline, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "rank,op,start_ns,end_ns,bytes")?;
    for iv in tl.intervals() {
        writeln!(
            w,
            "{},{},{},{},{}",
            iv.rank,
            iv.kind.label(),
            iv.start.as_nanos(),
            iv.end.as_nanos(),
            iv.bytes
        )?;
    }
    Ok(())
}

/// Parse a CSV log written by [`write_csv`].
pub fn read_csv(r: impl BufRead) -> io::Result<Timeline> {
    let mut tl = Timeline::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.is_empty() {
            continue; // header
        }
        let mut f = line.split(',');
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {line}", lineno + 1),
            )
        };
        let rank: u32 = f.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
        let kind = f.next().and_then(OpKind::from_label).ok_or_else(bad)?;
        let start: u64 = f.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
        let end: u64 = f.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
        let bytes: u64 = f.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
        if end < start {
            return Err(bad());
        }
        tl.record(
            rank,
            kind,
            SimTime::from_nanos(start),
            SimTime::from_nanos(end),
            bytes,
        );
    }
    Ok(tl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.record(0, OpKind::Open, t(0), t(1), 0);
        tl.record(0, OpKind::Write, t(1), t(5), 1000);
        tl.record(0, OpKind::Write, t(6), t(8), 500);
        tl.record(0, OpKind::Close, t(8), t(9), 0);
        tl.record(1, OpKind::Send, t(0), t(2), 1500);
        tl
    }

    #[test]
    fn per_rank_finish_takes_max_end() {
        let tl = sample();
        let fin = tl.per_rank_finish(3);
        assert_eq!(fin[0], t(9));
        assert_eq!(fin[1], t(2));
        assert_eq!(fin[2], SimTime::ZERO);
    }

    #[test]
    fn counters() {
        let tl = sample();
        assert_eq!(tl.count_of(OpKind::Write), 2);
        assert_eq!(tl.bytes_of(OpKind::Write), 1500);
        assert_eq!(tl.bytes_of(OpKind::Send), 1500);
        assert_eq!(tl.busy_of(0, OpKind::Write), t(6));
        assert_eq!(tl.count_of(OpKind::Read), 0);
        assert_eq!(tl.len(), 5);
        assert!(!tl.is_empty());
    }

    #[test]
    fn write_activity_rows_sorted() {
        let mut tl = sample();
        tl.record(0, OpKind::Write, t(0), t(1), 1); // out of order on purpose
        let act = tl.write_activity();
        assert_eq!(act.len(), 1);
        let (rank, ivs) = &act[0];
        assert_eq!(*rank, 0);
        assert_eq!(ivs.len(), 3);
        assert!(ivs.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn counter_report_mentions_active_kinds_only() {
        let tl = sample();
        let rep = tl.counter_report();
        assert!(rep.contains("write"));
        assert!(rep.contains("send"));
        assert!(!rep.contains("read"));
    }

    #[test]
    fn ascii_activity_marks_busy_buckets() {
        let tl = sample();
        let art = tl.activity_ascii(t(10), 10, 10);
        // Rank 0 writes in [1,5) and [6,8) out of 10ms -> buckets 1-4 and 6-7.
        let line = art.lines().next().unwrap();
        assert!(line.contains('#'));
        assert!(line.starts_with("       0 |"));
        let cells: Vec<char> = line.chars().skip(10).take(10).collect();
        assert_eq!(cells[0], '.');
        assert_eq!(cells[2], '#');
        assert_eq!(cells[5], '.');
        assert_eq!(cells[6], '#');
    }

    #[test]
    fn csv_round_trip() {
        let tl = sample();
        let mut buf = Vec::new();
        write_csv(&tl, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("rank,op,start_ns,end_ns,bytes\n"));
        assert_eq!(text.lines().count(), 1 + tl.len());
        let back = read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), tl.len());
        assert_eq!(back.bytes_of(OpKind::Write), tl.bytes_of(OpKind::Write));
        assert_eq!(back.per_rank_finish(3), tl.per_rank_finish(3));
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = "rank,op,start_ns,end_ns,bytes\n1,write,10,5,0\n";
        assert!(read_csv(std::io::BufReader::new(bad.as_bytes())).is_err());
        let bad2 = "rank,op,start_ns,end_ns,bytes\n1,frobnicate,0,5,0\n";
        assert!(read_csv(std::io::BufReader::new(bad2.as_bytes())).is_err());
    }

    #[test]
    fn longest_of_picks_the_slowest_single_interval() {
        let tl = sample();
        assert_eq!(tl.longest_of(OpKind::Write), t(4)); // [1,5)
        assert_eq!(tl.longest_of(OpKind::Send), t(2));
        assert_eq!(tl.longest_of(OpKind::Overlap), SimTime::ZERO);
    }

    #[test]
    fn overlap_kind_round_trips_through_csv() {
        let mut tl = Timeline::new();
        tl.record(3, OpKind::Overlap, t(2), t(7), 4096);
        let mut buf = Vec::new();
        write_csv(&tl, &mut buf).unwrap();
        let back = read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.count_of(OpKind::Overlap), 1);
        assert_eq!(back.bytes_of(OpKind::Overlap), 4096);
        assert_eq!(back.busy_of(3, OpKind::Overlap), t(5));
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in OpKind::ALL {
            assert_eq!(OpKind::from_label(k.label()), Some(k));
        }
        assert_eq!(OpKind::from_label("nope"), None);
    }

    #[test]
    fn empty_timeline_is_safe() {
        let tl = Timeline::new();
        assert!(tl.is_empty());
        assert_eq!(tl.per_rank_finish(2), vec![SimTime::ZERO; 2]);
        assert_eq!(tl.activity_ascii(t(1), 10, 5), "");
    }
}
