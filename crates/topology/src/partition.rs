//! Compute partitions: ranks, nodes, cores, and psets.
//!
//! On the Blue Gene/P a job runs on a *partition* — a torus-shaped block of
//! compute nodes. In "virtual node" (VN) mode each of the four cores runs
//! one MPI rank. Every 64 compute nodes form a *pset* served by one I/O
//! node (ION); all filesystem traffic from those nodes funnels through that
//! ION, which is why aggregator placement is pset-aware.

use crate::torus::{NodeId, Torus3d};

/// A pset index (one ION per pset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pset(pub u32);

/// Geometry of a compute partition.
#[derive(Debug, Clone, Copy)]
pub struct PartitionSpec {
    /// The torus of compute nodes.
    pub torus: Torus3d,
    /// MPI ranks per node (4 in VN mode, 1 in SMP mode).
    pub ranks_per_node: u32,
    /// Compute nodes per pset (64 on Intrepid).
    pub nodes_per_pset: u32,
}

impl PartitionSpec {
    /// Intrepid-style partition for `np` MPI ranks in VN mode.
    ///
    /// Chooses a near-cubic torus shape for `np/4` nodes, matching the
    /// standard partition shapes on the real machine. `np` must be a
    /// multiple of 256 (one pset of 64 nodes × 4 ranks) and a power of two,
    /// which covers every configuration in the paper (16Ki–64Ki ranks).
    pub fn intrepid_vn(np: u32) -> Self {
        assert!(np.is_power_of_two(), "np must be a power of two, got {np}");
        assert!(
            np >= 256,
            "np must be at least one pset (256 ranks), got {np}"
        );
        let nodes = np / 4;
        let dims = near_cubic_dims(nodes);
        PartitionSpec {
            torus: Torus3d::new(dims),
            ranks_per_node: 4,
            nodes_per_pset: 64,
        }
    }

    /// A small partition for tests: `nodes` nodes, `ranks_per_node` ranks
    /// each, `nodes_per_pset` nodes per pset.
    pub fn custom(dims: [u32; 3], ranks_per_node: u32, nodes_per_pset: u32) -> Self {
        assert!(ranks_per_node >= 1);
        assert!(nodes_per_pset >= 1);
        PartitionSpec {
            torus: Torus3d::new(dims),
            ranks_per_node,
            nodes_per_pset,
        }
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> u32 {
        self.torus.num_nodes()
    }

    /// Number of MPI ranks.
    pub fn num_ranks(&self) -> u32 {
        self.num_nodes() * self.ranks_per_node
    }

    /// Number of psets (== number of IONs). Partial trailing psets are
    /// allowed for odd test geometries.
    pub fn num_psets(&self) -> u32 {
        self.num_nodes().div_ceil(self.nodes_per_pset)
    }

    /// The compute node hosting `rank` (TXYZ-style: consecutive ranks fill a
    /// node's cores first).
    pub fn node_of_rank(&self, rank: u32) -> NodeId {
        debug_assert!(rank < self.num_ranks());
        NodeId(rank / self.ranks_per_node)
    }

    /// The core index (0-based within the node) hosting `rank`.
    pub fn core_of_rank(&self, rank: u32) -> u32 {
        rank % self.ranks_per_node
    }

    /// Ranks hosted by `node`, in order.
    pub fn ranks_of_node(&self, node: NodeId) -> std::ops::Range<u32> {
        let lo = node.0 * self.ranks_per_node;
        lo..lo + self.ranks_per_node
    }

    /// The pset containing `node`.
    pub fn pset_of_node(&self, node: NodeId) -> Pset {
        Pset(node.0 / self.nodes_per_pset)
    }

    /// The pset containing `rank`.
    pub fn pset_of_rank(&self, rank: u32) -> Pset {
        self.pset_of_node(self.node_of_rank(rank))
    }

    /// Ranks in `pset`, in order.
    pub fn ranks_of_pset(&self, pset: Pset) -> std::ops::Range<u32> {
        let node_lo = pset.0 * self.nodes_per_pset;
        let node_hi = (node_lo + self.nodes_per_pset).min(self.num_nodes());
        node_lo * self.ranks_per_node..node_hi * self.ranks_per_node
    }

    /// Ranks per pset for a full pset.
    pub fn ranks_per_pset(&self) -> u32 {
        self.nodes_per_pset * self.ranks_per_node
    }

    /// Choose `count` aggregator/writer ranks spread evenly over the
    /// partition, at most one per node, balanced across psets — the way the
    /// Blue Gene MPI-IO library places its `bgp_nodes_pset` aggregators
    /// (§V-B of the paper).
    ///
    /// `count` is clamped to the number of nodes. The returned ranks are
    /// sorted and distinct.
    pub fn spread_aggregators(&self, count: u32) -> Vec<u32> {
        let nodes = self.num_nodes();
        let count = count.clamp(1, nodes);
        // Even stride over node ids; node ids group by pset, so an even
        // stride also balances psets.
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            // i * nodes / count spreads without overflow for our sizes.
            let node = (i as u64 * nodes as u64 / count as u64) as u32;
            out.push(node * self.ranks_per_node);
        }
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        out
    }
}

/// Near-cubic torus dimensions for `nodes` (a power of two): factors into
/// `2^a × 2^b × 2^c` with `a ≥ b ≥ c` and `a - c ≤ 1`.
fn near_cubic_dims(nodes: u32) -> [u32; 3] {
    assert!(nodes.is_power_of_two());
    let log = nodes.trailing_zeros();
    let a = log.div_ceil(3);
    let b = (log - a).div_ceil(2);
    let c = log - a - b;
    [1 << a, 1 << b, 1 << c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_cubic_shapes() {
        assert_eq!(near_cubic_dims(4096), [16, 16, 16]);
        assert_eq!(near_cubic_dims(8192), [32, 16, 16]);
        assert_eq!(near_cubic_dims(16384), [32, 32, 16]);
        assert_eq!(near_cubic_dims(1), [1, 1, 1]);
        assert_eq!(near_cubic_dims(2), [2, 1, 1]);
    }

    #[test]
    fn intrepid_vn_paper_sizes() {
        for np in [16384u32, 32768, 65536] {
            let p = PartitionSpec::intrepid_vn(np);
            assert_eq!(p.num_ranks(), np);
            assert_eq!(p.num_nodes(), np / 4);
            assert_eq!(p.num_psets(), np / 256);
            assert_eq!(p.ranks_per_pset(), 256);
        }
    }

    #[test]
    fn rank_node_core_mapping() {
        let p = PartitionSpec::intrepid_vn(16384);
        assert_eq!(p.node_of_rank(0), NodeId(0));
        assert_eq!(p.node_of_rank(3), NodeId(0));
        assert_eq!(p.node_of_rank(4), NodeId(1));
        assert_eq!(p.core_of_rank(6), 2);
        assert_eq!(p.ranks_of_node(NodeId(2)), 8..12);
    }

    #[test]
    fn pset_mapping() {
        let p = PartitionSpec::intrepid_vn(16384);
        assert_eq!(p.pset_of_rank(0), Pset(0));
        assert_eq!(p.pset_of_rank(255), Pset(0));
        assert_eq!(p.pset_of_rank(256), Pset(1));
        assert_eq!(p.ranks_of_pset(Pset(1)), 256..512);
    }

    #[test]
    fn partial_trailing_pset() {
        // 6 nodes, 4 per pset -> 2 psets; the second has 2 nodes.
        let p = PartitionSpec::custom([6, 1, 1], 2, 4);
        assert_eq!(p.num_psets(), 2);
        assert_eq!(p.ranks_of_pset(Pset(0)), 0..8);
        assert_eq!(p.ranks_of_pset(Pset(1)), 8..12);
    }

    #[test]
    fn aggregator_spread_is_even_one_per_node() {
        let p = PartitionSpec::intrepid_vn(16384); // 4096 nodes
        let aggs = p.spread_aggregators(256); // 64:1 ratio
        assert_eq!(aggs.len(), 256);
        // Distinct nodes, even stride of 16 nodes.
        let nodes: Vec<u32> = aggs.iter().map(|&r| p.node_of_rank(r).0).collect();
        assert!(nodes.windows(2).all(|w| w[1] - w[0] == 16));
        // Balanced across psets: 4096/64 = 64 psets, 256 aggs -> 4 per pset.
        let mut per_pset = vec![0u32; p.num_psets() as usize];
        for &r in &aggs {
            per_pset[p.pset_of_rank(r).0 as usize] += 1;
        }
        assert!(per_pset.iter().all(|&c| c == 4));
    }

    #[test]
    fn aggregator_count_clamps_to_nodes() {
        let p = PartitionSpec::custom([2, 2, 1], 4, 4);
        let aggs = p.spread_aggregators(100);
        assert_eq!(aggs.len(), 4); // one per node max
        let aggs1 = p.spread_aggregators(0);
        assert_eq!(aggs1.len(), 1);
    }
}
