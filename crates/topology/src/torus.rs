//! 3-D torus geometry and dimension-order routing.

/// A compute node, numbered `0..num_nodes` in x-fastest order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A unidirectional torus link, identified as `(source node, direction)`.
/// Direction encoding: `0,1` = ±x, `2,3` = ±y, `4,5` = ±z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Number of torus directions per node (±x, ±y, ±z).
pub const NUM_DIRS: u32 = 6;

/// An `(x, y, z)` coordinate on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// X coordinate.
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
    /// Z coordinate.
    pub z: u32,
}

/// A 3-D torus of `dims[0] × dims[1] × dims[2]` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus3d {
    dims: [u32; 3],
}

impl Torus3d {
    /// A torus with the given dimensions (each at least 1).
    pub fn new(dims: [u32; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "torus dims must be >= 1");
        Torus3d { dims }
    }

    /// The torus dimensions.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total node count.
    pub fn num_nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Total unidirectional link count (`6 × nodes`).
    pub fn num_links(&self) -> u32 {
        self.num_nodes() * NUM_DIRS
    }

    /// Coordinate of a node id (x varies fastest).
    pub fn coord(&self, n: NodeId) -> Coord {
        let [dx, dy, _] = self.dims;
        debug_assert!(n.0 < self.num_nodes());
        Coord {
            x: n.0 % dx,
            y: (n.0 / dx) % dy,
            z: n.0 / (dx * dy),
        }
    }

    /// Node id of a coordinate.
    pub fn node(&self, c: Coord) -> NodeId {
        let [dx, dy, dz] = self.dims;
        debug_assert!(c.x < dx && c.y < dy && c.z < dz);
        NodeId(c.x + dx * (c.y + dy * c.z))
    }

    /// The outgoing link of `n` in direction `dir` (see [`LinkId`] encoding).
    pub fn link(&self, n: NodeId, dir: u32) -> LinkId {
        debug_assert!(dir < NUM_DIRS);
        LinkId(n.0 * NUM_DIRS + dir)
    }

    /// Neighbour of `n` in direction `dir`, with wrap-around.
    pub fn neighbor(&self, n: NodeId, dir: u32) -> NodeId {
        let mut c = self.coord(n);
        let axis = (dir / 2) as usize;
        let d = self.dims[axis];
        let mut vals = [c.x, c.y, c.z];
        vals[axis] = if dir.is_multiple_of(2) {
            (vals[axis] + 1) % d
        } else {
            (vals[axis] + d - 1) % d
        };
        [c.x, c.y, c.z] = vals;
        self.node(c)
    }

    /// Wrap-around (torus) Manhattan distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let axis = |p: u32, q: u32, d: u32| {
            let fwd = (q + d - p) % d;
            fwd.min((d - fwd) % d)
        };
        axis(ca.x, cb.x, self.dims[0])
            + axis(ca.y, cb.y, self.dims[1])
            + axis(ca.z, cb.z, self.dims[2])
    }

    /// Dimension-order (x, then y, then z) shortest route from `a` to `b`,
    /// as the ordered list of traversed links. Ties between the two wrap
    /// directions break toward the positive direction. An empty path means
    /// `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        let target = self.coord(b);
        let mut cur = a;
        let mut path = Vec::new();
        for axis in 0..3u32 {
            let d = self.dims[axis as usize];
            loop {
                let cc = self.coord(cur);
                let (p, q) = match axis {
                    0 => (cc.x, target.x),
                    1 => (cc.y, target.y),
                    _ => (cc.z, target.z),
                };
                if p == q {
                    break;
                }
                let fwd = (q + d - p) % d;
                let bwd = d - fwd;
                let dir = if fwd <= bwd { axis * 2 } else { axis * 2 + 1 };
                path.push(self.link(cur, dir));
                cur = self.neighbor(cur, dir);
            }
        }
        debug_assert_eq!(cur, b);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Torus3d {
        Torus3d::new([4, 3, 2])
    }

    #[test]
    fn coord_node_round_trip() {
        let t = t();
        for n in 0..t.num_nodes() {
            let c = t.coord(NodeId(n));
            assert_eq!(t.node(c), NodeId(n));
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = t();
        let n = t.node(Coord { x: 3, y: 0, z: 0 });
        assert_eq!(t.neighbor(n, 0), t.node(Coord { x: 0, y: 0, z: 0 }));
        assert_eq!(t.neighbor(n, 1), t.node(Coord { x: 2, y: 0, z: 0 }));
        let m = t.node(Coord { x: 0, y: 0, z: 0 });
        assert_eq!(t.neighbor(m, 3), t.node(Coord { x: 0, y: 2, z: 0 }));
        assert_eq!(t.neighbor(m, 5), t.node(Coord { x: 0, y: 0, z: 1 }));
    }

    #[test]
    fn neighbor_is_involutive_with_opposite_dir() {
        let t = t();
        for n in 0..t.num_nodes() {
            for dir in 0..NUM_DIRS {
                let opp = dir ^ 1;
                assert_eq!(t.neighbor(t.neighbor(NodeId(n), dir), opp), NodeId(n));
            }
        }
    }

    #[test]
    fn distance_examples() {
        let t = t();
        let a = t.node(Coord { x: 0, y: 0, z: 0 });
        let b = t.node(Coord { x: 3, y: 2, z: 1 });
        // x: min(3,1)=1, y: min(2,1)=1, z: min(1,1)=1
        assert_eq!(t.distance(a, b), 3);
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    #[test]
    fn route_length_equals_distance_and_reaches_target() {
        let t = t();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                let path = t.route(NodeId(a), NodeId(b));
                assert_eq!(path.len() as u32, t.distance(NodeId(a), NodeId(b)));
                // Walk the path link by link and confirm it lands on b.
                let mut cur = NodeId(a);
                for l in &path {
                    let src = NodeId(l.0 / NUM_DIRS);
                    let dir = l.0 % NUM_DIRS;
                    assert_eq!(src, cur, "link must leave the current node");
                    cur = t.neighbor(cur, dir);
                }
                assert_eq!(cur, NodeId(b));
            }
        }
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = t();
        assert!(t.route(NodeId(5), NodeId(5)).is_empty());
    }

    #[test]
    fn link_ids_are_unique_per_node_dir() {
        let t = t();
        let mut seen = std::collections::HashSet::new();
        for n in 0..t.num_nodes() {
            for dir in 0..NUM_DIRS {
                assert!(seen.insert(t.link(NodeId(n), dir).0));
            }
        }
        assert_eq!(seen.len() as u32, t.num_links());
    }

    #[test]
    fn degenerate_single_node_torus() {
        let t = Torus3d::new([1, 1, 1]);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        assert!(t.route(NodeId(0), NodeId(0)).is_empty());
    }
}
