//! Blue Gene/P-style machine topology.
//!
//! Models the structural facts the paper's experiments depend on:
//!
//! * a 3-D torus of compute nodes with six links per node (425 MB/s each
//!   direction on the real machine — bandwidth lives in `rbio-net`; this
//!   crate is pure geometry),
//! * four cores per node ("virtual node" mode: one MPI rank per core),
//! * *psets*: groups of 64 compute nodes served by one dedicated I/O node
//!   (ION) over the collective network, the unit ROMIO's `bgp_nodes_pset`
//!   aggregator hint works in.
//!
//! Everything is deterministic geometry: rank → node → coordinate → pset,
//! plus dimension-order torus routing returning explicit link identifiers so
//! the network model can serialize per-link contention.

pub mod partition;
pub mod torus;

pub use partition::{PartitionSpec, Pset};
pub use torus::{Coord, LinkId, NodeId, Torus3d, NUM_DIRS};
