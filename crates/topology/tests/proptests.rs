//! Property tests for torus geometry and partition mapping.

use proptest::prelude::*;
use rbio_topology::{NodeId, PartitionSpec, Torus3d, NUM_DIRS};

fn arb_torus() -> impl Strategy<Value = Torus3d> {
    (1u32..9, 1u32..9, 1u32..9).prop_map(|(x, y, z)| Torus3d::new([x, y, z]))
}

proptest! {
    /// A route is a chain of valid links from src that ends at dst, with
    /// length equal to the wrap-around Manhattan distance.
    #[test]
    fn route_is_valid_shortest_path(t in arb_torus(), a in 0u32..512, b in 0u32..512) {
        let n = t.num_nodes();
        let a = NodeId(a % n);
        let b = NodeId(b % n);
        let path = t.route(a, b);
        prop_assert_eq!(path.len() as u32, t.distance(a, b));
        let mut cur = a;
        for l in &path {
            let src = NodeId(l.0 / NUM_DIRS);
            prop_assert_eq!(src, cur);
            cur = t.neighbor(cur, l.0 % NUM_DIRS);
        }
        prop_assert_eq!(cur, b);
    }

    /// Distance is a metric: symmetric, zero iff equal, triangle holds.
    #[test]
    fn distance_is_a_metric(t in arb_torus(), a in 0u32..512, b in 0u32..512, c in 0u32..512) {
        let n = t.num_nodes();
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), 0);
        if a != b {
            prop_assert!(t.distance(a, b) > 0);
        }
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    /// Every rank belongs to exactly one node, one pset; pset rank ranges
    /// tile the job.
    #[test]
    fn partition_tiles_ranks(
        dims in (1u32..6, 1u32..6, 1u32..6),
        rpn in 1u32..5,
        npp in 1u32..9,
    ) {
        let p = PartitionSpec::custom([dims.0, dims.1, dims.2], rpn, npp);
        let mut covered = vec![false; p.num_ranks() as usize];
        for ps in 0..p.num_psets() {
            for r in p.ranks_of_pset(rbio_topology::Pset(ps)) {
                prop_assert!(!covered[r as usize]);
                covered[r as usize] = true;
                prop_assert_eq!(p.pset_of_rank(r).0, ps);
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
        for rank in 0..p.num_ranks() {
            let node = p.node_of_rank(rank);
            prop_assert!(p.ranks_of_node(node).contains(&rank));
        }
    }

    /// Aggregator spreading: sorted, distinct, at most one per node.
    #[test]
    fn aggregators_distinct_nodes(
        dims in (1u32..6, 1u32..6, 1u32..6),
        rpn in 1u32..5,
        count in 1u32..64,
    ) {
        let p = PartitionSpec::custom([dims.0, dims.1, dims.2], rpn, 4);
        let aggs = p.spread_aggregators(count);
        prop_assert!(!aggs.is_empty());
        prop_assert!(aggs.windows(2).all(|w| w[0] < w[1]));
        let nodes: std::collections::HashSet<u32> =
            aggs.iter().map(|&r| p.node_of_rank(r).0).collect();
        prop_assert_eq!(nodes.len(), aggs.len());
    }
}
