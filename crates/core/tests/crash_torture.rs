//! Crash-image torture sweeps: record each strategy's durability op
//! stream, enumerate legal post-crash filesystem images (prefix cuts ×
//! fsync-barrier-respecting drop subsets × torn final writes), and
//! assert every image restores the newest fsync-promised step or newer
//! — and that the sweep *does* catch a planted missing-dir-fsync bug.
//!
//! The recorder is process-global, so every test that records (or flips
//! the planted-bug switch) serializes on `SWEEP_LOCK` in addition to
//! the recorder's own install lock.

use std::path::PathBuf;
use std::sync::Mutex;

use proptest::prelude::*;

use rbio::crash::{self, ImageSpec, Scenario, Variant};
use rbio::strategy::Strategy;

static SWEEP_LOCK: Mutex<()> = Mutex::new(());

fn work(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rbio-torture-{tag}-{}", std::process::id()))
}

fn strategies() -> [(&'static str, Strategy); 3] {
    [
        ("1pfpp", Strategy::OnePfpp),
        ("coio", Strategy::coio(2)),
        ("rbio", Strategy::rbio(2)),
    ]
}

#[test]
fn every_crash_image_restores_for_all_three_strategies() {
    let _g = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (tag, strategy) in strategies() {
        let scn = Scenario {
            strategy,
            nranks: 4,
            steps: 2,
        };
        let w = work(tag);
        let report = crash::sweep_scenario(&scn, 80, 0x5eed, &w, false).unwrap();
        assert!(
            report.images >= 40,
            "{tag}: expected a real sweep, got {} images",
            report.images
        );
        assert!(
            report.violations.is_empty(),
            "{tag}: {} unrestorable crash images, first: {:?}",
            report.violations.len(),
            report.violations.first()
        );
        let _ = std::fs::remove_dir_all(&w);
    }
}

#[test]
fn missing_dir_fsync_is_caught_and_replays_deterministically() {
    let _g = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let scn = Scenario {
        strategy: Strategy::rbio(2),
        nranks: 4,
        steps: 2,
    };
    let w = work("revert-pr1");
    let _ = std::fs::remove_dir_all(&w);
    std::fs::create_dir_all(&w).unwrap();

    // Record once with the commit protocol's dir fsync planted out.
    let ops = crash::record_scenario(&scn, &w.join("record"), true).unwrap();
    assert!(
        !ops.iter()
            .any(|op| matches!(op, crash::RecOp::DirFsync { .. })),
        "the planted revert must remove every dir-fsync barrier"
    );

    // The maximal-loss image at the full stream: every rename is now
    // volatile, so the generation the API promised durable can vanish.
    let spec = ImageSpec {
        cut: ops.len(),
        variant: Variant::RequiredOnly,
    };
    let img = w.join("img");
    std::fs::create_dir_all(&img).unwrap();
    let detail = crash::check_image(&ops, spec, &scn, &img)
        .unwrap()
        .expect("missing dir-fsync must surface as a violation");
    assert!(
        detail.contains("promised durable") || detail.contains("older than"),
        "unexpected violation detail: {detail}"
    );

    // Deterministic replay: the journal round-trips through disk and
    // the same (cut, variant) coordinates reproduce the same breach.
    let journal = w.join("crash.journal");
    crash::save_ops(&ops, &journal).unwrap();
    let reloaded = crash::load_ops(&journal).unwrap();
    assert_eq!(reloaded, ops);
    let img2 = w.join("img2");
    std::fs::create_dir_all(&img2).unwrap();
    let replayed = crash::check_image(&reloaded, spec, &scn, &img2)
        .unwrap()
        .expect("replay must reproduce the violation");
    assert_eq!(replayed, detail);

    let _ = std::fs::remove_dir_all(&w);
}

#[test]
fn enospc_mid_generation_leaves_prior_generation_restorable() {
    use rbio::fault::FaultPlan;
    use rbio::layout::DataLayout;
    use rbio::manager::{CheckpointManager, ManagerConfig};

    let dir = work("enospc");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let layout = DataLayout::uniform(4, &[("u", 512), ("v", 128)]);

    // Step 1 lands cleanly.
    let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
    cfg.fsync = true;
    let mgr = CheckpointManager::new(layout.clone(), cfg).unwrap();
    mgr.checkpoint(1, |_, _, buf| buf.fill(0x11)).unwrap();

    // Step 2 hits a full device partway through the writers' extents.
    // Every rank gets a budget: which ranks actually hold files open
    // depends on the strategy's aggregation, and whichever writer
    // crosses 256 bytes first aborts the generation.
    let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
    cfg.fsync = true;
    cfg.failover = false;
    cfg.faults = (0..4).fold(FaultPlan::none(), |p, r| p.enospc_after_bytes(r, 256));
    let mgr2 = CheckpointManager::new(layout.clone(), cfg).unwrap();
    mgr2.checkpoint(2, |_, _, buf| buf.fill(0x22))
        .expect_err("ENOSPC must abort the generation");

    // Clean abort: no half-written tmp files latched on disk, and the
    // prior generation still restores.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.ends_with(".tmp").then_some(name)
        })
        .collect();
    assert!(
        leftovers.is_empty(),
        "aborted generation left tmp files: {leftovers:?}"
    );
    let cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
    let mgr3 = CheckpointManager::new(layout, cfg).unwrap();
    let data = mgr3.restore_latest().unwrap();
    assert_eq!(data.step, 1, "prior generation must survive the abort");
    assert!(data.field_data(0, 0).iter().all(|&b| b == 0x11));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Random (strategy, cut, volatile-subset seed, torn-tail seed)
    /// points of the crash-image space all satisfy the restore
    /// invariant. Complements the exhaustive strided sweep above with
    /// coverage at arbitrary coordinates.
    #[test]
    fn random_crash_images_restore(case_seed in 0u64..1_000_000) {
        let _g = SWEEP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let strategy = strategies()[(case_seed % 3) as usize].1;
        let scn = Scenario { strategy, nranks: 4, steps: 2 };
        let w = work(&format!("prop-{case_seed}"));
        let ops = crash::record_scenario(&scn, &w.join("record"), false).unwrap();
        let n = ops.len();
        let cut = (case_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) % (n as u64 + 1)) as usize;
        let variant = match case_seed % 4 {
            0 => Variant::AllApplied,
            1 => Variant::RequiredOnly,
            2 => Variant::Subset(case_seed ^ 0xdead_beef),
            _ => Variant::Torn(case_seed ^ 0x7041),
        };
        let img = w.join("img");
        std::fs::create_dir_all(&img).unwrap();
        let detail = crash::check_image(&ops, ImageSpec { cut, variant }, &scn, &img).unwrap();
        let _ = std::fs::remove_dir_all(&w);
        prop_assert!(
            detail.is_none(),
            "cut {cut}/{n} variant {variant:?}: {detail:?}"
        );
    }
}
