//! Backend conformance: every `IoBackend` must be observably identical
//! to the blocking serial reference — same bytes on disk across
//! strategies, executors, and pipeline depths; same typed errors at the
//! same logical write; same kill byte boundaries; same commit fencing
//! under failover. The ring backend additionally must survive injected
//! short writes by resubmitting the remainder.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rbio::backend::{self, BackendKind, IoBackend, IoCtx, RingBackend, RingConfig, WriteOp};
use rbio::buf::{Bytes, CopyMode};
use rbio::exec::{execute, ExecConfig};
use rbio::failover::FailoverPolicy;
use rbio::fault::{FaultPlan, WriteError};
use rbio::format::materialize_payloads;
use rbio::layout::DataLayout;
use rbio::rt;
use rbio::strategy::{CheckpointPlan, CheckpointSpec, RbIoCommit, Strategy};

/// The two selectable backends, swept by every conformance test.
const BACKENDS: [BackendKind; 2] = [BackendKind::Threaded, BackendKind::Ring];

fn kind_label(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Default => "default",
        BackendKind::Threaded => "threaded",
        BackendKind::Ring => "ring",
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbio-conf-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Deterministic payload filler (same recipe as the equivalence tests).
fn fill(rank: u32, field: usize, buf: &mut [u8]) {
    let mut x = (u64::from(rank) << 24) ^ ((field as u64) << 8) ^ 0x2545F4914F6CDD1D;
    for b in buf.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (x >> 33) as u8;
    }
}

fn plan_for(strategy: Strategy) -> CheckpointPlan {
    let layout = DataLayout::uniform(4, &[("Ex", 384), ("Ey", 160)]);
    CheckpointSpec::new(layout, "ck")
        .strategy(strategy)
        .step(7)
        .plan()
        .expect("valid plan")
}

/// Serial deep-copy reference run: the ground truth every backend and
/// depth must reproduce byte-for-byte.
fn reference(plan: &CheckpointPlan, dir: &Path) -> Vec<(String, Vec<u8>)> {
    let payloads = materialize_payloads(plan, fill);
    let ref_dir = dir.join("ref");
    execute(
        &plan.program,
        payloads,
        &ExecConfig::new(&ref_dir).copy_mode(CopyMode::DeepCopy),
    )
    .expect("reference execution");
    plan.plan_files
        .iter()
        .map(|pf| {
            let bytes = std::fs::read(ref_dir.join(&pf.name)).expect("reference file");
            (pf.name.clone(), bytes)
        })
        .collect()
}

fn assert_files_match(out: &Path, expected: &[(String, Vec<u8>)], what: &str) {
    for (name, want) in expected {
        let got =
            std::fs::read(out.join(name)).unwrap_or_else(|e| panic!("{what}: read {name}: {e}"));
        assert_eq!(
            &got, want,
            "{what}: {name} differs from the serial reference"
        );
    }
}

#[test]
fn byte_identical_across_strategies_depths_and_backends() {
    let strategies = [
        Strategy::OnePfpp,
        Strategy::coio(2),
        Strategy::rbio(2),
        Strategy::RbIo {
            ng: 2,
            commit: RbIoCommit::CollectiveShared,
        },
    ];
    for (si, strategy) in strategies.into_iter().enumerate() {
        let dir = tmpdir(&format!("equiv-s{si}"));
        let plan = plan_for(strategy);
        let expected = reference(&plan, &dir);
        for kind in BACKENDS {
            for depth in [1u32, 2, 4] {
                let out = dir.join(format!("{}-d{depth}", kind_label(kind)));
                let payloads = materialize_payloads(&plan, fill);
                let cfg = ExecConfig::new(&out).pipeline_depth(depth).io_backend(kind);
                execute(&plan.program, payloads, &cfg).unwrap_or_else(|e| {
                    panic!("{} depth {depth} strategy {si}: {e}", kind_label(kind))
                });
                assert_files_match(
                    &out,
                    &expected,
                    &format!("{} depth {depth} strategy {si}", kind_label(kind)),
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn byte_identical_through_the_rt_executor_per_backend() {
    let dir = tmpdir("rt-equiv");
    let plan = plan_for(Strategy::RbIo {
        ng: 2,
        commit: RbIoCommit::CollectiveShared,
    });
    let expected = reference(&plan, &dir);
    for kind in BACKENDS {
        let out = dir.join(kind_label(kind));
        let payloads = materialize_payloads(&plan, fill);
        let cfg = rt::RtConfig::new(&out).pipeline_depth(2).io_backend(kind);
        let program = &plan.program;
        let results = rt::run(program.nranks(), |mut comm| {
            let rank = comm.rank() as usize;
            rt::checkpoint_rank_with(&mut comm, program, &payloads[rank], &cfg)
                .map_err(|e| format!("{e:?}"))
        });
        for r in results {
            r.unwrap_or_else(|e| panic!("{}: rt rank failed: {e}", kind_label(kind)));
        }
        assert_files_match(&out, &expected, &format!("rt {}", kind_label(kind)));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The `RBIO_IO_BACKEND` seam: `BackendKind::Default` resolves through
/// the environment, which is how CI re-runs this whole suite under the
/// ring backend without code changes.
#[test]
fn default_kind_resolves_via_environment() {
    let resolved = backend::resolve(BackendKind::Default);
    match std::env::var("RBIO_IO_BACKEND").as_deref() {
        Ok("ring") => assert!(
            resolved.name().starts_with("ring"),
            "RBIO_IO_BACKEND=ring must resolve to a ring backend, got {}",
            resolved.name()
        ),
        _ => assert_eq!(resolved.name(), "threaded"),
    }
}

#[test]
fn short_writes_resubmit_to_byte_identical_output_per_backend() {
    let dir = tmpdir("short");
    let plan = plan_for(Strategy::rbio(2));
    let expected = reference(&plan, &dir);
    // Writer rank 0's first logical write delivers only a 64-byte
    // prefix; both backends must finish the op (blocking continuation
    // for the threaded path, completion-driven resubmit for the ring)
    // and land the same bytes as the uninjected reference.
    for kind in BACKENDS {
        let out = dir.join(kind_label(kind));
        let payloads = materialize_payloads(&plan, fill);
        let before = rbio_profile::counters::failover_snapshot();
        let cfg = ExecConfig::new(&out)
            .pipeline_depth(2)
            .io_backend(kind)
            .faults(FaultPlan::none().short_write(0, 0, 64));
        execute(&plan.program, payloads, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", kind_label(kind)));
        assert_files_match(&out, &expected, &format!("short {}", kind_label(kind)));
        let delta = rbio_profile::counters::failover_snapshot().delta_since(&before);
        assert!(
            delta.short_write_retries >= 1,
            "{}: the injected short write must be counted as a \
             short-write retry, not a hedge or transient retry",
            kind_label(kind)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_write_errors_latch_and_fence_commits_per_backend() {
    let dir = tmpdir("latch");
    let plan = plan_for(Strategy::rbio(2));
    for kind in BACKENDS {
        let out = dir.join(kind_label(kind));
        let payloads = materialize_payloads(&plan, fill);
        let cfg = ExecConfig::new(&out)
            .pipeline_depth(2)
            .io_backend(kind)
            .faults(FaultPlan::none().fail_nth_write(0, 0, u32::MAX));
        let err = execute(&plan.program, payloads, &cfg).expect_err("failing write must surface");
        let _ = err.to_string();
        // Commit fencing: writer 0's file must never publish under its
        // final name (the latched error skips the commit job).
        let victim = &plan.plan_files[0].name;
        assert!(
            !out.join(victim).exists(),
            "{}: {victim} was published despite a persistently failing write",
            kind_label(kind)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn commit_fencing_under_failover_is_backend_independent() {
    let dir = tmpdir("failover");
    let plan = plan_for(Strategy::rbio(2));
    let expected = reference(&plan, &dir);
    // Writer rank 0 hangs long enough to be declared dead; the survivor
    // re-stages the orphaned extent. The published bytes must match the
    // uninjected reference whichever backend runs the flush jobs.
    for kind in BACKENDS {
        let out = dir.join(kind_label(kind));
        let payloads = materialize_payloads(&plan, fill);
        let cfg = ExecConfig::new(&out)
            .pipeline_depth(2)
            .io_backend(kind)
            .faults(FaultPlan::none().hang_writer(0, Duration::from_millis(300)))
            .failover(FailoverPolicy {
                enabled: true,
                straggler_after: Duration::from_millis(25),
                dead_after: Duration::from_millis(50),
            });
        let report = execute(&plan.program, payloads, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", kind_label(kind)));
        assert!(
            !report.failovers.is_empty(),
            "{}: hung writer 0 was never taken over",
            kind_label(kind)
        );
        assert_files_match(&out, &expected, &format!("failover {}", kind_label(kind)));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill faults must land on the same logical byte boundary whichever
/// backend executes the batch: the fault layer's accounting is consulted
/// in submission order on both paths.
#[test]
fn kill_after_bytes_lands_on_the_same_boundary_per_backend() {
    let run = |b: &dyn IoBackend, name: &str| -> (u64, usize) {
        let dir = tmpdir(name);
        let path = dir.join("k.bin");
        let file = Arc::new(
            std::fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(&path)
                .expect("open"),
        );
        let faults = FaultPlan::none().kill_writer_after_bytes(0, 1000);
        let ctx = IoCtx {
            rank: 0,
            wid: 0,
            faults: &faults,
            write_retries: 3,
            retry_backoff: Duration::from_micros(50),
        };
        let ops: Vec<WriteOp> = (0..5)
            .map(|i| WriteOp {
                file: Arc::clone(&file),
                offset: i * 400,
                bufs: vec![Bytes::from_vec(vec![i as u8 + 1; 400])],
            })
            .collect();
        let out = b.run_writes(&ctx, ops);
        let at = match out.error {
            Some((i, WriteError::Killed)) => i,
            other => panic!("{name}: expected a kill, got {other:?}"),
        };
        let len = file.metadata().expect("meta").len();
        std::fs::remove_dir_all(&dir).ok();
        (len, at)
    };
    let threaded = run(&backend::ThreadedBackend, "kill-t");
    let ring = run(
        &RingBackend::with_config(RingConfig {
            depth: 8,
            batch: 4,
            completion_seed: 0xBEEF,
        }),
        "kill-r",
    );
    assert_eq!(
        threaded, ring,
        "(file length, killed op index) must not depend on the backend"
    );
}
