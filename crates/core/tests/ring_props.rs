//! Property tests for the portable ring-emulation core: for arbitrary
//! push/submit/reap sequences, the ring must keep its in-flight depth
//! bound, execute in FIFO order with link-break cancelation, and
//! deliver every completion exactly once.

use proptest::prelude::*;

use rbio::backend::ring::{RingCore, RingFull};

/// One driver step against the ring.
#[derive(Clone, Debug)]
enum Step {
    /// Try to push the next op (may be refused at the depth bound).
    Push,
    /// Execute everything queued; the payload value `fail_on` (if any)
    /// breaks the link.
    Submit,
    /// Deliver one completion (may be a no-op on an empty CQ).
    Reap,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![Just(Step::Push), Just(Step::Submit), Just(Step::Reap)],
        1..80,
    )
}

proptest! {
    /// Pushed-but-unreaped ops never exceed the configured depth, and a
    /// push at the bound is refused (not dropped, not queued).
    #[test]
    fn in_flight_never_exceeds_depth(
        depth in 1usize..9,
        seed in 0u64..1000,
        script in steps(),
    ) {
        let mut core: RingCore<u32, u32> = RingCore::new(depth, seed);
        let mut next = 0u32;
        for step in script {
            match step {
                Step::Push => match core.push(next) {
                    Ok(_) => next += 1,
                    Err(RingFull) => prop_assert_eq!(core.in_flight(), depth),
                },
                Step::Submit => {
                    core.submit(|_, v| (*v, true), |_, _| 0);
                }
                Step::Reap => {
                    core.reap();
                }
            }
            prop_assert!(core.in_flight() <= depth);
        }
        prop_assert!(core.high_water() <= depth);
    }

    /// Every pushed op is executed in FIFO order (or canceled after a
    /// link break) and its completion is delivered exactly once — no
    /// loss, no duplication, whatever the delivery permutation.
    #[test]
    fn completions_are_fifo_executed_and_delivered_exactly_once(
        depth in 1usize..9,
        seed in 0u64..1000,
        fail_on in prop_oneof![
            Just(None),
            (0u32..40).prop_map(Some),
        ],
        script in steps(),
    ) {
        let mut core: RingCore<u32, (u32, bool)> = RingCore::new(depth, seed);
        let mut next = 0u32;
        let mut exec_order: Vec<u32> = Vec::new();
        let mut delivered: Vec<(u64, u32, bool)> = Vec::new();
        let mut pushed: Vec<(u64, u32)> = Vec::new();
        for step in script {
            match step {
                Step::Push => {
                    if let Ok(udata) = core.push(next) {
                        pushed.push((udata, next));
                        next += 1;
                    }
                }
                Step::Submit => {
                    core.submit(
                        |_, v| {
                            exec_order.push(*v);
                            let ok = Some(*v) != fail_on;
                            ((*v, true), ok)
                        },
                        |_, v| (*v, false),
                    );
                }
                Step::Reap => {
                    if let Some((udata, v, (cv, executed))) = core.reap() {
                        prop_assert_eq!(v, cv, "completion carries its own op");
                        delivered.push((udata, v, executed));
                    }
                }
            }
        }
        // Drain whatever is still in flight.
        core.submit(
            |_, v| {
                exec_order.push(*v);
                let ok = Some(*v) != fail_on;
                ((*v, true), ok)
            },
            |_, v| (*v, false),
        );
        while let Some((udata, v, (_, executed))) = core.reap() {
            delivered.push((udata, v, executed));
        }

        // Executed ops are a FIFO prefix-respecting subsequence: values
        // execute in push order with no gaps among executed ones.
        let executed_sorted = {
            let mut e = exec_order.clone();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(&exec_order, &executed_sorted, "execution is FIFO in push order");

        // Exactly-once delivery of every pushed op, by udata.
        prop_assert_eq!(delivered.len(), pushed.len());
        let mut got: Vec<(u64, u32)> = delivered.iter().map(|&(u, v, _)| (u, v)).collect();
        got.sort_unstable();
        let mut want = pushed.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want, "every pushed op delivers exactly once");

        // Link-break semantics: the delivered `executed` flag agrees
        // with the execution log, and an op is only ever canceled when
        // the failing op really executed before it in push order.
        for &(_, v, executed) in &delivered {
            prop_assert_eq!(executed, exec_order.contains(&v));
            if !executed {
                let f = fail_on.expect("cancelation requires a link break");
                prop_assert!(exec_order.contains(&f), "canceled without the break executing");
                prop_assert!(v > f, "op {} canceled before the break at {}", v, f);
            }
        }
    }
}
