//! A small MPI-like in-process runtime.
//!
//! NekCEM-style applications are SPMD: every rank runs the same program on
//! its own data, communicating by message passing (§III-A). This module
//! provides that shape at in-process scale — one OS thread per rank, a
//! [`Comm`] handle with `send`/`recv`/`barrier`/reductions — so a
//! downstream application can write its compute loop naturally and call
//! [`checkpoint_rank`] collectively wherever it wants a checkpoint, with
//! every rank executing exactly its own slice of the compiled plan.
//!
//! The semantics mirror the plan executor in [`crate::exec`] (nonblocking
//! sends, FIFO matching per `(src, tag)` channel); a test asserts that a
//! plan executed rank-by-rank under this runtime produces byte-identical
//! files to [`crate::exec::execute`].

use std::collections::{HashMap, VecDeque};
use std::fs::OpenOptions;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use rbio_plan::{DataRef, Op, Program};
use rbio_profile::counters;

use crate::backend::BackendKind;
use crate::buf::{BufPool, Bytes, CopyMode};
use crate::commit;
use crate::crash;
use crate::exec::{
    src_len, write_run_len, write_src, CHECK_RECV_POLL_BUDGET, CHECK_SEND_POLL_BUDGET,
    DEFAULT_CHAN_CAPACITY,
};
use crate::failover::{FailoverPolicy, WriterHealth};
use crate::fault::{self, FaultPlan};
use crate::format::synthetic_byte;
use crate::pipeline::{FlushJob, FlushPool, PipelineError, WriterHandle, WriterTuning};
use crate::sched::{self, Point};

type Msg = (u32, u64, Bytes);

/// A typed runtime failure, always carrying the failing rank.
#[derive(Debug)]
pub enum RtError {
    /// A peer's thread has exited: its channel endpoint is gone.
    PeerGone {
        /// Rank observing the failure.
        rank: u32,
        /// The vanished peer.
        peer: u32,
    },
    /// A send blocked on a full bounded mailbox for the whole deadline:
    /// the receiver is stalled (or slower than the sender's burst) and
    /// backpressure reached the surface instead of growing the heap.
    SendTimeout {
        /// Rank observing the failure.
        rank: u32,
        /// The backpressuring destination.
        dst: u32,
        /// Tag of the stuck message.
        tag: u64,
        /// How long the rank waited.
        waited: Duration,
    },
    /// No matching message arrived within the receive timeout (a lost
    /// handoff — e.g. a dropped worker→writer message).
    RecvTimeout {
        /// Rank observing the failure.
        rank: u32,
        /// Expected sender.
        src: u32,
        /// Expected tag.
        tag: u64,
        /// How long the rank waited.
        waited: Duration,
        /// The peer's health as classified by the failover policy derived
        /// from this receive timeout: a stall of the full timeout is past
        /// the dead deadline, so a recovery layer above the runtime can
        /// treat the sender as dead rather than merely slow.
        peer_health: WriterHealth,
    },
    /// An I/O error in the plan's file ops (retries exhausted).
    Io {
        /// Failing rank.
        rank: u32,
        /// Underlying error.
        source: io::Error,
    },
    /// Fault injection terminated the rank mid-plan.
    Killed {
        /// The killed rank.
        rank: u32,
    },
    /// Plan and runtime state disagree (wrong message size, bad call).
    PlanMismatch {
        /// Failing rank.
        rank: u32,
        /// Description.
        what: String,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::PeerGone { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} is gone")
            }
            RtError::SendTimeout {
                rank,
                dst,
                tag,
                waited,
            } => write!(
                f,
                "rank {rank}: rank {dst}'s mailbox stayed full for {waited:?} \
                 sending tag {tag} (stalled receiver?)"
            ),
            RtError::RecvTimeout {
                rank,
                src,
                tag,
                waited,
                peer_health,
            } => write!(
                f,
                "rank {rank}: no message from rank {src} tag {tag} within {waited:?} \
                 (peer classified {peer_health:?})"
            ),
            RtError::Io { rank, source } => write!(f, "rank {rank}: {source}"),
            RtError::Killed { rank } => write!(f, "rank {rank}: killed by fault injection"),
            RtError::PlanMismatch { rank, what } => write!(f, "rank {rank}: {what}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Communicator handle owned by one rank's thread.
pub struct Comm {
    rank: u32,
    size: u32,
    senders: Arc<Vec<SyncSender<Msg>>>,
    rx: Receiver<Msg>,
    stash: HashMap<(u32, u64), VecDeque<Bytes>>,
    world_barrier: Arc<Barrier>,
    reduce_slots: Arc<Vec<Mutex<Vec<f64>>>>,
    recv_timeout: Duration,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// How long `recv` waits before failing with [`RtError::RecvTimeout`]
    /// (default 2 s), and how long a backpressured `send` waits on a full
    /// mailbox before failing with [`RtError::SendTimeout`]. A timeout
    /// turns a lost message (or a stalled receiver) into a typed error
    /// instead of a hang.
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    /// Nonblocking-style send while the destination's bounded mailbox
    /// has room (`MPI_Isend` with eager buffering: the one copy into the
    /// eager buffer happens here). A full mailbox blocks — that bounded
    /// wait is the runtime's backpressure, capping resident queue bytes
    /// at the mailbox capacity — and fails with [`RtError::SendTimeout`]
    /// after the timeout. Fails with [`RtError::PeerGone`] if the
    /// destination rank's thread has already exited.
    pub fn send(&self, dst: u32, tag: u64, data: &[u8]) -> Result<(), RtError> {
        self.send_bytes(dst, tag, Bytes::from_vec(data.to_vec()))
    }

    /// [`Comm::send`] for callers that already own the bytes: the buffer
    /// moves into the channel with no copy at all.
    pub fn send_bytes(&self, dst: u32, tag: u64, data: Bytes) -> Result<(), RtError> {
        let peer_gone = || RtError::PeerGone {
            rank: self.rank,
            peer: dst,
        };
        let mut msg = (self.rank, tag, data);
        match self.senders[dst as usize].try_send(msg) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => return Err(peer_gone()),
            Err(TrySendError::Full(m)) => msg = m,
        }
        counters::add_send_backpressure_blocks(1);
        if sched::registered() {
            // Controlled run: a futile-poll budget replaces the
            // wall-clock deadline (see `recv_bytes_controlled`).
            let mut budget = CHECK_SEND_POLL_BUDGET;
            loop {
                match self.senders[dst as usize].try_send(msg) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(_)) => return Err(peer_gone()),
                    Err(TrySendError::Full(m)) => {
                        if budget == 0 {
                            counters::add_send_backpressure_timeouts(1);
                            return Err(RtError::SendTimeout {
                                rank: self.rank,
                                dst,
                                tag,
                                waited: self.recv_timeout,
                            });
                        }
                        budget -= 1;
                        msg = m;
                        sched::yield_now(Point::SendFull);
                    }
                }
            }
        }
        let start = Instant::now();
        let deadline = start + self.recv_timeout;
        loop {
            match self.senders[dst as usize].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(peer_gone()),
                Err(TrySendError::Full(m)) => {
                    if Instant::now() >= deadline {
                        counters::add_send_backpressure_timeouts(1);
                        return Err(RtError::SendTimeout {
                            rank: self.rank,
                            dst,
                            tag,
                            waited: start.elapsed(),
                        });
                    }
                    msg = m;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// Blocking receive matching `(src, tag)`, FIFO per channel. Fails
    /// with [`RtError::RecvTimeout`] when nothing arrives in time.
    pub fn recv(&mut self, src: u32, tag: u64) -> Result<Vec<u8>, RtError> {
        self.recv_bytes(src, tag).map(Bytes::into_vec)
    }

    /// [`Comm::recv`] without the `Vec` conversion: the returned handle
    /// is the sender's buffer, not a copy.
    pub fn recv_bytes(&mut self, src: u32, tag: u64) -> Result<Bytes, RtError> {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(d) = q.pop_front() {
                return Ok(d);
            }
        }
        if sched::registered() {
            return self.recv_bytes_controlled(src, tag);
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok((s, t, d)) => {
                    if s == src && t == tag {
                        return Ok(d);
                    }
                    self.stash.entry((s, t)).or_default().push_back(d);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.recv_timeout_error(src, tag));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RtError::PeerGone {
                        rank: self.rank,
                        peer: src,
                    });
                }
            }
        }
    }

    /// Controlled-run receive: wall-clock timeouts would make schedules
    /// nondeterministic, so a fixed futile-poll budget plays the role of
    /// `recv_timeout` and surfaces the same typed error.
    fn recv_bytes_controlled(&mut self, src: u32, tag: u64) -> Result<Bytes, RtError> {
        let mut budget = CHECK_RECV_POLL_BUDGET;
        loop {
            match self.rx.try_recv() {
                Ok((s, t, d)) => {
                    if s == src && t == tag {
                        return Ok(d);
                    }
                    self.stash.entry((s, t)).or_default().push_back(d);
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    return Err(RtError::PeerGone {
                        rank: self.rank,
                        peer: src,
                    });
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if budget == 0 {
                        return Err(self.recv_timeout_error(src, tag));
                    }
                    budget -= 1;
                    sched::yield_now(Point::RecvEmpty);
                }
            }
        }
    }

    /// The typed timeout error for a receive from `src`, classifying the
    /// silent peer through the failover health state machine.
    fn recv_timeout_error(&self, src: u32, tag: u64) -> RtError {
        RtError::RecvTimeout {
            rank: self.rank,
            src,
            tag,
            waited: self.recv_timeout,
            peer_health: FailoverPolicy::from_recv_timeout(self.recv_timeout)
                .classify_stall(self.recv_timeout),
        }
    }

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        self.world_barrier.wait();
    }

    /// All-reduce a double with `op` (commutative); returns the reduction
    /// of every rank's contribution. Implemented as a shared slot vector
    /// plus two barriers — fine at in-process scale.
    pub fn allreduce_f64(&self, value: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        {
            let mut slot = self.reduce_slots[0].lock().expect("no poisoned locks");
            slot[self.rank as usize] = value;
        }
        self.barrier();
        let result = {
            let slot = self.reduce_slots[0].lock().expect("no poisoned locks");
            slot.iter().copied().reduce(&op).expect("nonempty")
        };
        self.barrier();
        result
    }

    /// Broadcast `data` from `root` to every rank; returns the payload.
    pub fn broadcast(&mut self, root: u32, data: Option<&[u8]>) -> Result<Vec<u8>, RtError> {
        const BCAST_TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let d = data.expect("root must supply the payload");
            for r in 0..self.size {
                if r != root {
                    self.send(r, BCAST_TAG, d)?;
                }
            }
            Ok(d.to_vec())
        } else {
            self.recv(root, BCAST_TAG)
        }
    }
}

/// Run `f` on `nranks` ranks (one thread each) and collect the per-rank
/// return values in rank order. Rank mailboxes hold
/// [`DEFAULT_CHAN_CAPACITY`] messages; see [`run_with_capacity`].
pub fn run<T, F>(nranks: u32, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    run_with_capacity(nranks, DEFAULT_CHAN_CAPACITY, f)
}

/// [`run`] with an explicit per-rank mailbox capacity. Mailboxes are
/// bounded `sync_channel`s: a sender facing a full mailbox blocks (so a
/// burst or a stalled receiver caps resident queue bytes at
/// `chan_capacity` messages) and fails with [`RtError::SendTimeout`]
/// after the receive-timeout deadline.
pub fn run_with_capacity<T, F>(nranks: u32, chan_capacity: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Sync,
{
    assert!(nranks >= 1);
    let mut txs = Vec::with_capacity(nranks as usize);
    let mut rxs = Vec::with_capacity(nranks as usize);
    for _ in 0..nranks {
        let (tx, rx) = sync_channel::<Msg>(chan_capacity.max(1));
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let senders = Arc::new(txs);
    let world_barrier = Arc::new(Barrier::new(nranks as usize));
    let reduce_slots = Arc::new(vec![Mutex::new(vec![0.0; nranks as usize])]);

    // Under a controlled scheduler the driver must not block in the
    // scope join while rank threads still need the run token: it spins
    // on this counter at a yield point first (see `exec::execute`).
    let controlled = sched::controlled();
    let ranks_alive = std::sync::atomic::AtomicUsize::new(nranks as usize);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks as usize);
        for (rank, rx) in rxs.iter_mut().enumerate() {
            let comm = Comm {
                rank: rank as u32,
                size: nranks,
                senders: Arc::clone(&senders),
                rx: rx.take().expect("receiver"),
                stash: HashMap::new(),
                world_barrier: Arc::clone(&world_barrier),
                reduce_slots: Arc::clone(&reduce_slots),
                recv_timeout: Duration::from_secs(2),
            };
            let f = &f;
            let ranks_alive = &ranks_alive;
            if controlled {
                sched::spawning();
            }
            handles.push(scope.spawn(move || {
                if controlled {
                    sched::register(&format!("rank{rank}"));
                }
                let out = f(comm);
                if controlled {
                    ranks_alive.fetch_sub(1, std::sync::atomic::Ordering::Release);
                    sched::unregister();
                }
                out
            }));
        }
        if controlled {
            while ranks_alive.load(std::sync::atomic::Ordering::Acquire) > 0 {
                sched::yield_now(Point::JoinWait);
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread must not panic"))
            .collect()
    })
}

/// Configuration for [`checkpoint_rank_with`]: target directory plus the
/// same durability/fault/retry knobs as [`crate::exec::ExecConfig`].
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Directory all plan file names are resolved against.
    pub base_dir: PathBuf,
    /// fsync files on close and fsync the commit footer + rename.
    pub fsync_on_close: bool,
    /// Faults to inject (inert by default).
    pub faults: FaultPlan,
    /// Retries per `WriteAt` on a transient error before giving up.
    pub write_retries: u32,
    /// Initial backoff between retries (doubles each attempt).
    pub retry_backoff: Duration,
    /// Outstanding background flush jobs per writer, served by the
    /// shared [`FlushPool`] worker threads. `1` (default) is the serial
    /// path; `≥ 2` overlaps aggregation with disk writes while keeping
    /// output byte-identical (see [`crate::pipeline`]).
    pub pipeline_depth: u32,
    /// Seed-derived jitter before each background job, for deterministic
    /// interleaving sweeps in equivalence tests.
    pub pipeline_jitter: Option<u64>,
    /// Datapath copy discipline — see [`crate::exec::ExecConfig::copy_mode`].
    pub copy_mode: CopyMode,
    /// When set, atomic plan files divert into this node-local tier
    /// stage instead of the filesystem — see
    /// [`crate::exec::ExecConfig::stage`].
    pub stage: Option<Arc<crate::tier::TierStage>>,
    /// I/O backend for the background flush pipeline — see
    /// [`crate::exec::ExecConfig::io_backend`].
    pub io_backend: BackendKind,
    /// Cap on one coalesced vectored write, bytes — see
    /// [`crate::exec::ExecConfig::coalesce_max_bytes`].
    pub coalesce_max_bytes: u64,
    /// Cap on chunks per coalesced vectored write.
    pub coalesce_max_ops: usize,
}

impl RtConfig {
    /// Config writing under `base_dir`, no fsync, no faults.
    pub fn new(base_dir: impl AsRef<Path>) -> Self {
        RtConfig {
            base_dir: base_dir.as_ref().to_path_buf(),
            fsync_on_close: false,
            faults: FaultPlan::none(),
            write_retries: 3,
            retry_backoff: Duration::from_micros(500),
            pipeline_depth: 1,
            pipeline_jitter: None,
            copy_mode: CopyMode::ZeroCopy,
            stage: None,
            io_backend: BackendKind::Default,
            coalesce_max_bytes: crate::exec::DEFAULT_COALESCE_BYTES,
            coalesce_max_ops: crate::exec::DEFAULT_COALESCE_OPS,
        }
    }

    /// Cap coalesced vectored writes — see
    /// [`crate::exec::ExecConfig::coalesce_caps`].
    pub fn coalesce_caps(mut self, max_bytes: u64, max_ops: usize) -> Self {
        self.coalesce_max_bytes = max_bytes.max(1);
        self.coalesce_max_ops = max_ops.max(1);
        self
    }

    /// Replace the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Select the datapath copy discipline.
    pub fn copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Set the writer pipeline depth (1 = serial, 2 = double buffering).
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Set the background-job jitter seed for interleaving sweeps.
    pub fn pipeline_jitter(mut self, seed: u64) -> Self {
        self.pipeline_jitter = Some(seed);
        self
    }

    /// Stage atomic files into the node-local tier instead of the PFS.
    pub fn stage(mut self, stage: Arc<crate::tier::TierStage>) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Select the pipeline's I/O backend.
    pub fn io_backend(mut self, kind: BackendKind) -> Self {
        self.io_backend = kind;
        self
    }
}

/// Execute `rank`'s ops of a checkpoint `program` inside an application
/// thread, using its [`Comm`] for the messaging ops. Must be called by
/// *every* rank of the runtime with the same program (a collective call,
/// like the strategies' MPI originals). `payload` is this rank's packed
/// payload (see [`crate::format::materialize_payloads`]).
///
/// Plan barriers use dedicated tags over `comm` (a flat fan-in/fan-out to
/// the group's first rank), so they do not interfere with application
/// messages as long as the application avoids tags ≥ 2⁶¹.
pub fn checkpoint_rank(
    comm: &mut Comm,
    program: &Program,
    payload: &[u8],
    base_dir: impl AsRef<Path>,
) -> Result<(), RtError> {
    checkpoint_rank_with(comm, program, payload, &RtConfig::new(base_dir))
}

/// [`checkpoint_rank`] with explicit durability/fault/retry configuration.
pub fn checkpoint_rank_with(
    comm: &mut Comm,
    program: &Program,
    payload: &[u8],
    cfg: &RtConfig,
) -> Result<(), RtError> {
    let rank = comm.rank();
    assert_eq!(
        comm.size(),
        program.nranks(),
        "collective call on all ranks"
    );
    assert!(
        payload.len() as u64 >= program.payload[rank as usize],
        "payload too small for rank {rank}"
    );
    let io_err = |source: io::Error| RtError::Io { rank, source };
    let base: PathBuf = cfg.base_dir.clone();
    std::fs::create_dir_all(&base).map_err(io_err)?;
    let mut staging = vec![0u8; program.staging[rank as usize] as usize];
    let mut files: HashMap<u32, Arc<std::fs::File>> = HashMap::new();
    const BARRIER_TAG_BASE: u64 = 1 << 62;
    const PLAN_TAG_BASE: u64 = 1 << 61;

    // The "small worker thread pool behind rt": writer groups hand their
    // flushes to the shared pool so they progress concurrently with the
    // foreground aggregation of the next package.
    let pipe: Option<WriterHandle> = (cfg.pipeline_depth >= 2).then(|| {
        FlushPool::current().register(
            rank,
            cfg.pipeline_depth,
            cfg.faults.clone(),
            WriterTuning {
                write_retries: cfg.write_retries,
                retry_backoff: cfg.retry_backoff,
                jitter_seed: cfg.pipeline_jitter,
                backend: Some(crate::backend::resolve(cfg.io_backend)),
                ..WriterTuning::default()
            },
        )
    });
    let pipe_err = |e: PipelineError| match e {
        PipelineError::Killed { rank } => RtError::Killed { rank },
        PipelineError::Io(source) => RtError::Io { rank, source },
    };
    let drain = |pipe: &Option<WriterHandle>| -> Result<(), RtError> {
        match pipe {
            Some(p) => p.drain().map(|_| ()).map_err(pipe_err),
            None => Ok(()),
        }
    };

    let write_err = |e: fault::WriteError| match e {
        fault::WriteError::Killed => RtError::Killed { rank },
        fault::WriteError::Io(source) => RtError::Io { rank, source },
        fault::WriteError::DeadlineExceeded { waited } => RtError::Io {
            rank,
            source: io::Error::new(
                io::ErrorKind::TimedOut,
                format!("write retries exhausted their deadline after {waited:?}"),
            ),
        },
        fault::WriteError::ShortWrite { written, expected } => RtError::Io {
            rank,
            source: io::Error::new(
                io::ErrorKind::WriteZero,
                format!("short write stalled at {written}/{expected} bytes"),
            ),
        },
    };

    let mode = cfg.copy_mode;
    // Owned snapshot of a data reference, for sends and deferred writes.
    // Unlike `exec`, this runtime borrows `payload` from the application
    // with an unknown lifetime, so owning payload bytes costs one copy —
    // the MPI eager-buffer copy, charged to the counters honestly.
    let resolve =
        |r: &DataRef, staging: &[u8], off_hint: u64| -> Bytes {
            match mode {
                CopyMode::DeepCopy => {
                    let v: Vec<u8> = match *r {
                        DataRef::Own { off, len } => {
                            counters::add_bytes_copied(len);
                            payload[off as usize..(off + len) as usize].to_vec()
                        }
                        DataRef::Staging { off, len } => {
                            counters::add_bytes_copied(len);
                            staging[off as usize..(off + len) as usize].to_vec()
                        }
                        DataRef::Synthetic { len } => {
                            (0..len).map(|i| synthetic_byte(off_hint + i)).collect()
                        }
                    };
                    Bytes::from_vec(v)
                }
                CopyMode::ZeroCopy => match *r {
                    DataRef::Own { off, len } => BufPool::global()
                        .copy_from_slice(&payload[off as usize..(off + len) as usize]),
                    DataRef::Staging { off, len } => BufPool::global()
                        .copy_from_slice(&staging[off as usize..(off + len) as usize]),
                    DataRef::Synthetic { len } => BufPool::global()
                        .from_fn(len as usize, |i| synthetic_byte(off_hint + i as u64)),
                },
            }
        };

    let ops = &program.ops[rank as usize];
    let mut i = 0;
    while i < ops.len() {
        sched::yield_now(Point::Progress);
        let op = &ops[i];
        match op {
            Op::Compute { .. } => {}
            Op::Pack {
                src,
                staging_off,
                bytes,
            } => {
                if let Some(s) = src {
                    match *s {
                        DataRef::Staging { off, len } => {
                            counters::add_bytes_copied(len);
                            staging.copy_within(
                                off as usize..(off + len) as usize,
                                *staging_off as usize,
                            )
                        }
                        _ => {
                            let data = resolve(s, &staging, 0);
                            counters::add_bytes_copied(*bytes);
                            staging[*staging_off as usize..*staging_off as usize + *bytes as usize]
                                .copy_from_slice(&data);
                        }
                    }
                }
            }
            Op::Send { dst, tag, src } => {
                let data = resolve(src, &staging, 0);
                if cfg.faults.on_send(rank, *dst) {
                    sched::emit(|| sched::Event::SendAttempt {
                        rank,
                        dst: *dst,
                        op_index: i,
                        dropped: true,
                    });
                    // Injected message loss: the receiver times out.
                    // Advancing `i` here mirrors the PR 3 fix in `exec`:
                    // the op must never re-execute after a drop.
                    i += 1;
                    continue;
                }
                sched::emit(|| sched::Event::SendAttempt {
                    rank,
                    dst: *dst,
                    op_index: i,
                    dropped: false,
                });
                comm.send_bytes(*dst, PLAN_TAG_BASE + tag.0, data)?;
            }
            Op::Recv {
                src,
                tag,
                bytes,
                staging_off,
            } => {
                let data = comm.recv_bytes(*src, PLAN_TAG_BASE + tag.0)?;
                if data.len() as u64 != *bytes {
                    return Err(RtError::PlanMismatch {
                        rank,
                        what: format!("plan recv size mismatch: want {bytes}, got {}", data.len()),
                    });
                }
                // The one aggregation copy the plan IR mandates.
                counters::add_bytes_copied(data.len() as u64);
                staging[*staging_off as usize..*staging_off as usize + data.len()]
                    .copy_from_slice(&data);
            }
            Op::Barrier { comm: cid } => {
                // Pending flushes must land before this rank reports in:
                // peers past the barrier may rely on our writes.
                drain(&pipe)?;
                sched::emit(|| sched::Event::BarrierEnter { rank });
                // Flat fan-in/fan-out over the group's first rank, using a
                // per-comm tag so concurrent groups stay independent.
                let members = &program.comms[cid.0 as usize];
                let leader = members[0];
                let tag = BARRIER_TAG_BASE + u64::from(cid.0);
                if rank == leader {
                    for &m in members.iter().skip(1) {
                        let _ = comm.recv_bytes(m, tag)?;
                    }
                    for &m in members.iter().skip(1) {
                        comm.send_bytes(m, tag, Bytes::new())?;
                    }
                } else {
                    comm.send_bytes(leader, tag, Bytes::new())?;
                    let _ = comm.recv_bytes(leader, tag)?;
                }
            }
            Op::Open { file, create } => {
                let spec = &program.files[file.0 as usize];
                if spec.atomic && cfg.stage.is_some() {
                    // Tier-staged file: no filesystem object exists
                    // until the drain engine publishes it.
                    i += 1;
                    continue;
                }
                let final_path = base.join(&spec.name);
                // Atomic files live under their `.tmp` sibling until commit.
                let path = if spec.atomic {
                    commit::tmp_path(&final_path)
                } else {
                    final_path
                };
                let f = if *create {
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent).map_err(io_err)?;
                    }
                    OpenOptions::new()
                        .create(true)
                        .truncate(true)
                        .write(true)
                        .read(true)
                        .open(&path)
                        .map_err(io_err)?
                } else {
                    OpenOptions::new()
                        .write(true)
                        .read(true)
                        .open(&path)
                        .map_err(io_err)?
                };
                files.insert(file.0, Arc::new(f));
            }
            Op::WriteAt { file, offset, src } => {
                let spec = &program.files[file.0 as usize];
                if let Some(stage) = cfg.stage.as_ref().filter(|_| spec.atomic) {
                    // Tier-staged: the slab append is the whole
                    // foreground cost (memory speed); per-write fault
                    // hooks don't apply — the staged path's failure
                    // mode is losing the tier, not a torn write.
                    let end = write_run_len(
                        ops,
                        i,
                        file.0,
                        *offset,
                        cfg.coalesce_max_bytes,
                        cfg.coalesce_max_ops,
                    );
                    let total: u64 = ops[i..end].iter().map(|o| src_len(write_src(o))).sum();
                    counters::add_checkpoint_bytes(total);
                    let mut off = *offset;
                    for o in &ops[i..end] {
                        let res = match *write_src(o) {
                            DataRef::Own { off: po, len } => stage.append(
                                &spec.name,
                                off,
                                &payload[po as usize..(po + len) as usize],
                            ),
                            DataRef::Staging { off: so, len } => stage.append(
                                &spec.name,
                                off,
                                &staging[so as usize..(so + len) as usize],
                            ),
                            DataRef::Synthetic { len } => {
                                let data: Vec<u8> =
                                    (0..len).map(|k| synthetic_byte(off + k)).collect();
                                stage.append(&spec.name, off, &data)
                            }
                        };
                        res.map_err(|e| io_err(io::Error::other(e)))?;
                        off += src_len(write_src(o));
                    }
                    i = end;
                    continue;
                }
                // Coalesce byte-contiguous same-file writes into one
                // vectored write (skipped when faults are armed: the
                // FaultPlan counts logical writes per plan op, and under
                // DeepCopy, which keeps the legacy one-op-one-write shape).
                let coalesce = mode == CopyMode::ZeroCopy && !cfg.faults.is_armed();
                let end = if coalesce {
                    write_run_len(
                        ops,
                        i,
                        file.0,
                        *offset,
                        cfg.coalesce_max_bytes,
                        cfg.coalesce_max_ops,
                    )
                } else {
                    i + 1
                };
                let total: u64 = ops[i..end].iter().map(|o| src_len(write_src(o))).sum();
                counters::add_checkpoint_bytes(total);
                let f = files
                    .get(&file.0)
                    .expect("validated plan opens before writing");
                if let Some(p) = &pipe {
                    // Deferred flush: snapshot each source as owned bytes
                    // so the background write never races with later
                    // Pack/Recv staging reuse.
                    if end == i + 1 {
                        let data = resolve(src, &staging, *offset);
                        p.submit(FlushJob::Write {
                            file: Arc::clone(f),
                            offset: *offset,
                            data,
                        })
                        .map_err(pipe_err)?;
                    } else {
                        let mut bufs = Vec::with_capacity(end - i);
                        let mut off = *offset;
                        for o in &ops[i..end] {
                            let s = write_src(o);
                            bufs.push(resolve(s, &staging, off));
                            off += src_len(s);
                        }
                        p.submit(FlushJob::WriteV {
                            file: Arc::clone(f),
                            offset: *offset,
                            bufs,
                        })
                        .map_err(pipe_err)?;
                    }
                } else if end == i + 1 {
                    // Serial single write: completes before the op
                    // retires, so ZeroCopy writes straight from the
                    // borrowed source — no snapshot.
                    match (mode, src) {
                        (CopyMode::ZeroCopy, &DataRef::Own { off, len }) => {
                            let data = &payload[off as usize..(off + len) as usize];
                            fault::write_at_with_retry(
                                f,
                                rank,
                                *offset,
                                data,
                                &cfg.faults,
                                cfg.write_retries,
                                cfg.retry_backoff,
                            )
                            .map_err(write_err)?;
                        }
                        (CopyMode::ZeroCopy, &DataRef::Staging { off, len }) => {
                            let data = &staging[off as usize..(off + len) as usize];
                            fault::write_at_with_retry(
                                f,
                                rank,
                                *offset,
                                data,
                                &cfg.faults,
                                cfg.write_retries,
                                cfg.retry_backoff,
                            )
                            .map_err(write_err)?;
                        }
                        (_, s) => {
                            let data = resolve(s, &staging, *offset);
                            fault::write_at_with_retry(
                                f,
                                rank,
                                *offset,
                                &data,
                                &cfg.faults,
                                cfg.write_retries,
                                cfg.retry_backoff,
                            )
                            .map_err(write_err)?;
                        }
                    }
                } else {
                    // Serial coalesced run: gather borrowed slices (plus
                    // generated synthetic chunks), one vectored write.
                    enum Chunk {
                        Payload(usize, usize),
                        Staging(usize, usize),
                        Owned(Bytes),
                    }
                    let mut chunks = Vec::with_capacity(end - i);
                    let mut off = *offset;
                    for o in &ops[i..end] {
                        match *write_src(o) {
                            DataRef::Own { off: po, len } => {
                                chunks.push(Chunk::Payload(po as usize, len as usize))
                            }
                            DataRef::Staging { off: so, len } => {
                                chunks.push(Chunk::Staging(so as usize, len as usize))
                            }
                            DataRef::Synthetic { len } => chunks.push(Chunk::Owned(
                                BufPool::global()
                                    .from_fn(len as usize, |k| synthetic_byte(off + k as u64)),
                            )),
                        }
                        off += src_len(write_src(o));
                    }
                    let slices: Vec<&[u8]> = chunks
                        .iter()
                        .map(|c| match c {
                            Chunk::Payload(o, l) => &payload[*o..*o + *l],
                            Chunk::Staging(o, l) => &staging[*o..*o + *l],
                            Chunk::Owned(b) => b.as_ref(),
                        })
                        .collect();
                    fault::write_vectored_at(
                        f,
                        rank,
                        *offset,
                        &slices,
                        &cfg.faults,
                        cfg.write_retries,
                        cfg.retry_backoff,
                    )
                    .map_err(write_err)?;
                }
                i = end;
                continue;
            }
            Op::ReadAt {
                file,
                offset,
                len,
                staging_off,
            } => {
                // Read-after-write: pending flushes must land first.
                drain(&pipe)?;
                let dst =
                    &mut staging[*staging_off as usize..*staging_off as usize + *len as usize];
                files
                    .get(&file.0)
                    .expect("validated plan opens before reading")
                    .read_exact_at(dst, *offset)
                    .map_err(io_err)?;
            }
            Op::Close { file } => {
                if let Some(f) = files.remove(&file.0) {
                    if let Some(p) = &pipe {
                        p.submit(FlushJob::Close {
                            file: f,
                            fsync: cfg.fsync_on_close,
                        })
                        .map_err(pipe_err)?;
                    } else if cfg.fsync_on_close {
                        if let Some(e) = cfg.faults.on_fsync(rank) {
                            return Err(io_err(e));
                        }
                        f.sync_all()
                            .inspect_err(|_| cfg.faults.latch_fsync_failure(rank))
                            .map_err(io_err)?;
                        crash::record_fsync_file(&f);
                    }
                }
            }
            Op::Commit { file } => {
                let spec = &program.files[file.0 as usize];
                if let Some(stage) = cfg.stage.as_ref().filter(|_| spec.atomic) {
                    // Sealing is the whole commit; the drain engine
                    // publishes to the PFS in the background.
                    stage.seal_file(&spec.name, spec.size);
                    i += 1;
                    continue;
                }
                let final_path = base.join(&spec.name);
                let tmp = commit::tmp_path(&final_path);
                if let Some(p) = &pipe {
                    // Fault check and rename run inside the job, after
                    // this writer's data writes (FIFO per writer) —
                    // commit stays the last op on the owner.
                    p.submit(FlushJob::Commit {
                        tmp,
                        final_path,
                        size: spec.size,
                        fsync: cfg.fsync_on_close,
                    })
                    .map_err(pipe_err)?;
                } else {
                    if cfg.faults.on_commit(rank) {
                        // Die after the data writes, before the rename:
                        // the final name must never appear.
                        return Err(RtError::Killed { rank });
                    }
                    commit::commit_file_with_faults(
                        &tmp,
                        &final_path,
                        spec.size,
                        cfg.fsync_on_close,
                        &cfg.faults,
                        rank,
                    )
                    .map_err(io_err)?;
                    sched::emit(|| sched::Event::ExtentCommit {
                        owner: rank,
                        by: rank,
                        path_hash: sched::path_fingerprint(&final_path),
                    });
                }
            }
        }
        i += 1;
    }
    drain(&pipe)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use crate::format::materialize_payloads;
    use crate::layout::DataLayout;
    use crate::strategy::{CheckpointSpec, Strategy};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-rt-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn send_recv_and_barrier() {
        let results = run(4, |mut comm| {
            let r = comm.rank();
            // Ring: send to the right, receive from the left.
            comm.send((r + 1) % 4, 7, &[r as u8; 3]).expect("send");
            let left = comm.recv((r + 3) % 4, 7).expect("recv");
            comm.barrier();
            left[0]
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"one").expect("send");
                comm.send(1, 2, b"two").expect("send");
                0
            } else {
                // Receive in reverse order.
                let two = comm.recv(0, 2).expect("recv");
                let one = comm.recv(0, 1).expect("recv");
                assert_eq!(two, b"two");
                assert_eq!(one, b"one");
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn recv_times_out_with_typed_error() {
        let errs = run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.set_recv_timeout(Duration::from_millis(50));
                // Nobody ever sends on tag 99.
                Some(comm.recv(1, 99).expect_err("must time out"))
            } else {
                None
            }
        });
        match errs[0].as_ref().expect("rank 0 result") {
            RtError::RecvTimeout {
                rank: 0,
                src: 1,
                tag: 99,
                ..
            } => {}
            other => panic!("expected RecvTimeout, got {other}"),
        }
    }

    #[test]
    fn stalled_receiver_bounds_resident_queue_and_times_out() {
        // The pre-PR unbounded channel let a burst against a stalled
        // receiver land every message (unbounded resident bytes). With
        // bounded mailboxes exactly `cap` messages land, the next send
        // blocks, and the typed timeout surfaces.
        let before = counters::service_snapshot();
        let cap = 4usize;
        let sent = run_with_capacity(2, cap, |mut comm| {
            if comm.rank() == 0 {
                comm.set_recv_timeout(Duration::from_millis(50));
                let mut ok = 0usize;
                let err = loop {
                    match comm.send(1, 5, &[7u8; 1024]) {
                        Ok(()) => ok += 1,
                        Err(e) => break e,
                    }
                    assert!(
                        ok <= cap,
                        "unbounded queueing: {ok} sends landed in a capacity-{cap} mailbox"
                    );
                };
                match err {
                    RtError::SendTimeout {
                        rank: 0,
                        dst: 1,
                        tag: 5,
                        ..
                    } => {}
                    other => panic!("expected SendTimeout, got {other}"),
                }
                comm.barrier();
                ok
            } else {
                // Stalled receiver: never drains its mailbox.
                comm.barrier();
                0
            }
        });
        assert_eq!(sent[0], cap, "resident queue must cap at the mailbox size");
        let delta = counters::service_snapshot().delta_since(&before);
        assert!(delta.send_backpressure_blocks >= 1, "block must be counted");
        assert!(
            delta.send_backpressure_timeouts >= 1,
            "timeout must be counted"
        );
    }

    #[test]
    fn allreduce_and_broadcast() {
        let sums = run(5, |comm| {
            comm.allreduce_f64(f64::from(comm.rank()) + 1.0, |a, b| a + b)
        });
        assert!(sums.iter().all(|&s| (s - 15.0).abs() < 1e-12));
        let payloads = run(3, |mut comm| {
            if comm.rank() == 1 {
                comm.broadcast(1, Some(b"mesh")).expect("broadcast")
            } else {
                comm.broadcast(1, None).expect("broadcast")
            }
        });
        assert!(payloads.iter().all(|p| p == b"mesh"));
    }

    #[test]
    fn plan_under_rt_matches_exec_byte_for_byte() {
        let layout = DataLayout::uniform(8, &[("Ex", 2048), ("Hy", 512)]);
        let fill = |rank: u32, field: usize, buf: &mut [u8]| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (rank as usize * 13 + field * 5 + i) as u8;
            }
        };
        for strategy in [Strategy::rbio(2), Strategy::coio(2), Strategy::OnePfpp] {
            let plan = CheckpointSpec::new(layout.clone(), "rt")
                .strategy(strategy)
                .plan()
                .expect("plan");
            let payloads = materialize_payloads(&plan, fill);

            let dir_exec = tmpdir(&format!("exec-{strategy:?}").replace([' ', ':', '{', '}'], ""));
            execute(&plan.program, payloads.clone(), &ExecConfig::new(&dir_exec)).expect("exec");

            let dir_rt = tmpdir(&format!("rt-{strategy:?}").replace([' ', ':', '{', '}'], ""));
            let program = &plan.program;
            let payloads_ref = &payloads;
            let dir_rt_ref = &dir_rt;
            run(8, |mut comm| {
                let rank = comm.rank();
                checkpoint_rank(&mut comm, program, &payloads_ref[rank as usize], dir_rt_ref)
                    .expect("rt checkpoint");
            });

            for pf in &plan.plan_files {
                let a = std::fs::read(dir_exec.join(&pf.name)).expect("exec file");
                let b = std::fs::read(dir_rt.join(&pf.name)).expect("rt file");
                assert_eq!(a, b, "{strategy:?}: {} differs", pf.name);
            }
            std::fs::remove_dir_all(&dir_exec).ok();
            std::fs::remove_dir_all(&dir_rt).ok();
        }
    }

    #[test]
    fn pipelined_rt_matches_serial_rt_byte_for_byte() {
        let layout = DataLayout::uniform(8, &[("Ex", 2048), ("Hy", 512)]);
        let fill = |rank: u32, field: usize, buf: &mut [u8]| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (rank as usize * 31 + field * 7 + i) as u8;
            }
        };
        for strategy in [Strategy::rbio(2), Strategy::coio(2), Strategy::OnePfpp] {
            let plan = CheckpointSpec::new(layout.clone(), "rtp")
                .strategy(strategy)
                .plan()
                .expect("plan");
            let payloads = materialize_payloads(&plan, fill);
            let tag = format!("{strategy:?}").replace([' ', ':', '{', '}'], "");
            let dir_serial = tmpdir(&format!("ps-{tag}"));
            let dir_pipe = tmpdir(&format!("pp-{tag}"));
            let program = &plan.program;
            let payloads_ref = &payloads;
            for (dir, depth) in [(&dir_serial, 1u32), (&dir_pipe, 3)] {
                let cfg = RtConfig::new(dir).pipeline_depth(depth).pipeline_jitter(11);
                let cfg_ref = &cfg;
                run(8, |mut comm| {
                    let rank = comm.rank();
                    checkpoint_rank_with(&mut comm, program, &payloads_ref[rank as usize], cfg_ref)
                        .expect("rt checkpoint");
                });
            }
            for pf in &plan.plan_files {
                let a = std::fs::read(dir_serial.join(&pf.name)).expect("serial file");
                let b = std::fs::read(dir_pipe.join(&pf.name)).expect("pipelined file");
                assert_eq!(a, b, "{strategy:?}: {} differs", pf.name);
                assert!(!dir_pipe.join(format!("{}.tmp", pf.name)).exists());
            }
            std::fs::remove_dir_all(&dir_serial).ok();
            std::fs::remove_dir_all(&dir_pipe).ok();
        }
    }

    #[test]
    fn app_loop_with_interleaved_checkpoints() {
        // An SPMD app: iterate, halo-exchange, checkpoint mid-loop.
        let layout = DataLayout::uniform(4, &[("u", 64)]);
        let plan = CheckpointSpec::new(layout, "loop")
            .strategy(Strategy::rbio(1))
            .plan()
            .expect("plan");
        let dir = tmpdir("app-loop");
        let program = &plan.program;
        let dir_ref = &dir;
        let finals = run(4, |mut comm| {
            let r = comm.rank();
            let mut u = [f64::from(r); 16];
            for _ in 0..3 {
                // "Solve": average with the left neighbour's edge value.
                comm.send((r + 1) % 4, 42, &u[15].to_le_bytes())
                    .expect("send");
                let left = comm.recv((r + 3) % 4, 42).expect("recv");
                let left = f64::from_le_bytes(left.try_into().expect("8 bytes"));
                for v in u.iter_mut() {
                    *v = 0.5 * (*v + left);
                }
                // Checkpoint collectively with the current state.
                let mut payload = vec![0u8; program.payload[r as usize] as usize];
                for (i, v) in u.iter().take(8).enumerate() {
                    payload[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
                }
                checkpoint_rank(&mut comm, program, &payload, dir_ref).expect("checkpoint");
                comm.barrier();
            }
            comm.allreduce_f64(u[0], |a, b| a + b)
        });
        // Everybody agrees on the reduction.
        assert!(finals.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        std::fs::remove_dir_all(&dir).ok();
    }
}
