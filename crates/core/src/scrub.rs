//! Offline checkpoint scrubber: walk a quiesced checkpoint directory's
//! committed generations, re-verify what the commit markers promised,
//! classify any damage found, and (optionally) repair it from the
//! nearest redundant copy.
//!
//! The scrubber is the slow-path complement to the fast restore-time
//! checks in [`crate::manager`]: a restore verifies the one generation
//! it is about to trust, while a scrub sweeps *every* retained
//! generation on a schedule — catching silent media decay before the
//! damaged generation is the one a restart needs.
//!
//! Damage classes:
//!
//! * **Torn file** — a checkpoint file's size, header CRC, or per-field
//!   footer CRCs no longer match its commit marker. Detected cheaply
//!   (size + header) on every pass; the full-body footer re-verify runs
//!   at the configured [`ScrubConfig::deep_rate`] so a scrub's read
//!   bandwidth is tunable against the PFS.
//! * **Missing file** — the marker references a file that is gone.
//! * **Orphaned tmp** — a `*.tmp` left by a crashed commit; never
//!   referenced by any marker, reaped under `repair`.
//! * **Metadata divergence** — manifest and marker disagree about the
//!   generation's extent set, or the manifest itself is torn.
//!
//! Repair sources the burst-buffer tier: a burst copy is committed with
//! the same footer protocol as the PFS file, so after footer
//! verification it is a byte-identical replacement, installed via the
//! usual `tmp` + `rename` + dir-fsync path. Files with no healthy
//! redundant copy stay classified-but-unrepaired — the report is the
//! operator's signal to fall back a generation.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rbio_profile::counters;

use crate::commit;
use crate::format::{crc32, decode_header};

/// What a scrub found wrong with one on-disk object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DamageKind {
    /// Size / header CRC / footer CRC mismatch against the marker.
    TornFile,
    /// The marker references a file that is not on disk.
    MissingFile,
    /// A `*.tmp` from a crashed commit, referenced by nothing.
    OrphanTmp,
    /// Manifest and marker disagree (or the manifest is torn).
    MetadataDivergence,
}

impl std::fmt::Display for DamageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DamageKind::TornFile => "torn-file",
            DamageKind::MissingFile => "missing-file",
            DamageKind::OrphanTmp => "orphan-tmp",
            DamageKind::MetadataDivergence => "metadata-divergence",
        };
        f.write_str(s)
    }
}

/// One damaged object and what happened to it.
#[derive(Clone, Debug)]
pub struct Damage {
    /// Generation the object belongs to (`None` for stray orphans).
    pub step: Option<u64>,
    /// File name relative to the checkpoint directory.
    pub file: String,
    /// Damage class.
    pub kind: DamageKind,
    /// Human-readable specifics.
    pub detail: String,
    /// Whether a repair landed (burst-copy reinstall or orphan reap).
    pub repaired: bool,
}

/// Scrub outcome: what was walked, what was read, what was wrong.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Committed generations walked.
    pub generations: u64,
    /// Marker-referenced files checked (size + header CRC).
    pub files_checked: u64,
    /// Bytes whose footer CRCs were fully re-verified (deep passes).
    pub bytes_verified: u64,
    /// Everything found wrong, in walk order.
    pub damage: Vec<Damage>,
    /// Damage entries a repair fixed.
    pub repairs: u64,
}

impl ScrubReport {
    /// True when the sweep found nothing wrong.
    pub fn clean(&self) -> bool {
        self.damage.is_empty()
    }

    /// Damage that survived the pass (found and not repaired).
    pub fn unrepaired(&self) -> usize {
        self.damage.iter().filter(|d| !d.repaired).count()
    }

    /// Single-line JSON for logs and bench artifacts.
    pub fn to_json(&self) -> String {
        let mut items = String::new();
        for d in &self.damage {
            if !items.is_empty() {
                items.push(',');
            }
            items.push_str(&format!(
                "{{\"step\":{},\"file\":\"{}\",\"kind\":\"{}\",\"repaired\":{}}}",
                d.step.map_or_else(|| "null".into(), |s| s.to_string()),
                d.file,
                d.kind,
                d.repaired
            ));
        }
        format!(
            "{{\"generations\":{},\"files_checked\":{},\"bytes_verified\":{},\
             \"repairs\":{},\"damage\":[{items}]}}",
            self.generations, self.files_checked, self.bytes_verified, self.repairs
        )
    }
}

/// How to run a scrub.
#[derive(Clone, Debug)]
pub struct ScrubConfig {
    /// The checkpoint (PFS) directory to walk.
    pub dir: PathBuf,
    /// Burst-buffer directory holding redundant committed copies, if
    /// the deployment drains through one. Repairs source from here.
    pub burst_dir: Option<PathBuf>,
    /// Actually fix what is found (burst reinstalls, orphan reaps).
    /// Off = dry run: classify and report only.
    pub repair: bool,
    /// Fraction of marker-referenced files (0.0..=1.0) whose per-field
    /// footer CRCs are fully re-read and re-verified. Size and header
    /// CRC are always checked; the deep pass is the read-bandwidth
    /// knob. 1.0 re-reads everything.
    pub deep_rate: f64,
}

impl ScrubConfig {
    /// Full-depth dry run over `dir` with no burst tier.
    pub fn new(dir: impl Into<PathBuf>) -> ScrubConfig {
        ScrubConfig {
            dir: dir.into(),
            burst_dir: None,
            repair: false,
            deep_rate: 1.0,
        }
    }
}

/// Parse `stepNNNNNNNNNN.commit` → step number.
fn marker_step(name: &str) -> Option<u64> {
    name.strip_prefix("step")?
        .strip_suffix(".commit")?
        .parse()
        .ok()
}

/// Check one marker-referenced file. `deep` re-reads the whole body and
/// re-verifies the commit footer's per-field CRCs. Returns damage
/// detail on mismatch, `Ok(bytes_deep_verified)` when healthy.
fn check_file(path: &Path, want_size: u64, want_crc: &str, deep: bool) -> Result<u64, String> {
    let meta = match fs::metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err("missing".into()),
        Err(e) => return Err(format!("unreadable: {e}")),
    };
    if meta.len() != want_size {
        return Err(format!(
            "size {} on disk, marker recorded {want_size}",
            meta.len()
        ));
    }
    let f = fs::File::open(path).map_err(|e| format!("open: {e}"))?;
    use std::os::unix::fs::FileExt;
    let mut head = vec![0u8; 16.min(meta.len() as usize)];
    f.read_exact_at(&mut head, 0)
        .map_err(|e| format!("read header: {e}"))?;
    if head.len() < 16 {
        return Err("too short for a header".into());
    }
    let hlen = u64::from_le_bytes(head[8..16].try_into().expect("len 8")).min(meta.len());
    let mut hdr = vec![0u8; hlen as usize];
    f.read_exact_at(&mut hdr, 0)
        .map_err(|e| format!("read header: {e}"))?;
    if format!("{:08x}", crc32(&hdr)) != want_crc {
        return Err("header CRC changed since commit".into());
    }
    if !deep {
        return Ok(0);
    }
    let bytes = fs::read(path).map_err(|e| format!("read body: {e}"))?;
    let header = decode_header(&bytes).map_err(|e| format!("header: {e}"))?;
    if let Some(what) = commit::verify_committed(&bytes, header.expected_file_size()) {
        return Err(what);
    }
    Ok(bytes.len() as u64)
}

/// Reinstall `name` from its burst-tier copy, byte-identically. The
/// burst copy is committed with the same footer protocol, so after its
/// own footer verification the raw bytes are the replacement — written
/// through a `.tmp` sibling and renamed so a crash mid-repair never
/// leaves a half-installed file, then fsynced (file and directory):
/// a repair that can be lost in a power cut is not a repair.
fn repair_from_burst(dir: &Path, burst: &Path, name: &str, want_size: u64) -> Result<(), String> {
    let src = burst.join(name);
    let bytes = fs::read(&src).map_err(|e| format!("burst copy unreadable: {e}"))?;
    if bytes.len() as u64 != want_size {
        return Err(format!(
            "burst copy is {} bytes, marker recorded {want_size}",
            bytes.len()
        ));
    }
    let header = decode_header(&bytes).map_err(|e| format!("burst copy header: {e}"))?;
    if let Some(what) = commit::verify_committed(&bytes, header.expected_file_size()) {
        return Err(format!("burst copy corrupt: {what}"));
    }
    let final_path = dir.join(name);
    let tmp = commit::tmp_path(&final_path);
    let write = || -> io::Result<()> {
        fs::write(&tmp, &bytes)?;
        fs::File::open(&tmp)?.sync_all()?;
        fs::rename(&tmp, &final_path)?;
        fs::File::open(dir)?.sync_all()
    };
    write().map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!("reinstall failed: {e}")
    })
}

/// Extent-name set from committed metadata text, skipping the two
/// header lines (`step N` / `files|extents M`).
fn name_set(text: &str) -> BTreeSet<String> {
    text.lines()
        .skip(2)
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect()
}

/// Walk `cfg.dir` and scrub every committed generation. The directory
/// must be quiesced (no live manager writing) — this is an *offline*
/// scrubber; concurrent commits would be reported as divergence.
pub fn scrub(cfg: &ScrubConfig) -> io::Result<ScrubReport> {
    let mut report = ScrubReport::default();
    let mut steps = Vec::new();
    let mut tmps = Vec::new();
    for entry in fs::read_dir(&cfg.dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(step) = marker_step(&name) {
            steps.push(step);
        } else if name.ends_with(".tmp") {
            tmps.push(name);
        }
    }
    steps.sort_unstable();
    tmps.sort_unstable();

    // Deep-pass decimation: a deterministic accumulator spreads the
    // configured fraction evenly over the walk order (no RNG, so the
    // same directory state always scrubs the same files).
    let rate = cfg.deep_rate.clamp(0.0, 1.0);
    let mut acc = 0.0f64;
    let damage = |report: &mut ScrubReport, d: Damage| {
        counters::add_scrub_damage_found(1);
        if d.repaired {
            counters::add_scrub_repairs(1);
            report.repairs += 1;
        }
        report.damage.push(d);
    };

    for &step in &steps {
        report.generations += 1;
        let marker_name = format!("step{step:010}.commit");
        let marker = match commit::read_committed_text(&cfg.dir.join(&marker_name)) {
            Ok(m) => m,
            Err(e) => {
                // The marker itself is torn: the whole generation is
                // untrustworthy and there is no redundant marker copy.
                damage(
                    &mut report,
                    Damage {
                        step: Some(step),
                        file: marker_name,
                        kind: DamageKind::TornFile,
                        detail: format!("commit marker unreadable: {e}"),
                        repaired: false,
                    },
                );
                continue;
            }
        };
        for line in marker.lines().skip(2) {
            let mut parts = line.split_whitespace();
            let (Some(name), Some(size), Some(want_crc)) =
                (parts.next(), parts.next(), parts.next())
            else {
                damage(
                    &mut report,
                    Damage {
                        step: Some(step),
                        file: format!("step{step:010}.commit"),
                        kind: DamageKind::TornFile,
                        detail: format!("bad marker line: {line}"),
                        repaired: false,
                    },
                );
                continue;
            };
            let Ok(want_size) = size.parse::<u64>() else {
                continue;
            };
            report.files_checked += 1;
            counters::add_scrub_files_checked(1);
            acc += rate;
            let deep = acc >= 1.0;
            if deep {
                acc -= 1.0;
            }
            match check_file(&cfg.dir.join(name), want_size, want_crc, deep) {
                Ok(deep_bytes) => {
                    report.bytes_verified += deep_bytes;
                    counters::add_scrub_bytes_verified(deep_bytes);
                }
                Err(detail) => {
                    let kind = if detail == "missing" {
                        DamageKind::MissingFile
                    } else {
                        DamageKind::TornFile
                    };
                    let mut repaired = false;
                    let mut detail = detail;
                    if cfg.repair {
                        if let Some(burst) = cfg.burst_dir.as_deref() {
                            match repair_from_burst(&cfg.dir, burst, name, want_size) {
                                Ok(()) => repaired = true,
                                Err(e) => detail = format!("{detail}; {e}"),
                            }
                        }
                    }
                    damage(
                        &mut report,
                        Damage {
                            step: Some(step),
                            file: name.to_owned(),
                            kind,
                            detail,
                            repaired,
                        },
                    );
                }
            }
        }
        // Manifest/marker agreement. A missing manifest is legal
        // (pre-manifest directories); a torn or divergent one is not.
        let manifest_path = cfg.dir.join(format!("step{step:010}.manifest"));
        match commit::read_committed_text(&manifest_path) {
            Ok(m) => {
                let extents = name_set(&m);
                let files = name_set(&marker);
                if extents != files {
                    let diff: Vec<&String> = extents.symmetric_difference(&files).collect();
                    damage(
                        &mut report,
                        Damage {
                            step: Some(step),
                            file: format!("step{step:010}.manifest"),
                            kind: DamageKind::MetadataDivergence,
                            detail: format!(
                                "manifest extents and marker files disagree on {diff:?}"
                            ),
                            repaired: false,
                        },
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                damage(
                    &mut report,
                    Damage {
                        step: Some(step),
                        file: format!("step{step:010}.manifest"),
                        kind: DamageKind::MetadataDivergence,
                        detail: format!("manifest unreadable: {e}"),
                        repaired: false,
                    },
                );
            }
        }
    }

    // Stray `.tmp`s: a crashed commit's leavings. Nothing references
    // them, so under `repair` the fix is the reap.
    for name in tmps {
        let mut repaired = false;
        if cfg.repair && fs::remove_file(cfg.dir.join(&name)).is_ok() {
            counters::add_gc_orphans(1);
            repaired = true;
        }
        damage(
            &mut report,
            Damage {
                step: None,
                file: name,
                kind: DamageKind::OrphanTmp,
                detail: "tmp sibling referenced by no commit marker".into(),
                repaired,
            },
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::manager::{CheckpointManager, ManagerConfig};
    use crate::strategy::Strategy;
    use crate::tier::TierConfig;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-scrub-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// One tiered generation drained through a burst dir, quiesced.
    fn seeded(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
        let root = scratch(tag);
        let pfs = root.join("pfs");
        let burst = root.join("burst");
        let layout = DataLayout::uniform(4, &[("u", 512), ("v", 128)]);
        let mut cfg = ManagerConfig::new(&pfs, Strategy::rbio(2));
        cfg.fsync = false;
        cfg.tier = Some(
            TierConfig::new(root.join("local"))
                .burst_dir(&burst)
                .slab_capacity(1 << 20),
        );
        let mgr = CheckpointManager::new(layout, cfg).unwrap();
        mgr.checkpoint(7, |_, _, buf| buf.fill(0x3c)).unwrap();
        mgr.wait_durable(7).unwrap();
        drop(mgr);
        (root, pfs, burst)
    }

    fn first_rbio(dir: &Path) -> PathBuf {
        let mut names: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "rbio"))
            .collect();
        names.sort();
        names.remove(0)
    }

    #[test]
    fn clean_directory_scrubs_clean() {
        let (root, pfs, burst) = seeded("clean");
        let mut cfg = ScrubConfig::new(&pfs);
        cfg.burst_dir = Some(burst);
        let report = scrub(&cfg).unwrap();
        assert!(report.clean(), "{:?}", report.damage);
        assert_eq!(report.generations, 1);
        assert!(report.files_checked >= 2, "{report:?}");
        assert!(
            report.bytes_verified > 0,
            "deep_rate 1.0 must re-read bodies"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_field_is_repaired_from_burst_byte_identically() {
        let (root, pfs, burst) = seeded("torn");
        let victim = first_rbio(&pfs);
        let healthy = fs::read(&victim).unwrap();
        // Flip one payload byte past the header: header CRC still
        // matches, only the deep footer pass can catch it.
        let mut bytes = healthy.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();

        // Dry run classifies but leaves the tear in place.
        let mut cfg = ScrubConfig::new(&pfs);
        cfg.burst_dir = Some(burst.clone());
        let dry = scrub(&cfg).unwrap();
        assert_eq!(dry.damage.len(), 1, "{:?}", dry.damage);
        assert_eq!(dry.damage[0].kind, DamageKind::TornFile);
        assert!(!dry.damage[0].repaired);
        assert_eq!(fs::read(&victim).unwrap(), bytes, "dry run must not write");

        // Repair reinstalls the burst copy byte-for-byte.
        cfg.repair = true;
        let fixed = scrub(&cfg).unwrap();
        assert_eq!(fixed.repairs, 1, "{:?}", fixed.damage);
        assert!(fixed.damage[0].repaired);
        let repaired = fs::read(&victim).unwrap();
        assert_eq!(repaired, healthy, "repair must restore the exact bytes");
        let burst_copy = fs::read(burst.join(victim.file_name().unwrap())).unwrap();
        assert_eq!(
            repaired, burst_copy,
            "repair must be the burst copy verbatim"
        );

        // And the directory now scrubs clean.
        let after = scrub(&cfg).unwrap();
        assert!(after.clean(), "{:?}", after.damage);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_is_reinstalled_from_burst() {
        let (root, pfs, burst) = seeded("missing");
        let victim = first_rbio(&pfs);
        let healthy = fs::read(&victim).unwrap();
        fs::remove_file(&victim).unwrap();

        let mut cfg = ScrubConfig::new(&pfs);
        cfg.burst_dir = Some(burst);
        cfg.repair = true;
        let report = scrub(&cfg).unwrap();
        assert_eq!(report.damage.len(), 1, "{:?}", report.damage);
        assert_eq!(report.damage[0].kind, DamageKind::MissingFile);
        assert!(report.damage[0].repaired);
        assert_eq!(fs::read(&victim).unwrap(), healthy);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn damage_without_a_burst_copy_stays_classified() {
        let (root, pfs, _burst) = seeded("noburst");
        let victim = first_rbio(&pfs);
        fs::remove_file(&victim).unwrap();
        let mut cfg = ScrubConfig::new(&pfs);
        cfg.repair = true; // no burst_dir: nothing to repair from
        let report = scrub(&cfg).unwrap();
        assert_eq!(report.unrepaired(), 1, "{:?}", report.damage);
        assert_eq!(report.damage[0].kind, DamageKind::MissingFile);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn orphan_tmps_and_divergent_manifests_are_classified() {
        let (root, pfs, burst) = seeded("orphans");
        fs::write(pfs.join("step0000000009.rbio.tmp"), b"half-written").unwrap();
        // Rewrite the manifest to reference an extent the marker does
        // not list: metadata divergence.
        commit::commit_text(
            &pfs.join("step0000000007.manifest"),
            "step 7\nextents 1\nghost.rbio 0 primary\n",
            false,
        )
        .unwrap();

        let mut cfg = ScrubConfig::new(&pfs);
        cfg.burst_dir = Some(burst);
        cfg.repair = true;
        let report = scrub(&cfg).unwrap();
        let kinds: Vec<DamageKind> = report.damage.iter().map(|d| d.kind).collect();
        assert!(
            kinds.contains(&DamageKind::MetadataDivergence),
            "{:?}",
            report.damage
        );
        assert!(
            kinds.contains(&DamageKind::OrphanTmp),
            "{:?}",
            report.damage
        );
        let orphan = report
            .damage
            .iter()
            .find(|d| d.kind == DamageKind::OrphanTmp)
            .unwrap();
        assert!(orphan.repaired, "repair mode must reap the orphan");
        assert!(!pfs.join("step0000000009.rbio.tmp").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn deep_rate_decimates_the_body_reads() {
        let (root, pfs, _burst) = seeded("rate");
        let mut cfg = ScrubConfig::new(&pfs);
        cfg.deep_rate = 0.0;
        let shallow = scrub(&cfg).unwrap();
        assert!(shallow.clean(), "{:?}", shallow.damage);
        assert_eq!(shallow.bytes_verified, 0, "rate 0.0 must skip body reads");
        cfg.deep_rate = 1.0;
        let deep = scrub(&cfg).unwrap();
        assert!(deep.bytes_verified > 0);
        assert_eq!(shallow.files_checked, deep.files_checked);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn report_json_is_wellformed() {
        let report = ScrubReport {
            generations: 2,
            files_checked: 4,
            bytes_verified: 1280,
            damage: vec![Damage {
                step: Some(7),
                file: "a.rbio".into(),
                kind: DamageKind::TornFile,
                detail: "x".into(),
                repaired: true,
            }],
            repairs: 1,
        };
        let j = report.to_json();
        assert!(j.contains("\"generations\":2"), "{j}");
        assert!(j.contains("\"kind\":\"torn-file\""), "{j}");
        assert!(j.contains("\"repaired\":true"), "{j}");
    }
}
