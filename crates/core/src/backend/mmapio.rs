//! mmap-backed restart reads.
//!
//! The ring backend's `read_at` maps the checkpoint file read-only and
//! copies the requested range out of the page cache in one pass — no
//! read syscall per chunk, and the kernel readahead works on the whole
//! mapping. The copy into an owned [`Bytes`] is deliberate: restart
//! decode outlives the mapping, and an owned slice keeps the trait's
//! ownership story identical across backends. Platforms (or kernels)
//! where the mapping fails fall back to plain `pread`.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;

use crate::buf::Bytes;

/// Read `len` bytes at `offset` via a transient read-only mapping,
/// falling back to `pread` when the file cannot be mapped (empty file,
/// unsupported platform, kernel refusal).
pub fn read_via_mmap(file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
    if len == 0 {
        return Ok(Bytes::from_vec(Vec::new()));
    }
    let file_len = file.metadata()?.len();
    let end = offset
        .checked_add(len as u64)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "read range overflows"))?;
    if end > file_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("read of {len} bytes at {offset} past file end {file_len}"),
        ));
    }
    // Map from the start of the file: `offset` need not be page-aligned,
    // and checkpoint files are small enough that mapping the prefix is
    // free (pages are only faulted where touched).
    let map_len = end as usize;
    match sys::mmap_ro(file, map_len) {
        Some(ptr) => {
            // SAFETY: the mapping covers [0, end); the range below stays
            // inside it, and the copy finishes before the unmap. The
            // copy is not checkpoint-datapath traffic, so it goes
            // through `from_vec`, not the counted `copy_from_slice`.
            let out = unsafe {
                let src = std::slice::from_raw_parts(ptr.add(offset as usize), len);
                Bytes::from_vec(src.to_vec())
            };
            // SAFETY: `ptr` is the live mapping of exactly `map_len`
            // bytes created above; `out` owns its copy.
            unsafe { sys::munmap_ro(ptr, map_len) };
            Ok(out)
        }
        None => {
            let mut v = vec![0u8; len];
            file.read_exact_at(&mut v, offset)?;
            Ok(Bytes::from_vec(v))
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: usize = 0x1;
    const MAP_SHARED: usize = 0x01;

    /// Map the first `len` bytes of `f` shared read-only. `None` on any
    /// kernel error (the caller falls back to `pread`).
    pub fn mmap_ro(f: &File, len: usize) -> Option<*const u8> {
        if len == 0 {
            return None;
        }
        let fd = f.as_raw_fd() as isize as usize;
        // SAFETY: a fresh read-only file mapping at a kernel-chosen
        // address aliases nothing in this process.
        let ret = unsafe { mmap(0, len, PROT_READ, MAP_SHARED, fd, 0) };
        if (-4095..0).contains(&(ret as isize)) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Unmap a mapping returned by [`mmap_ro`].
    ///
    /// # Safety
    /// `ptr` must be a live mapping of exactly `len` bytes with no
    /// outstanding borrows.
    pub unsafe fn munmap_ro(ptr: *const u8, len: usize) {
        // SAFETY: caller contract above.
        unsafe {
            munmap(ptr as usize, len);
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret;
        // SAFETY: mmap touches no memory the compiler knows about; all
        // six args are passed per the x86_64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9usize => ret, // __NR_mmap
                in("rdi") addr,
                in("rsi") len,
                in("rdx") prot,
                in("r10") flags,
                in("r8") fd,
                in("r9") off,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret;
        // SAFETY: munmap of a region this module mapped.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11usize => ret, // __NR_munmap
                in("rdi") addr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret;
        // SAFETY: as the x86_64 variant, per the aarch64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x2") prot,
                in("x3") flags,
                in("x4") fd,
                in("x5") off,
                in("x8") 222usize, // __NR_mmap
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret;
        // SAFETY: munmap of a region this module mapped.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x8") 215usize, // __NR_munmap
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub fn mmap_ro(_f: &std::fs::File, _len: usize) -> Option<*const u8> {
        None
    }

    /// No read mappings exist on this platform.
    ///
    /// # Safety
    /// Never called (nothing maps), but keeps the call site uniform.
    pub unsafe fn munmap_ro(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mmap_read_round_trips_and_bounds_check() {
        let dir = std::env::temp_dir().join(format!("rbio-mmapio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("f");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&p)
            .expect("open");
        let data: Vec<u8> = (0..200u8).collect();
        f.write_all(&data).expect("write");
        f.flush().expect("flush");
        let got = read_via_mmap(&f, 10, 50).expect("read");
        assert_eq!(got.as_ref(), &data[10..60]);
        assert!(read_via_mmap(&f, 190, 50).is_err(), "past-EOF must fail");
        assert!(read_via_mmap(&f, 0, 0).expect("empty").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
