//! Real io_uring syscalls behind the `io-uring` cargo feature.
//!
//! [`UringBackend`] drives the kernel's submission/completion rings
//! directly: one transient ring per write batch, `IORING_OP_WRITEV`
//! SQEs linked with `IOSQE_IO_LINK` (execution stops at the first
//! failure; later SQEs complete as `-ECANCELED`), a single
//! `io_uring_enter` that submits the batch and waits for all its
//! completions, and CQE-driven reaping that holds every op's buffers
//! until its completion is consumed — the same contract the emulation
//! ([`super::ring::RingBackend`]) enforces, with the same sched events,
//! so a trace from either backend replays against the same shadow
//! model.
//!
//! Two deliberate scope limits keep the syscall path auditable:
//!
//! * **Armed fault plans delegate to the emulation.** Fault injection
//!   needs a per-attempt consult loop around each logical write; the
//!   kernel cannot run our fault hooks mid-ring. Production runs have
//!   unarmed plans and stay on the syscall path.
//! * **Transient errors and short writes finish via `pwrite`.** A CQE
//!   carrying `-EINTR`/`-EAGAIN` or a partial length is completed with
//!   the blocking full-delivery loop (counted as a short-write retry)
//!   rather than another ring round trip — correctness first, the win
//!   is the batched submission of the common case.
//!
//! Containers commonly seccomp-block `io_uring_setup`, so
//! [`kernel_supported`] probes once at startup and the backend factory
//! falls back to the emulation when the probe fails.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use rbio_profile::counters;

use super::ring::{RingBackend, RingConfig};
use super::{BatchOutcome, IoBackend, IoCtx, WriteOp};
use crate::buf::Bytes;
use crate::fault::{self, WriteError};
use crate::sched;

const IORING_OP_WRITEV: u8 = 2;
const IOSQE_IO_LINK: u8 = 1 << 2;
const IORING_ENTER_GETEVENTS: u32 = 1;
const IORING_OFF_SQ_RING: usize = 0;
const IORING_OFF_CQ_RING: usize = 0x0800_0000;
const IORING_OFF_SQES: usize = 0x1000_0000;
const IORING_FEAT_SINGLE_MMAP: u32 = 1;
const ECANCELED: i32 = 125;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    resv2: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    resv2: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct RawSqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    pad: [u64; 3],
}

#[repr(C)]
#[derive(Clone, Copy)]
struct RawCqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

#[repr(C)]
struct IoVec {
    base: *const u8,
    len: usize,
}

/// One live kernel ring (fd plus its three mappings), torn down on drop.
struct KernelRing {
    fd: i32,
    sq_ring: *mut u8,
    sq_ring_len: usize,
    cq_ring: *mut u8,
    cq_ring_len: usize,
    sqes: *mut RawSqe,
    sqes_len: usize,
    single_mmap: bool,
    p: UringParams,
}

// SAFETY: the ring is confined to one `run_writes` call on one thread.
unsafe impl Send for KernelRing {}

impl KernelRing {
    fn new(entries: u32) -> io::Result<KernelRing> {
        let mut p = UringParams::default();
        let fd = sys::io_uring_setup(entries, &mut p);
        if fd < 0 {
            return Err(io::Error::from_raw_os_error(-fd));
        }
        let sq_ring_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
        let cq_ring_len =
            p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<RawCqe>();
        let single_mmap = p.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_map_len = if single_mmap {
            sq_ring_len.max(cq_ring_len)
        } else {
            sq_ring_len
        };
        let sq_ring = sys::mmap_ring(fd, sq_map_len, IORING_OFF_SQ_RING);
        if sq_ring.is_null() {
            sys::close(fd);
            return Err(io::Error::other("mmap of the SQ ring failed"));
        }
        let (cq_ring, cq_map_len) = if single_mmap {
            (sq_ring, sq_map_len)
        } else {
            let m = sys::mmap_ring(fd, cq_ring_len, IORING_OFF_CQ_RING);
            if m.is_null() {
                // SAFETY: sq_ring is the live mapping created above.
                unsafe { sys::munmap_ring(sq_ring, sq_map_len) };
                sys::close(fd);
                return Err(io::Error::other("mmap of the CQ ring failed"));
            }
            (m, cq_ring_len)
        };
        let sqes_len = p.sq_entries as usize * std::mem::size_of::<RawSqe>();
        let sqes = sys::mmap_ring(fd, sqes_len, IORING_OFF_SQES) as *mut RawSqe;
        if sqes.is_null() {
            // SAFETY: both ring mappings above are live.
            unsafe {
                sys::munmap_ring(sq_ring, sq_map_len);
                if !single_mmap {
                    sys::munmap_ring(cq_ring, cq_map_len);
                }
            }
            sys::close(fd);
            return Err(io::Error::other("mmap of the SQE array failed"));
        }
        Ok(KernelRing {
            fd,
            sq_ring,
            sq_ring_len: sq_map_len,
            cq_ring,
            cq_ring_len: cq_map_len,
            sqes,
            sqes_len,
            single_mmap,
            p,
        })
    }

    /// An atomic view of a `u32` ring field at `off` from `base`.
    ///
    /// # Safety
    /// `off` must come from this ring's kernel-filled offsets.
    unsafe fn atomic(&self, base: *mut u8, off: u32) -> &AtomicU32 {
        // SAFETY: the kernel aligned these fields; the mapping outlives
        // the borrow (tied to &self).
        unsafe { &*(base.add(off as usize) as *const AtomicU32) }
    }

    /// Queue `sqes` (≤ sq_entries) and submit them with one
    /// `io_uring_enter`, waiting for `sqes.len()` completions.
    fn submit_and_wait(&self, sqes: &[RawSqe]) -> io::Result<()> {
        let mask = self.p.sq_entries - 1;
        // SAFETY: offsets are kernel-provided for this mapping.
        let (tail_a, array) = unsafe {
            (
                self.atomic(self.sq_ring, self.p.sq_off.tail),
                self.sq_ring.add(self.p.sq_off.array as usize) as *mut u32,
            )
        };
        let mut tail = tail_a.load(Ordering::Relaxed);
        for sqe in sqes {
            let idx = tail & mask;
            // SAFETY: idx < sq_entries, inside both mapped arrays.
            unsafe {
                *self.sqes.add(idx as usize) = *sqe;
                *array.add(idx as usize) = idx;
            }
            tail = tail.wrapping_add(1);
        }
        // Publish the new tail before entering the kernel.
        tail_a.store(tail, Ordering::Release);
        let want = sqes.len() as u32;
        loop {
            let ret = sys::io_uring_enter(self.fd, want, want, IORING_ENTER_GETEVENTS);
            if ret >= 0 {
                return Ok(());
            }
            if -ret != EINTR {
                return Err(io::Error::from_raw_os_error(-ret));
            }
        }
    }

    /// Pop every available CQE.
    fn reap_all(&self) -> Vec<RawCqe> {
        // SAFETY: offsets are kernel-provided for this mapping.
        let (head_a, tail_a, cqes) = unsafe {
            (
                self.atomic(self.cq_ring, self.p.cq_off.head),
                self.atomic(self.cq_ring, self.p.cq_off.tail),
                self.cq_ring.add(self.p.cq_off.cqes as usize) as *const RawCqe,
            )
        };
        let mask = self.p.cq_entries - 1;
        let mut head = head_a.load(Ordering::Relaxed);
        let tail = tail_a.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(tail.wrapping_sub(head) as usize);
        while head != tail {
            // SAFETY: (head & mask) < cq_entries, inside the mapping.
            out.push(unsafe { *cqes.add((head & mask) as usize) });
            head = head.wrapping_add(1);
        }
        head_a.store(head, Ordering::Release);
        out
    }
}

impl Drop for KernelRing {
    fn drop(&mut self) {
        // SAFETY: these are the live mappings created in `new`.
        unsafe {
            sys::munmap_ring(self.sqes as *mut u8, self.sqes_len);
            sys::munmap_ring(self.sq_ring, self.sq_ring_len);
            if !self.single_mmap {
                sys::munmap_ring(self.cq_ring, self.cq_ring_len);
            }
        }
        sys::close(self.fd);
    }
}

/// Whether this kernel (and seccomp policy) lets us set up an io_uring.
/// Probed once per process.
pub fn kernel_supported() -> bool {
    static SUPPORTED: OnceLock<bool> = OnceLock::new();
    *SUPPORTED.get_or_init(|| {
        let mut p = UringParams::default();
        let fd = sys::io_uring_setup(4, &mut p);
        if fd >= 0 {
            sys::close(fd);
            true
        } else {
            false
        }
    })
}

/// The real-syscall completion-queue backend.
pub struct UringBackend {
    cfg: RingConfig,
    /// Armed fault plans need per-attempt hooks the kernel cannot run;
    /// those batches run on the emulation with identical semantics.
    fallback: RingBackend,
}

impl UringBackend {
    /// A backend with explicit ring geometry.
    pub fn with_config(cfg: RingConfig) -> Self {
        UringBackend {
            cfg,
            fallback: RingBackend::with_config(cfg),
        }
    }
}

impl IoBackend for UringBackend {
    fn name(&self) -> &'static str {
        "ring-uring"
    }

    fn max_batch(&self) -> usize {
        self.cfg.batch.max(1)
    }

    fn run_writes(&self, ctx: &IoCtx<'_>, ops: Vec<WriteOp>) -> BatchOutcome {
        if ctx.faults.is_armed() {
            return self.fallback.run_writes(ctx, ops);
        }
        match self.run_ring(ctx, &ops) {
            Ok(outcome) => outcome,
            // Ring setup failed at runtime (fd limits, seccomp change):
            // the batch still has to land — use the emulation.
            Err(_) => self.fallback.run_writes(ctx, ops),
        }
    }

    fn read_at(&self, file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
        super::mmapio::read_via_mmap(file, offset, len)
    }

    fn sync_file(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }
}

impl UringBackend {
    fn run_ring(&self, ctx: &IoCtx<'_>, ops: &[WriteOp]) -> io::Result<BatchOutcome> {
        let entries = (ops.len().max(1) as u32).next_power_of_two();
        let ring = KernelRing::new(entries)?;
        // iovec arrays must outlive the enter call; ops (and their
        // Bytes) outlive the whole reap loop — ownership until reap.
        let iovecs: Vec<Vec<IoVec>> = ops
            .iter()
            .map(|op| {
                op.bufs
                    .iter()
                    .map(|b| IoVec {
                        base: b.as_ref().as_ptr(),
                        len: b.len(),
                    })
                    .collect()
            })
            .collect();
        let sqes: Vec<RawSqe> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| RawSqe {
                opcode: IORING_OP_WRITEV,
                // Linked chain: a failure cancels every later op.
                flags: if i + 1 < ops.len() { IOSQE_IO_LINK } else { 0 },
                fd: op.file.as_raw_fd(),
                off: op.offset,
                addr: iovecs[i].as_ptr() as u64,
                len: iovecs[i].len() as u32,
                user_data: i as u64 + 1,
                ..RawSqe::default()
            })
            .collect();
        for sqe in &sqes {
            sched::emit(|| sched::Event::SubmitQueued {
                wid: ctx.wid,
                udata: sqe.user_data,
                hash: 0,
            });
        }
        ring.submit_and_wait(&sqes)?;
        sched::emit(|| sched::Event::SubmitBatched {
            wid: ctx.wid,
            count: sqes.len(),
        });

        let mut error: Option<(usize, WriteError)> = None;
        let mut reaped = 0usize;
        while reaped < ops.len() {
            let cqes = ring.reap_all();
            if cqes.is_empty() {
                // Completions may trail the enter return; collect them.
                let ret = sys::io_uring_enter(ring.fd, 0, 1, IORING_ENTER_GETEVENTS);
                if ret < 0 && -ret != EINTR {
                    return Err(io::Error::from_raw_os_error(-ret));
                }
                continue;
            }
            for cqe in cqes {
                reaped += 1;
                let i = (cqe.user_data - 1) as usize;
                let op = &ops[i];
                sched::emit(|| sched::Event::CompletionReaped {
                    wid: ctx.wid,
                    udata: cqe.user_data,
                    hash: 0,
                    ok: cqe.res >= 0,
                });
                let expected = op.len();
                if cqe.res < 0 {
                    let err = -cqe.res;
                    if err == ECANCELED {
                        continue;
                    }
                    if err == EINTR || err == EAGAIN {
                        // Transient: finish with the blocking loop.
                        if let Err(e) = finish_op(op, 0) {
                            set_first(&mut error, i, e);
                        }
                        continue;
                    }
                    set_first(
                        &mut error,
                        i,
                        WriteError::Io(io::Error::from_raw_os_error(err)),
                    );
                } else if (cqe.res as u64) < expected {
                    let written = cqe.res as u64;
                    sched::emit(|| sched::Event::ShortWriteResubmit {
                        wid: ctx.wid,
                        udata: cqe.user_data,
                        written,
                        expected,
                    });
                    counters::add_short_write_retries(1);
                    if let Err(e) = finish_op(op, written) {
                        set_first(&mut error, i, e);
                    }
                }
            }
        }
        Ok(BatchOutcome { retries: 0, error })
    }
}

fn set_first(error: &mut Option<(usize, WriteError)>, i: usize, e: WriteError) {
    let earlier = match error {
        Some((j, _)) => i < *j,
        None => true,
    };
    if earlier {
        *error = Some((i, e));
    }
}

/// Deliver the remainder of `op` past `already` bytes with the blocking
/// full-delivery loop.
fn finish_op(op: &WriteOp, already: u64) -> Result<(), WriteError> {
    let mut done = 0u64;
    for b in &op.bufs {
        let blen = b.len() as u64;
        if done + blen > already {
            let skip = already.saturating_sub(done) as usize;
            fault::write_full_at(&op.file, op.offset + done, b.as_ref(), skip)?;
        }
        done += blen;
    }
    Ok(())
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::UringParams;

    /// `io_uring_setup(2)`: returns the ring fd or a negative errno.
    pub fn io_uring_setup(entries: u32, p: &mut UringParams) -> i32 {
        // SAFETY: `p` is a live, writable params struct of the layout
        // the kernel expects.
        unsafe { syscall2(425, entries as usize, p as *mut UringParams as usize) as i32 }
    }

    /// `io_uring_enter(2)`: returns submitted count or a negative errno.
    pub fn io_uring_enter(fd: i32, to_submit: u32, min_complete: u32, flags: u32) -> i32 {
        // SAFETY: no userspace memory is passed (sig mask is null).
        unsafe {
            syscall6(
                426,
                fd as usize,
                to_submit as usize,
                min_complete as usize,
                flags as usize,
                0,
                0,
            ) as i32
        }
    }

    /// Map a ring region of the io_uring fd.
    pub fn mmap_ring(fd: i32, len: usize, off: usize) -> *mut u8 {
        const PROT_RW: usize = 0x1 | 0x2;
        const MAP_SHARED_POPULATE: usize = 0x01 | 0x8000;
        // SAFETY: a fresh shared mapping of the ring fd at a
        // kernel-chosen address aliases nothing in this process.
        let ret = unsafe {
            syscall6(
                sys_mmap_nr(),
                0,
                len,
                PROT_RW,
                MAP_SHARED_POPULATE,
                fd as usize,
                off,
            )
        };
        if (-4095..0).contains(&(ret as isize)) {
            std::ptr::null_mut()
        } else {
            ret as *mut u8
        }
    }

    /// Unmap a ring mapping.
    ///
    /// # Safety
    /// `ptr` must be a live mapping of exactly `len` bytes.
    pub unsafe fn munmap_ring(ptr: *mut u8, len: usize) {
        // SAFETY: caller contract above.
        unsafe {
            syscall2(sys_munmap_nr(), ptr as usize, len);
        }
    }

    /// Close an fd this module opened.
    pub fn close(fd: i32) {
        // SAFETY: closing an owned fd touches no userspace memory.
        unsafe {
            syscall2(sys_close_nr(), fd as usize, 0);
        }
    }

    #[cfg(target_arch = "x86_64")]
    const fn sys_mmap_nr() -> usize {
        9
    }
    #[cfg(target_arch = "x86_64")]
    const fn sys_munmap_nr() -> usize {
        11
    }
    #[cfg(target_arch = "x86_64")]
    const fn sys_close_nr() -> usize {
        3
    }
    #[cfg(target_arch = "aarch64")]
    const fn sys_mmap_nr() -> usize {
        222
    }
    #[cfg(target_arch = "aarch64")]
    const fn sys_munmap_nr() -> usize {
        215
    }
    #[cfg(target_arch = "aarch64")]
    const fn sys_close_nr() -> usize {
        57
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall2(nr: usize, a1: usize, a2: usize) -> isize {
        let ret;
        // SAFETY: args passed per the x86_64 syscall ABI; the callee's
        // memory contracts are the callers' (documented above).
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret;
        // SAFETY: as `syscall2`, with all six ABI registers.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall2(nr: usize, a1: usize, a2: usize) -> isize {
        let ret;
        // SAFETY: args passed per the aarch64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x8") nr,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret;
        // SAFETY: as `syscall2`, with all six ABI registers.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                in("x8") nr,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::UringParams;

    pub fn io_uring_setup(_entries: u32, _p: &mut UringParams) -> i32 {
        -38 // ENOSYS
    }
    pub fn io_uring_enter(_fd: i32, _s: u32, _c: u32, _f: u32) -> i32 {
        -38
    }
    pub fn mmap_ring(_fd: i32, _len: usize, _off: usize) -> *mut u8 {
        std::ptr::null_mut()
    }
    /// Never called on this platform.
    ///
    /// # Safety
    /// Never called (nothing maps), but keeps the call site uniform.
    pub unsafe fn munmap_ring(_ptr: *mut u8, _len: usize) {}
    pub fn close(_fd: i32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn uring_or_fallback_round_trips() {
        let dir = std::env::temp_dir().join(format!("rbio-uring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let f = Arc::new(
            std::fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(dir.join("f"))
                .expect("open"),
        );
        let faults = FaultPlan::none();
        let ctx = IoCtx {
            rank: 0,
            wid: 0,
            faults: &faults,
            write_retries: 0,
            retry_backoff: Duration::ZERO,
        };
        let b = UringBackend::with_config(RingConfig::default());
        let out = b.run_writes(
            &ctx,
            vec![
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 0,
                    bufs: vec![Bytes::from_vec(vec![1; 8])],
                },
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 8,
                    bufs: vec![Bytes::from_vec(vec![2; 4]), Bytes::from_vec(vec![3; 4])],
                },
            ],
        );
        assert!(
            out.error.is_none(),
            "kernel_supported={}",
            kernel_supported()
        );
        let got = b.read_at(&f, 0, 16).expect("read");
        assert_eq!(
            got.as_ref(),
            &[1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
