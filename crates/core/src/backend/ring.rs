//! Portable io_uring-style completion-queue emulation and the
//! [`RingBackend`] built on it.
//!
//! The emulation reproduces the submission/completion *state machine* of
//! io_uring — bounded in-flight depth, FIFO execution per submission
//! batch, linked-op cancelation, out-of-order completion delivery,
//! short-write resubmission at reap time, and buffer ownership held
//! until reap — without the syscalls, so CI on kernels (or containers)
//! without io_uring still exercises every transition `rbio-check`
//! explores. The real syscall backend (`io-uring` feature, see
//! [`super::uring`]) reuses this module's submission bookkeeping and
//! differs only in who executes the SQEs.
//!
//! Completion *delivery* order is permuted by a seeded xorshift so reap
//! order is deterministic per seed but decoupled from submission order —
//! exactly the property the p8 check family sweeps. Execution order is
//! never permuted: ops run in submission order through the same fault
//! layer as the threaded backend, so fault-plan byte accounting (kill
//! thresholds, nth-write errors) lands on identical logical-write
//! boundaries on every backend.

use std::collections::VecDeque;
use std::fs::File;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rbio_profile::counters;

use super::{BatchOutcome, IoBackend, IoCtx, WriteOp, REVERT_PR7_EARLY_RECYCLE};
use crate::buf::Bytes;
use crate::fault::{self, CappedWrite, WriteError};
use crate::sched::{self, Point};

/// Ring geometry and determinism knobs.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// In-flight bound: pushed-but-unreaped SQEs never exceed this.
    pub depth: usize,
    /// Max write ops per submission batch (≤ `depth`).
    pub batch: usize,
    /// Seed for the completion-delivery permutation.
    pub completion_seed: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            depth: 16,
            batch: 8,
            completion_seed: 0,
        }
    }
}

/// Why a ring push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

/// The generic submission/completion core: `T` is the SQE payload, `C`
/// the completion payload. Tracks the in-flight bound and delivers
/// completions in a seeded permutation of execution order, each exactly
/// once. Pure bookkeeping — no I/O — so property tests can drive it
/// with arbitrary op sequences.
pub struct RingCore<T, C> {
    depth: usize,
    rng: u64,
    next_udata: u64,
    /// Pushed, not yet submitted (FIFO).
    sq: VecDeque<(u64, T)>,
    /// Executed, awaiting reap. The payload stays here — buffer
    /// ownership is not released until the completion is reaped.
    cq: Vec<(u64, T, C)>,
    /// Highest pushed-but-unreaped count ever observed.
    high_water: usize,
}

impl<T, C> RingCore<T, C> {
    /// A ring of `depth` in-flight slots with a seeded delivery order.
    pub fn new(depth: usize, completion_seed: u64) -> Self {
        RingCore {
            depth: depth.max(1),
            // xorshift64 must not start at 0.
            rng: completion_seed | 1,
            next_udata: 1,
            sq: VecDeque::new(),
            cq: Vec::new(),
            high_water: 0,
        }
    }

    /// Pushed-but-unreaped SQEs (queued + awaiting reap).
    pub fn in_flight(&self) -> usize {
        self.sq.len() + self.cq.len()
    }

    /// SQEs pushed and not yet submitted.
    pub fn queued(&self) -> usize {
        self.sq.len()
    }

    /// Completions executed and not yet reaped.
    pub fn unreaped(&self) -> usize {
        self.cq.len()
    }

    /// Highest in-flight count ever observed (depth-bound property).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Queue one SQE; fails when the in-flight bound is reached.
    /// Returns the SQE's user data token.
    pub fn push(&mut self, payload: T) -> Result<u64, RingFull> {
        if self.in_flight() >= self.depth {
            return Err(RingFull);
        }
        let udata = self.next_udata;
        self.next_udata += 1;
        self.sq.push_back((udata, payload));
        self.high_water = self.high_water.max(self.in_flight());
        Ok(udata)
    }

    /// Execute every queued SQE in FIFO order. `exec` returns the
    /// completion and whether the link continues; once it reports a
    /// broken link, every later queued SQE completes via `cancel`
    /// without executing (io_uring `IOSQE_IO_LINK` semantics). Returns
    /// the number of SQEs consumed.
    pub fn submit(
        &mut self,
        mut exec: impl FnMut(u64, &mut T) -> (C, bool),
        mut cancel: impl FnMut(u64, &mut T) -> C,
    ) -> usize {
        let n = self.sq.len();
        let mut linked = true;
        while let Some((udata, mut payload)) = self.sq.pop_front() {
            let cqe = if linked {
                let (cqe, cont) = exec(udata, &mut payload);
                linked = cont;
                cqe
            } else {
                cancel(udata, &mut payload)
            };
            self.cq.push((udata, payload, cqe));
        }
        n
    }

    /// Deliver one completion, chosen by the seeded permutation.
    /// Ownership of the SQE payload transfers to the caller only here.
    pub fn reap(&mut self) -> Option<(u64, T, C)> {
        if self.cq.is_empty() {
            return None;
        }
        // xorshift64: deterministic, cheap, well-mixed enough to shuffle
        // a handful of completions.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let idx = (self.rng % self.cq.len() as u64) as usize;
        Some(self.cq.swap_remove(idx))
    }
}

/// One write SQE as the ring backend submits it.
struct Sqe {
    /// Index of the originating op in the `run_writes` batch (`usize::MAX`
    /// for short-write continuation SQEs, which belong to no new op).
    op_index: usize,
    file: Arc<File>,
    /// Offset of the *full* op (continuations re-derive their own).
    offset: u64,
    bufs: Vec<Bytes>,
    /// Bytes of the op already on disk (non-zero for continuations).
    resume_at: u64,
}

/// One CQE.
enum Cqe {
    /// The op's remaining bytes all landed.
    Done { attempts: u32 },
    /// The device accepted only a prefix; the reaper must resubmit the
    /// remainder.
    Short { written: u64, attempts: u32 },
    /// The op failed (fault-layer kill, exhausted retries, hard error).
    Failed(WriteError),
    /// A later link sibling of a failed op: never executed.
    Canceled,
}

/// The io_uring-style backend over the portable emulation. One shared
/// instance serves every pool thread; per-batch ring state lives on the
/// calling worker's stack, so batches on different writers never
/// contend.
pub struct RingBackend {
    cfg: RingConfig,
}

impl RingBackend {
    /// A backend with explicit ring geometry.
    pub fn with_config(cfg: RingConfig) -> Self {
        let mut cfg = cfg;
        cfg.depth = cfg.depth.max(1);
        cfg.batch = cfg.batch.clamp(1, cfg.depth);
        RingBackend { cfg }
    }

    /// This backend's geometry.
    pub fn config(&self) -> RingConfig {
        self.cfg
    }
}

/// Execute one SQE through the fault layer. Continuation SQEs skip the
/// fault consult: they complete a logical write whose bytes were
/// already accounted on its first submission.
fn exec_sqe(ctx: &IoCtx<'_>, sqe: &Sqe) -> (Cqe, bool) {
    if sqe.resume_at > 0 {
        counters::add_short_write_retries(1);
        let data = sqe.bufs[0].as_ref();
        return match fault::write_full_at(&sqe.file, sqe.offset, data, sqe.resume_at as usize) {
            Ok(()) => (Cqe::Done { attempts: 0 }, true),
            Err(e) => (Cqe::Failed(e), false),
        };
    }
    if sqe.bufs.len() == 1 {
        match fault::write_at_capped(
            &sqe.file,
            ctx.rank,
            sqe.offset,
            &sqe.bufs[0],
            ctx.faults,
            ctx.write_retries,
            ctx.retry_backoff,
        ) {
            Ok(CappedWrite::Full { attempts }) => (Cqe::Done { attempts }, true),
            Ok(CappedWrite::Short { written, attempts }) => {
                (Cqe::Short { written, attempts }, true)
            }
            Err(e) => (Cqe::Failed(e), false),
        }
    } else {
        let slices: Vec<&[u8]> = sqe.bufs.iter().map(|b| b.as_ref()).collect();
        match fault::write_vectored_at(
            &sqe.file,
            ctx.rank,
            sqe.offset,
            &slices,
            ctx.faults,
            ctx.write_retries,
            ctx.retry_backoff,
        ) {
            Ok(attempts) => (Cqe::Done { attempts }, true),
            Err(e) => (Cqe::Failed(e), false),
        }
    }
}

impl IoBackend for RingBackend {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn max_batch(&self) -> usize {
        self.cfg.batch
    }

    fn run_writes(&self, ctx: &IoCtx<'_>, ops: Vec<WriteOp>) -> BatchOutcome {
        let early_recycle = REVERT_PR7_EARLY_RECYCLE.load(Ordering::Relaxed);
        let mut core: RingCore<Sqe, Cqe> = RingCore::new(self.cfg.depth, self.cfg.completion_seed);
        let mut retries = 0u32;
        let mut error: Option<(usize, WriteError)> = None;

        // Submission phase: queue every op (the pool bounds batches to
        // `max_batch() <= depth`, so pushes cannot fail), then submit
        // them as one linked chain.
        for (i, op) in ops.into_iter().enumerate() {
            let hash = sched_hash(&op.bufs);
            let udata = core
                .push(Sqe {
                    op_index: i,
                    file: op.file,
                    offset: op.offset,
                    bufs: op.bufs,
                    resume_at: 0,
                })
                .expect("batch bounded by ring depth");
            sched::emit(|| sched::Event::SubmitQueued {
                wid: ctx.wid,
                udata,
                hash,
            });
        }
        let submitted = core.submit(|_, sqe| exec_sqe(ctx, sqe), |_, _| Cqe::Canceled);
        sched::emit(|| sched::Event::SubmitBatched {
            wid: ctx.wid,
            count: submitted,
        });
        if early_recycle {
            // Reverted bug: buffer ownership released at execution time
            // instead of reap time. The pooled slabs go back for reuse
            // while their completions are still in flight — a reaped
            // short write then has nothing left to resubmit.
            release_buffers_early(&mut core);
        }

        // Completion phase: reap until quiescent, resubmitting short
        // writes. A yield between reaps lets rbio-check interleave other
        // threads with completion delivery.
        while core.in_flight() > 0 {
            sched::yield_now(Point::Progress);
            let (udata, sqe, cqe) = core.reap().expect("in-flight implies a completion");
            let ok = !matches!(cqe, Cqe::Failed(_));
            let reap_hash = sched_hash(&sqe.bufs);
            sched::emit(|| sched::Event::CompletionReaped {
                wid: ctx.wid,
                udata,
                hash: reap_hash,
                ok,
            });
            match cqe {
                Cqe::Done { attempts } => retries += attempts,
                Cqe::Short { written, attempts } => {
                    retries += attempts;
                    let expected = sqe.bufs.first().map_or(0, |b| b.len() as u64);
                    sched::emit(|| sched::Event::ShortWriteResubmit {
                        wid: ctx.wid,
                        udata,
                        written,
                        expected,
                    });
                    if sqe.bufs.is_empty() || sqe.bufs[0].is_empty() {
                        // The reverted early release already gave the
                        // buffer away: nothing left to resubmit, the op
                        // is (incorrectly) treated as complete and the
                        // file keeps a hole — the divergence p8a flags.
                        continue;
                    }
                    let cont_hash = sched_hash(&sqe.bufs);
                    let cont = core
                        .push(Sqe {
                            op_index: sqe.op_index,
                            file: sqe.file,
                            offset: sqe.offset,
                            bufs: sqe.bufs,
                            resume_at: written,
                        })
                        .expect("a reaped slot frees in-flight room");
                    sched::emit(|| sched::Event::SubmitQueued {
                        wid: ctx.wid,
                        udata: cont,
                        hash: cont_hash,
                    });
                    let n = core.submit(|_, sqe| exec_sqe(ctx, sqe), |_, _| Cqe::Canceled);
                    sched::emit(|| sched::Event::SubmitBatched {
                        wid: ctx.wid,
                        count: n,
                    });
                    if early_recycle {
                        release_buffers_early(&mut core);
                    }
                }
                Cqe::Failed(e) => {
                    // First failure in submission order wins — exactly
                    // the threaded path's latch.
                    let earlier = match &error {
                        Some((i, _)) => sqe.op_index < *i,
                        None => true,
                    };
                    if earlier {
                        error = Some((sqe.op_index, e));
                    }
                }
                Cqe::Canceled => {}
            }
            // Buffer ownership releases here: `sqe.bufs` drops only
            // after its completion was reaped (and any continuation took
            // what it needed).
        }
        BatchOutcome { retries, error }
    }

    fn read_at(&self, file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
        // Restart reads ride the page cache through a shared mapping;
        // fall back to pread where mmap is unavailable.
        super::mmapio::read_via_mmap(file, offset, len)
    }
}

/// Payload fingerprint, computed only under a controlled scheduler
/// (mirrors `FlushJob::fingerprint`).
fn sched_hash(bufs: &[Bytes]) -> u64 {
    if !sched::controlled() {
        return 0;
    }
    sched::fingerprint(bufs.iter().map(|b| b.as_ref()))
}

/// The reverted bug's mechanics: drop every unreaped completion's
/// buffers (returning pooled slabs to their pool) before reap.
fn release_buffers_early(core: &mut RingCore<Sqe, Cqe>) {
    for i in 0..core.cq.len() {
        core.cq[i].1.bufs = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::time::Duration;

    fn tmpfile(name: &str) -> (std::path::PathBuf, Arc<File>) {
        let dir = std::env::temp_dir().join(format!("rbio-ring-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("f");
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&p)
            .expect("open");
        (dir, Arc::new(f))
    }

    fn ctx(faults: &FaultPlan) -> IoCtx<'_> {
        IoCtx {
            rank: 0,
            wid: 0,
            faults,
            write_retries: 3,
            retry_backoff: Duration::from_micros(50),
        }
    }

    fn op(f: &Arc<File>, offset: u64, fill: u8, len: usize) -> WriteOp {
        WriteOp {
            file: Arc::clone(f),
            offset,
            bufs: vec![Bytes::from_vec(vec![fill; len])],
        }
    }

    #[test]
    fn core_bounds_in_flight_and_delivers_exactly_once() {
        let mut core: RingCore<u32, u32> = RingCore::new(2, 7);
        core.push(10).unwrap();
        core.push(11).unwrap();
        assert_eq!(core.push(12), Err(RingFull));
        assert_eq!(core.submit(|_, t| (*t * 2, true), |_, _| 0), 2);
        let mut seen = Vec::new();
        while let Some((udata, t, c)) = core.reap() {
            assert_eq!(c, t * 2);
            seen.push(udata);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(core.reap(), None);
        assert_eq!(core.high_water(), 2);
    }

    #[test]
    fn core_cancels_links_after_a_break() {
        let mut core: RingCore<u32, &'static str> = RingCore::new(8, 1);
        for v in 0..4 {
            core.push(v).unwrap();
        }
        core.submit(
            |_, t| {
                if *t == 1 {
                    ("failed", false)
                } else {
                    ("done", true)
                }
            },
            |_, _| "canceled",
        );
        let mut by_payload: Vec<(u32, &str)> = Vec::new();
        while let Some((_, t, c)) = core.reap() {
            by_payload.push((t, c));
        }
        by_payload.sort_unstable();
        assert_eq!(
            by_payload,
            vec![(0, "done"), (1, "failed"), (2, "canceled"), (3, "canceled")]
        );
    }

    #[test]
    fn ring_backend_matches_submission_order_on_disk() {
        let (dir, f) = tmpfile("order");
        let b = RingBackend::with_config(RingConfig {
            depth: 8,
            batch: 8,
            completion_seed: 0xDECAF,
        });
        let faults = FaultPlan::none();
        // Conflicting writes at offset 0: submission order must win even
        // though completion delivery is permuted.
        let out = b.run_writes(
            &ctx(&faults),
            vec![op(&f, 0, 1, 8), op(&f, 0, 2, 8), op(&f, 0, 3, 8)],
        );
        assert!(out.error.is_none());
        let got = b.read_at(&f, 0, 8).expect("read");
        assert_eq!(got.as_ref(), &[3u8; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_backend_resubmits_injected_short_writes() {
        let (dir, f) = tmpfile("short");
        let b = RingBackend::with_config(RingConfig::default());
        let before = counters::failover_snapshot();
        let faults = FaultPlan::none().short_write(0, 1, 3);
        let out = b.run_writes(
            &ctx(&faults),
            vec![op(&f, 0, 5, 8), op(&f, 8, 6, 8), op(&f, 16, 7, 8)],
        );
        assert!(out.error.is_none());
        let got = b.read_at(&f, 0, 24).expect("read");
        let mut want = vec![5u8; 8];
        want.extend_from_slice(&[6; 8]);
        want.extend_from_slice(&[7; 8]);
        assert_eq!(got.as_ref(), &want[..]);
        let delta = counters::failover_snapshot().delta_since(&before);
        assert!(
            delta.short_write_retries >= 1,
            "resubmit must count a short-write retry"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_backend_latches_first_error_in_submission_order() {
        let (dir, f) = tmpfile("err");
        let b = RingBackend::with_config(RingConfig::default());
        // Write index 1 fails on every attempt: the batch must surface
        // the failure at op 1, with op 2 canceled (never executed).
        let faults = FaultPlan::none().fail_nth_write(0, 1, u32::MAX);
        let out = b.run_writes(
            &ctx(&faults),
            vec![op(&f, 0, 1, 4), op(&f, 4, 2, 4), op(&f, 8, 3, 4)],
        );
        match out.error {
            Some((1, WriteError::Io(_))) => {}
            other => panic!("expected EIO at op 1, got {other:?}"),
        }
        assert_eq!(f.metadata().expect("meta").len(), 4, "only op 0 landed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_lands_on_the_same_byte_boundary_as_threaded() {
        let faults = || FaultPlan::none().kill_writer_after_bytes(0, 10);
        let run = |backend: &dyn IoBackend, name: &str| -> u64 {
            let (dir, f) = tmpfile(name);
            let plan = faults();
            let c = ctx(&plan);
            let out =
                backend.run_writes(&c, vec![op(&f, 0, 1, 6), op(&f, 6, 2, 6), op(&f, 12, 3, 6)]);
            assert!(matches!(out.error, Some((_, WriteError::Killed))));
            let len = f.metadata().expect("meta").len();
            std::fs::remove_dir_all(&dir).ok();
            len
        };
        let t = run(&super::super::ThreadedBackend, "kill-t");
        let r = run(&RingBackend::with_config(RingConfig::default()), "kill-r");
        assert_eq!(t, r, "kill byte boundary must not depend on the backend");
        // The kill threshold is consulted before each write's accounting,
        // so ops 0 and 1 (12 bytes) land and the kill stops op 2.
        assert_eq!(t, 12, "kill fires on the first write at or past 10 bytes");
    }
}
