//! Pluggable I/O backends for the flush pipeline.
//!
//! The paper's rbIO strategy hides the PFS path behind aggregation, but
//! once staging and messaging overlap the flush threads, the raw write
//! path itself becomes the ceiling: the [`crate::pipeline::FlushPool`]
//! historically issued one blocking `pwrite` per job. An [`IoBackend`]
//! owns submission and completion of that write work so the pool can
//! drive either:
//!
//! * [`ThreadedBackend`] — the portable baseline: one blocking,
//!   fault-checked, retried `pwrite`/`pwritev` per job (exactly the
//!   pre-backend behavior), plus `pread`-based restart reads.
//! * [`ring::RingBackend`] — an io_uring-style completion-queue backend:
//!   multi-op submission batching, bounded in-flight depth, short-write
//!   resubmission at reap time, and completion-driven buffer-ownership
//!   release (a buffer's refcount may not drop until its completion has
//!   been reaped). It runs over a portable ring-emulation layer
//!   ([`ring::RingCore`]) so CI without io_uring still exercises the
//!   exact submission/completion state machine; the real
//!   `io_uring_setup`/`enter` syscalls sit behind the `io-uring` cargo
//!   feature (see [`uring`]) with a runtime fallback to the emulation.
//!
//! ## Contract
//!
//! A backend executes one FIFO batch of write ops per call. Ops are
//! *linked* (io_uring `IOSQE_IO_LINK` semantics): execution stops at the
//! first op whose fault check or write fails, and every later op in the
//! batch completes as canceled — never executed — so error latching and
//! fault-plan byte accounting are identical to the serial path on every
//! backend. Within an op, buffers land back to back at the op's offset.
//!
//! **Buffer ownership**: a backend takes ownership of each op's
//! [`Bytes`] and may not drop them (returning pooled slabs for reuse)
//! until the op's completion is reaped. The ring emulation re-hashes the
//! held payload at reap time and reports it via
//! [`Event::CompletionReaped`], so `rbio-check`'s shadow model catches
//! any early release as a fingerprint mismatch.
//!
//! [`Event::CompletionReaped`]: crate::sched::Event::CompletionReaped

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rbio_plan::Rank;

use crate::buf::Bytes;
use crate::fault::{self, FaultPlan, WriteError};

pub mod ring;
#[cfg(feature = "io-uring")]
pub mod uring;

mod mmapio;

pub use ring::{RingBackend, RingConfig};

/// Test-only regression switch: the ring backend releases its buffer
/// ownership right after the execution phase instead of holding it
/// until the completion is reaped. A reaped short write then cannot be
/// resubmitted (the bytes are gone — in a real premature release they
/// would already belong to someone else), so the file keeps a hole and
/// the `p8a` rbio-check family flags the divergence. Must never be set
/// outside tests.
#[doc(hidden)]
pub static REVERT_PR7_EARLY_RECYCLE: AtomicBool = AtomicBool::new(false);

/// Which backend a config knob selects. The indirection (rather than an
/// `Arc<dyn IoBackend>` in every config struct) keeps `ExecConfig` and
/// `RtConfig` `Debug + Clone`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Process default: `RBIO_IO_BACKEND=ring|threaded` if set, else
    /// threaded.
    #[default]
    Default,
    /// The blocking per-job baseline.
    Threaded,
    /// The completion-queue backend (emulated ring; real io_uring with
    /// the `io-uring` feature where the kernel allows it).
    Ring,
}

/// Immutable per-writer execution context a backend runs under.
pub struct IoCtx<'a> {
    /// The writer's rank (fault-plan key and event payload).
    pub rank: Rank,
    /// Pool slot index, carried into submission/completion events.
    pub wid: usize,
    /// Fault-injection plan consulted before every logical write.
    pub faults: &'a FaultPlan,
    /// Retry budget per logical write.
    pub write_retries: u32,
    /// Initial retry backoff (doubles per attempt).
    pub retry_backoff: Duration,
}

/// One write op handed to a backend: `bufs` land back to back at
/// `offset`. A single-buffer op is a plain `pwrite`; multi-buffer ops
/// are one *logical* write for fault accounting (the executors only
/// coalesce when no faults are armed).
pub struct WriteOp {
    /// Open target file (the `.tmp` sibling for atomic files).
    pub file: Arc<File>,
    /// Absolute file offset of the first buffer.
    pub offset: u64,
    /// The payload, snapshotted at submit time.
    pub bufs: Vec<Bytes>,
}

impl WriteOp {
    /// Total payload length.
    pub fn len(&self) -> u64 {
        self.bufs.iter().map(|b| b.len() as u64).sum()
    }

    /// True when the op carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.bufs.iter().all(|b| b.is_empty())
    }
}

/// What one batch execution produced.
pub struct BatchOutcome {
    /// Retried write attempts accumulated across the batch.
    pub retries: u32,
    /// First failure in submission order, if any. Ops after index
    /// `error.0` were canceled, never executed (linked-op semantics).
    pub error: Option<(usize, WriteError)>,
}

impl BatchOutcome {
    fn ok(retries: u32) -> BatchOutcome {
        BatchOutcome {
            retries,
            error: None,
        }
    }
}

/// A submission/completion engine for writer I/O. Implementations must
/// be shareable across pool threads (`Send + Sync`); per-batch state
/// lives on the caller's stack, not in the backend.
pub trait IoBackend: Send + Sync {
    /// Stable name, for reports and BENCH artifacts.
    fn name(&self) -> &'static str;

    /// Upper bound on write ops per submitted batch (1 = no batching).
    fn max_batch(&self) -> usize {
        1
    }

    /// Execute `ops` FIFO with linked-op semantics (see module docs).
    fn run_writes(&self, ctx: &IoCtx<'_>, ops: Vec<WriteOp>) -> BatchOutcome;

    /// Flush `file`'s data and metadata (close/commit durability).
    fn sync_file(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    /// Read `len` bytes at `offset` (the restart path). Must fail if
    /// fewer than `len` bytes exist.
    fn read_at(&self, file: &File, offset: u64, len: usize) -> io::Result<Bytes>;
}

/// The portable baseline: one blocking, fault-checked, retried
/// positional write per op — byte-for-byte the pre-backend flush path.
pub struct ThreadedBackend;

impl IoBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run_writes(&self, ctx: &IoCtx<'_>, ops: Vec<WriteOp>) -> BatchOutcome {
        let mut retries = 0u32;
        for (i, op) in ops.into_iter().enumerate() {
            let res = if op.bufs.len() == 1 {
                fault::write_at_with_retry(
                    &op.file,
                    ctx.rank,
                    op.offset,
                    &op.bufs[0],
                    ctx.faults,
                    ctx.write_retries,
                    ctx.retry_backoff,
                )
            } else {
                let slices: Vec<&[u8]> = op.bufs.iter().map(|b| b.as_ref()).collect();
                fault::write_vectored_at(
                    &op.file,
                    ctx.rank,
                    op.offset,
                    &slices,
                    ctx.faults,
                    ctx.write_retries,
                    ctx.retry_backoff,
                )
            };
            match res {
                Ok(attempts) => retries += attempts,
                Err(e) => {
                    return BatchOutcome {
                        retries,
                        error: Some((i, e)),
                    }
                }
            }
        }
        BatchOutcome::ok(retries)
    }

    fn read_at(&self, file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
        let mut v = vec![0u8; len];
        file.read_exact_at(&mut v, offset)?;
        Ok(Bytes::from_vec(v))
    }
}

static THREADED: OnceLock<Arc<dyn IoBackend>> = OnceLock::new();
static RING: OnceLock<Arc<dyn IoBackend>> = OnceLock::new();

/// The shared [`ThreadedBackend`] instance.
pub fn threaded() -> Arc<dyn IoBackend> {
    Arc::clone(THREADED.get_or_init(|| Arc::new(ThreadedBackend)))
}

/// The shared default-configuration ring backend. With the `io-uring`
/// feature this probes the kernel once and uses real io_uring syscalls
/// when available, falling back to the emulation (containers commonly
/// seccomp-block `io_uring_setup`); without the feature it is always
/// the emulation.
pub fn ring_default() -> Arc<dyn IoBackend> {
    Arc::clone(RING.get_or_init(|| {
        #[cfg(feature = "io-uring")]
        if uring::kernel_supported() {
            return Arc::new(uring::UringBackend::with_config(ring::RingConfig::default()))
                as Arc<dyn IoBackend>;
        }
        Arc::new(ring::RingBackend::with_config(ring::RingConfig::default()))
    }))
}

/// Resolve a config knob to a backend instance. [`BackendKind::Default`]
/// honors `RBIO_IO_BACKEND` (`ring` or `threaded`), so the whole test
/// suite can be re-run under the ring backend without touching configs.
pub fn resolve(kind: BackendKind) -> Arc<dyn IoBackend> {
    match kind {
        BackendKind::Threaded => threaded(),
        BackendKind::Ring => ring_default(),
        BackendKind::Default => match std::env::var("RBIO_IO_BACKEND").ok().as_deref() {
            Some("ring") => ring_default(),
            _ => threaded(),
        },
    }
}

/// mmap-backed whole-range read used by the ring backend's restart path
/// (exposed for the conformance suite).
pub fn read_via_mmap(file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
    mmapio::read_via_mmap(file, offset, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> (std::path::PathBuf, Arc<File>) {
        let dir = std::env::temp_dir().join(format!("rbio-backend-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("f");
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&p)
            .expect("open");
        (dir, Arc::new(f))
    }

    fn ctx(faults: &FaultPlan) -> IoCtx<'_> {
        IoCtx {
            rank: 0,
            wid: 0,
            faults,
            write_retries: 3,
            retry_backoff: Duration::from_micros(50),
        }
    }

    #[test]
    fn threaded_executes_ops_in_order_and_reads_back() {
        let (dir, f) = tmpfile("threaded");
        let faults = FaultPlan::none();
        let out = ThreadedBackend.run_writes(
            &ctx(&faults),
            vec![
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 0,
                    bufs: vec![Bytes::from_vec(vec![1; 4])],
                },
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 4,
                    bufs: vec![Bytes::from_vec(vec![2; 2]), Bytes::from_vec(vec![3; 2])],
                },
            ],
        );
        assert!(out.error.is_none());
        let got = ThreadedBackend.read_at(&f, 0, 8).expect("read");
        assert_eq!(got.as_ref(), &[1, 1, 1, 1, 2, 2, 3, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_cancels_ops_after_a_kill() {
        let (dir, f) = tmpfile("kill");
        let faults = FaultPlan::none().kill_writer_after_bytes(0, 4);
        let out = ThreadedBackend.run_writes(
            &ctx(&faults),
            vec![
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 0,
                    bufs: vec![Bytes::from_vec(vec![7; 4])],
                },
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 4,
                    bufs: vec![Bytes::from_vec(vec![8; 4])],
                },
                WriteOp {
                    file: Arc::clone(&f),
                    offset: 8,
                    bufs: vec![Bytes::from_vec(vec![9; 4])],
                },
            ],
        );
        match out.error {
            Some((1, WriteError::Killed)) => {}
            other => panic!("expected kill at op 1, got {other:?}"),
        }
        // Only op 0's bytes landed; ops 1 and 2 never executed.
        assert_eq!(f.metadata().expect("meta").len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_honors_kinds() {
        assert_eq!(resolve(BackendKind::Threaded).name(), "threaded");
        assert!(resolve(BackendKind::Ring).name().starts_with("ring"));
    }
}
