//! Restart: reading checkpoints back.
//!
//! Two paths are provided:
//!
//! * [`read_checkpoint`] — plan-guided: reads the files a
//!   [`CheckpointPlan`] wrote and returns every rank's field data. Used by
//!   applications restarting from their own plan and by the round-trip
//!   tests.
//! * [`scan_checkpoint_dir`] / [`read_checkpoint_auto`] — self-describing:
//!   reconstructs the checkpoint from the file headers alone (no plan
//!   needed), verifying that the discovered files cover every rank exactly
//!   once. This is what a post-processing/visualization tool would use —
//!   one of the stated benefits of application-level checkpointing (§II).
//!
//! A restart [`Program`] builder is also provided so the simulator can
//! replay the read path (the paper's §III-B mesh-read timings).

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rbio_plan::{FileId, Op, Program, ProgramBuilder};

use crate::buf::Bytes;
use crate::format::{decode_header, FileHeader, FormatError};
use crate::strategy::CheckpointPlan;

/// Cap on concurrent per-file restart readers. Each worker holds one
/// whole file image in memory while slicing it, so this also bounds peak
/// restart memory to `MAX_RESTART_WORKERS` file images.
const MAX_RESTART_WORKERS: usize = 8;

/// Errors reading a checkpoint back.
#[derive(Debug)]
pub enum RestartError {
    /// Filesystem error.
    Io(io::Error),
    /// A file failed to parse or verify.
    Format {
        /// File path (relative).
        file: String,
        /// Underlying format error.
        source: FormatError,
    },
    /// The set of files does not cover every rank exactly once, or
    /// disagrees about the job shape.
    Inconsistent(String),
    /// A file is missing its commit footer or fails its checksums: the
    /// checkpoint was torn by a crash between write and commit, or the
    /// data rotted afterwards. Restart must fall back to an older
    /// generation.
    Torn {
        /// File path (relative).
        file: String,
        /// What the validation pass found.
        what: String,
    },
    /// A restart worker panicked while extracting one file. Surfaced as
    /// a typed per-file error — the other files' workers run to
    /// completion and a caller (or `restore_latest`) can fall back —
    /// instead of poisoning the slot mutexes and tearing down the whole
    /// restore with it.
    WorkerPanicked {
        /// File path (relative) being extracted when the worker died.
        file: String,
        /// The panic payload, when it was a string.
        what: String,
    },
}

impl From<io::Error> for RestartError {
    fn from(e: io::Error) -> Self {
        RestartError::Io(e)
    }
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Io(e) => write!(f, "I/O: {e}"),
            RestartError::Format { file, source } => write!(f, "{file}: {source}"),
            RestartError::Inconsistent(s) => write!(f, "inconsistent checkpoint: {s}"),
            RestartError::Torn { file, what } => write!(f, "torn checkpoint: {file}: {what}"),
            RestartError::WorkerPanicked { file, what } => {
                write!(f, "restart worker panicked extracting {file}: {what}")
            }
        }
    }
}

impl std::error::Error for RestartError {}

/// A fully restored checkpoint: every rank's field blocks.
#[derive(Debug, Clone)]
pub struct RestoredData {
    /// Checkpoint step recovered from the headers.
    pub step: u64,
    /// Total ranks.
    pub nranks: u32,
    /// Field names, in order.
    pub field_names: Vec<String>,
    /// `data[rank][field]` = that rank's bytes for that field — a
    /// refcounted slice of the file image it was read from, so restoring
    /// never copies the data out of the read buffer.
    data: Vec<Vec<Bytes>>,
}

impl RestoredData {
    /// A rank's bytes for one field.
    pub fn field_data(&self, rank: u32, field: usize) -> &[u8] {
        self.data[rank as usize][field].as_ref()
    }

    /// Total restored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.data
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v.len() as u64)
            .sum()
    }
}

/// Largest header we will ever allocate for. Real headers are a few KB;
/// anything bigger means the length field itself is damaged, and trusting
/// it would turn a torn file into a multi-GB allocation.
const MAX_HEADER_LEN: usize = 64 * 1024 * 1024;

fn read_header(path: &Path) -> Result<FileHeader, RestartError> {
    let mut f = File::open(path)?;
    // Headers are small; read a generous prefix, growing if `header_len`
    // says we need more.
    let mut buf = vec![0u8; 64 * 1024];
    let n = read_up_to(&mut f, &mut buf)?;
    buf.truncate(n);
    let torn = |what: String| RestartError::Torn {
        file: path.display().to_string(),
        what,
    };
    match decode_header(&buf) {
        Ok(h) => Ok(h),
        // A file too short to hold even the fixed header prelude (magic,
        // version, header_len) was torn by a crash mid-create — including
        // the zero-length case. That is a generation to fall back from,
        // not a format bug.
        Err(FormatError::Truncated) if n < 16 => {
            Err(torn(format!("file ends mid-header ({n} bytes)")))
        }
        Err(FormatError::Truncated) => {
            let hlen = u64::from_le_bytes(buf[8..16].try_into().expect("len 8")) as usize;
            if hlen > MAX_HEADER_LEN {
                return Err(torn(format!("implausible header length {hlen}")));
            }
            let mut full = vec![0u8; hlen];
            f.seek(SeekFrom::Start(0))?;
            match f.read_exact(&mut full) {
                Ok(()) => {}
                // Shorter than its own header_len: torn mid-header.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Err(torn(format!("file ends inside its {hlen}-byte header")));
                }
                Err(e) => return Err(RestartError::Io(e)),
            }
            decode_header(&full).map_err(|e| RestartError::Format {
                file: path.display().to_string(),
                source: e,
            })
        }
        Err(e) => Err(RestartError::Format {
            file: path.display().to_string(),
            source: e,
        }),
    }
}

fn read_up_to(f: &mut File, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match f.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// Read, verify, and slice one checkpoint file: returns
/// `blocks[rank - r0][field]`, each block a zero-copy slice of the single
/// file image read here.
fn extract_file(
    dir: &Path,
    rel: &str,
    header: &FileHeader,
) -> Result<Vec<Vec<Bytes>>, RestartError> {
    let path = dir.join(rel);
    // Whole-file image read goes through the I/O backend so restart can
    // use mmap-backed reads where the platform supports them (and plain
    // pread everywhere else).
    let file = std::fs::File::open(&path)?;
    let size = file.metadata()?.len();
    let bytes = crate::backend::resolve(crate::backend::BackendKind::Default).read_at(
        &file,
        0,
        size as usize,
    )?;
    let actual = bytes.len() as u64;
    if actual < header.expected_file_size() {
        // Shorter than its own header promises: a crash truncated the
        // write. Classified as torn (fall back a generation), not as a
        // shape mismatch — the header itself is internally consistent.
        return Err(RestartError::Torn {
            file: rel.to_string(),
            what: format!(
                "file is {actual} bytes, header expects {}",
                header.expected_file_size()
            ),
        });
    }
    // Validation pass: every published checkpoint file carries a commit
    // footer with per-field checksums. A missing or failing footer means
    // the file was never committed (crash between write and rename) or
    // rotted afterwards — either way the generation cannot be trusted.
    if let Some(what) = crate::commit::verify_committed(&bytes, header.expected_file_size()) {
        return Err(RestartError::Torn {
            file: rel.to_string(),
            what,
        });
    }
    let mut out = Vec::with_capacity((header.r1 - header.r0) as usize);
    for rank in header.r0..header.r1 {
        let mut row = Vec::with_capacity(header.fields.len());
        for field in 0..header.fields.len() {
            let (off, len) = header.rank_block(rank, field);
            row.push(bytes.slice(off as usize..(off + len) as usize));
        }
        out.push(row);
    }
    Ok(out)
}

/// Per-file extraction result: one row of zero-copy field blocks per rank
/// covered by the file.
type FileBlocks = Result<Vec<Vec<Bytes>>, RestartError>;

/// Test-only panic injection: a worker extracting the file at this index
/// panics (consuming the injection). `usize::MAX` is inert. Pins the
/// regression where a worker panic poisoned its slot mutex and the
/// `expect("no poisoned slots")` unwinds took down the entire restore.
#[doc(hidden)]
pub static INJECT_EXTRACT_PANIC: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Run one file's extraction, converting a worker panic into a typed
/// [`RestartError::WorkerPanicked`] so sibling files still restore.
fn extract_file_guarded(dir: &Path, rel: &str, header: &FileHeader, index: usize) -> FileBlocks {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if INJECT_EXTRACT_PANIC
            .compare_exchange(index, usize::MAX, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            panic!("injected restart worker panic");
        }
        extract_file(dir, rel, header)
    }));
    match res {
        Ok(r) => r,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(RestartError::WorkerPanicked {
                file: rel.to_string(),
                what,
            })
        }
    }
}

/// Lock a result slot without trusting poison state: with panics caught
/// in [`extract_file_guarded`] the storing closure cannot unwind, but a
/// poisoned lock must still yield its data rather than panic again.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Extract every file of a checkpoint, fanning the per-file work (read +
/// checksum verification + slicing) out across up to
/// [`MAX_RESTART_WORKERS`] threads. Files cover disjoint rank ranges, so
/// the merge is a straight append per rank; the first failing file (by
/// listed order) wins error reporting, matching the serial path. A
/// panicking worker fails only its own file (typed
/// [`RestartError::WorkerPanicked`]); every other slot completes.
fn extract_all(
    dir: &Path,
    files: &[(String, FileHeader)],
    nranks: u32,
) -> Result<Vec<Vec<Bytes>>, RestartError> {
    let mut data: Vec<Vec<Bytes>> = vec![Vec::new(); nranks as usize];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(files.len())
        .min(MAX_RESTART_WORKERS);
    let mut results: Vec<Option<FileBlocks>> = if workers <= 1 {
        files
            .iter()
            .enumerate()
            .map(|(i, (name, h))| Some(extract_file_guarded(dir, name, h, i)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<FileBlocks>>> =
            files.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= files.len() {
                        break;
                    }
                    let (name, h) = &files[i];
                    let res = extract_file_guarded(dir, name, h, i);
                    *lock_unpoisoned(&slots[i]) = Some(res);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    };
    for ((_, h), slot) in files.iter().zip(results.iter_mut()) {
        let blocks = slot.take().expect("every file slot filled")?;
        for (k, row) in blocks.into_iter().enumerate() {
            data[h.r0 as usize + k].extend(row);
        }
    }
    Ok(data)
}

/// Read back the checkpoint a plan wrote under `dir`.
pub fn read_checkpoint(
    dir: impl AsRef<Path>,
    plan: &CheckpointPlan,
) -> Result<RestoredData, RestartError> {
    let dir = dir.as_ref();
    let nranks = plan.layout.nranks();
    // Headers first (small reads, serial): shape checks must all pass
    // before the heavy per-file extraction fans out.
    let mut files: Vec<(String, FileHeader)> = Vec::with_capacity(plan.plan_files.len());
    let mut step = None;
    for pf in &plan.plan_files {
        let header = read_header(&dir.join(&pf.name))?;
        if (header.r0, header.r1) != (pf.r0, pf.r1) {
            return Err(RestartError::Inconsistent(format!(
                "{}: covers [{},{}) but plan says [{},{})",
                pf.name, header.r0, header.r1, pf.r0, pf.r1
            )));
        }
        if header.nranks_total != nranks {
            return Err(RestartError::Inconsistent(format!(
                "{}: written by a {}-rank job, plan has {nranks}",
                pf.name, header.nranks_total
            )));
        }
        step = Some(header.step);
        files.push((pf.name.clone(), header));
    }
    let data = extract_all(dir, &files, nranks)?;
    for (r, d) in data.iter().enumerate() {
        if d.len() != plan.layout.nfields() {
            return Err(RestartError::Inconsistent(format!(
                "rank {r}: {} field blocks restored, layout has {}",
                d.len(),
                plan.layout.nfields()
            )));
        }
    }
    Ok(RestoredData {
        step: step.unwrap_or(0),
        nranks,
        field_names: plan
            .layout
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect(),
        data,
    })
}

/// Read back a checkpoint from in-memory file images — the node-local
/// tier's staged extents (see [`crate::tier::TierStage::assemble`]).
/// `image_of` yields the full logical image for a plan file name.
///
/// Staged images carry no commit footer (sealing is in-memory; the
/// durability proof lives on the drained tiers), so integrity here is
/// the header shape checks — the same trust as the application's own
/// buffers the bytes were copied from moments earlier.
pub fn read_checkpoint_staged(
    plan: &CheckpointPlan,
    mut image_of: impl FnMut(&str) -> Option<Vec<u8>>,
) -> Result<RestoredData, RestartError> {
    let nranks = plan.layout.nranks();
    let mut step = None;
    let mut data: Vec<Vec<Bytes>> = vec![Vec::new(); nranks as usize];
    for pf in &plan.plan_files {
        let img = image_of(&pf.name).ok_or_else(|| RestartError::Torn {
            file: pf.name.clone(),
            what: "not resident in the local tier".to_string(),
        })?;
        let bytes = Bytes::from_vec(img);
        let header = decode_header(&bytes).map_err(|e| RestartError::Format {
            file: pf.name.clone(),
            source: e,
        })?;
        if (header.r0, header.r1) != (pf.r0, pf.r1) {
            return Err(RestartError::Inconsistent(format!(
                "{}: covers [{},{}) but plan says [{},{})",
                pf.name, header.r0, header.r1, pf.r0, pf.r1
            )));
        }
        if header.nranks_total != nranks {
            return Err(RestartError::Inconsistent(format!(
                "{}: written by a {}-rank job, plan has {nranks}",
                pf.name, header.nranks_total
            )));
        }
        if (bytes.len() as u64) < header.expected_file_size() {
            return Err(RestartError::Torn {
                file: pf.name.clone(),
                what: format!(
                    "staged image is {} bytes, header expects {}",
                    bytes.len(),
                    header.expected_file_size()
                ),
            });
        }
        step = Some(header.step);
        for rank in header.r0..header.r1 {
            let mut row = Vec::with_capacity(header.fields.len());
            for field in 0..header.fields.len() {
                let (off, len) = header.rank_block(rank, field);
                row.push(bytes.slice(off as usize..(off + len) as usize));
            }
            data[rank as usize].extend(row);
        }
    }
    for (r, d) in data.iter().enumerate() {
        if d.len() != plan.layout.nfields() {
            return Err(RestartError::Inconsistent(format!(
                "rank {r}: {} field blocks restored, layout has {}",
                d.len(),
                plan.layout.nfields()
            )));
        }
    }
    Ok(RestoredData {
        step: step.unwrap_or(0),
        nranks,
        field_names: plan
            .layout
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect(),
        data,
    })
}

/// Discover every rbio checkpoint file under `dir` whose name starts with
/// `prefix`, returning `(relative name, parsed header)` sorted by covered
/// rank range.
pub fn scan_checkpoint_dir(
    dir: impl AsRef<Path>,
    prefix: &str,
) -> Result<Vec<(String, FileHeader)>, RestartError> {
    let dir = dir.as_ref();
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        // Entries deleted between listing and stat (a concurrent GC
        // rotating old generations) are not this scan's problem.
        let entry = match entry {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(RestartError::Io(e)),
        };
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with(prefix) || !name.ends_with(".rbio") {
            continue;
        }
        let header = match read_header(&entry.path()) {
            Ok(h) => h,
            Err(RestartError::Io(e)) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        out.push((name, header));
    }
    out.sort_by_key(|(_, h)| (h.r0, h.r1));
    Ok(out)
}

/// Rebuild a checkpoint from its files alone (no plan): headers are
/// self-describing, so any tool can slice the data — the portability
/// argument for application-level checkpointing.
pub fn read_checkpoint_auto(
    dir: impl AsRef<Path>,
    prefix: &str,
) -> Result<RestoredData, RestartError> {
    let dir = dir.as_ref();
    let files = scan_checkpoint_dir(dir, prefix)?;
    if files.is_empty() {
        return Err(RestartError::Inconsistent(format!(
            "no '{prefix}*.rbio' files found"
        )));
    }
    let nranks = files[0].1.nranks_total;
    let step = files[0].1.step;
    let nfields = files[0].1.fields.len();
    let field_names: Vec<String> = files[0].1.fields.iter().map(|f| f.name.clone()).collect();
    // Coverage check: the rank ranges must tile [0, nranks).
    let mut cursor = 0u32;
    for (name, h) in &files {
        if h.nranks_total != nranks || h.step != step || h.fields.len() != nfields {
            return Err(RestartError::Inconsistent(format!(
                "{name}: header disagrees with the first file's job shape"
            )));
        }
        if h.r0 != cursor {
            return Err(RestartError::Inconsistent(format!(
                "rank coverage gap/overlap at {cursor} (file {name} starts at {})",
                h.r0
            )));
        }
        cursor = h.r1;
    }
    if cursor != nranks {
        return Err(RestartError::Inconsistent(format!(
            "files cover ranks [0,{cursor}) of {nranks}"
        )));
    }
    let data = extract_all(dir, &files, nranks)?;
    Ok(RestoredData {
        step,
        nranks,
        field_names,
        data,
    })
}

/// Build a restart [`Program`]: every rank opens the file covering it and
/// reads its own blocks (independent reads — reads happen once per job, so
/// the paper leaves them untuned; §III-B).
pub fn build_restart_plan(plan: &CheckpointPlan) -> Program {
    let layout = &plan.layout;
    let np = layout.nranks();
    // Restart reads into staging; the payload buffers are unused.
    let mut b = ProgramBuilder::new(vec![0; np as usize]);
    // Mirror the plan's files.
    let mut ids: Vec<FileId> = Vec::with_capacity(plan.plan_files.len());
    for (i, pf) in plan.plan_files.iter().enumerate() {
        ids.push(b.file(pf.name.clone(), plan.program.files[i].size));
    }
    for (i, pf) in plan.plan_files.iter().enumerate() {
        let hdr = crate::format::header_len(layout, &plan.app, pf.r0, pf.r1);
        for rank in pf.r0..pf.r1 {
            b.reserve_staging(rank, layout.rank_payload_bytes(rank));
            b.push(
                rank,
                Op::Open {
                    file: ids[i],
                    create: false,
                },
            );
            for f in 0..layout.nfields() {
                let len = layout.field_bytes(rank, f);
                if len == 0 {
                    continue;
                }
                let field_base = hdr
                    + (0..f)
                        .map(|g| layout.field_total(g, pf.r0, pf.r1))
                        .sum::<u64>();
                b.push(
                    rank,
                    Op::ReadAt {
                        file: ids[i],
                        offset: field_base + layout.field_rank_off(f, pf.r0, rank),
                        len,
                        staging_off: layout.payload_field_off(rank, f),
                    },
                );
            }
            b.push(rank, Op::Close { file: ids[i] });
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use crate::format::materialize_payloads;
    use crate::layout::DataLayout;
    use crate::strategy::{CheckpointSpec, Strategy};
    use rbio_plan::{validate, CoverageMode};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-restart-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn fill(rank: u32, field: usize, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (rank as usize * 31 + field * 7 + i) as u8;
        }
    }

    #[test]
    fn pfpp_write_then_read_round_trip() {
        let layout = DataLayout::uniform(4, &[("Ex", 64), ("Ey", 32)]);
        let plan = CheckpointSpec::new(layout, "ck").step(5).plan().unwrap();
        let dir = tmpdir("pfpp");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        let restored = read_checkpoint(&dir, &plan).unwrap();
        assert_eq!(restored.step, 5);
        assert_eq!(restored.nranks, 4);
        assert_eq!(restored.field_names, vec!["Ex", "Ey"]);
        for r in 0..4u32 {
            for f in 0..2usize {
                let mut want = vec![0u8; if f == 0 { 64 } else { 32 }];
                fill(r, f, &mut want);
                assert_eq!(restored.field_data(r, f), &want[..], "rank {r} field {f}");
            }
        }
        // Auto-discovery agrees.
        let auto = read_checkpoint_auto(&dir, "ck").unwrap();
        assert_eq!(auto.total_bytes(), restored.total_bytes());
        assert_eq!(auto.field_data(2, 1), restored.field_data(2, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_plan_validates_and_runs() {
        let layout = DataLayout::uniform(4, &[("Ex", 64)]);
        let plan = CheckpointSpec::new(layout, "ck")
            .strategy(Strategy::coio(2))
            .plan()
            .unwrap();
        let dir = tmpdir("rplan");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();

        let rp = build_restart_plan(&plan);
        validate(&rp, CoverageMode::Read).unwrap();
        execute(&rp, vec![vec![]; 4], &ExecConfig::new(&dir)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: a panicking restart worker used to poison its slot
    /// mutex and the `expect("no poisoned slots")` take-down panicked
    /// the whole restore (through `std::thread::scope`). Now the panic
    /// is caught per file, surfaces as a typed `WorkerPanicked` for
    /// that file only, and every other slot completes.
    #[test]
    fn panicking_worker_fails_only_its_file() {
        // 1PFPP over 4 ranks -> 4 files, so the parallel fan-out engages
        // and sibling files genuinely run on other workers.
        let layout = DataLayout::uniform(4, &[("Ex", 64)]);
        let plan = CheckpointSpec::new(layout, "ck").step(3).plan().unwrap();
        let dir = tmpdir("panic");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        assert!(plan.plan_files.len() >= 2, "need multiple files");

        INJECT_EXTRACT_PANIC.store(0, Ordering::Release);
        let res = read_checkpoint(&dir, &plan);
        assert_eq!(
            INJECT_EXTRACT_PANIC.load(Ordering::Acquire),
            usize::MAX,
            "injection must have been consumed"
        );
        match res {
            Err(RestartError::WorkerPanicked { file, what }) => {
                assert_eq!(file, plan.plan_files[0].name);
                assert!(what.contains("injected"), "payload: {what}");
            }
            other => panic!("want WorkerPanicked, got {other:?}"),
        }

        // With the injection consumed, the same checkpoint restores.
        let restored = read_checkpoint(&dir, &plan).unwrap();
        assert_eq!(restored.nranks, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_reported() {
        let layout = DataLayout::uniform(2, &[("x", 8)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_checkpoint(&dir, &plan).is_err());
        assert!(read_checkpoint_auto(&dir, "ck").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_data_reported_as_torn() {
        let layout = DataLayout::uniform(2, &[("x", 512)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("torn-bit");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        // Flip one data byte (well clear of the 32-byte footer): the
        // footer's field checksum must catch it.
        let victim = dir.join(&plan.plan_files[0].name);
        let mut bytes = std::fs::read(&victim).unwrap();
        let idx = bytes.len() - 64;
        bytes[idx] ^= 0x01;
        std::fs::write(&victim, bytes).unwrap();
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footerless_file_reported_as_torn() {
        let layout = DataLayout::uniform(2, &[("x", 128)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("torn-nofoot");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        // Chop the footer off: data intact but the commit proof is gone —
        // indistinguishable from a file renamed by something other than
        // the commit path.
        let victim = dir.join(&plan.plan_files[1].name);
        let hdr = read_header(&victim).unwrap();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(hdr.expected_file_size()).unwrap();
        drop(f);
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_detected() {
        let layout = DataLayout::uniform(2, &[("x", 1000)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("trunc");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        // Truncate the second file mid-data.
        let victim = dir.join(&plan.plan_files[1].name);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(200).unwrap();
        drop(f);
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_length_and_header_stub_files_are_torn_not_panics() {
        let layout = DataLayout::uniform(2, &[("x", 256)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("torn-zero");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();

        // Zero-length file: crash between create and first write.
        let victim = dir.join(&plan.plan_files[0].name);
        let good = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, b"").unwrap();
        for err in [
            read_checkpoint(&dir, &plan).unwrap_err(),
            read_checkpoint_auto(&dir, "ck").unwrap_err(),
        ] {
            assert!(
                matches!(err, RestartError::Torn { .. }),
                "want Torn, got {err}"
            );
        }

        // A few bytes of header prelude, then nothing.
        std::fs::write(&victim, &good[..10]).unwrap();
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );

        // Valid prelude but the file ends inside its declared header.
        std::fs::write(&victim, &good[..20.min(good.len())]).unwrap();
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_truncated_mid_footer_is_torn() {
        let layout = DataLayout::uniform(2, &[("x", 512)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("torn-midfoot");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        // Cut the file inside its commit footer: data complete, commit
        // proof half-written — exactly what a crash mid-commit leaves.
        let victim = dir.join(&plan.plan_files[0].name);
        let hdr = read_header(&victim).unwrap();
        let full = std::fs::metadata(&victim).unwrap().len();
        let logical = hdr.expected_file_size();
        assert!(full > logical + 1, "need a footer to cut");
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(logical + (full - logical) / 2).unwrap();
        drop(f);
        let err = read_checkpoint(&dir, &plan).unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        let err = read_checkpoint_auto(&dir, "ck").unwrap_err();
        assert!(
            matches!(err, RestartError::Torn { .. }),
            "want Torn, got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_skips_entries_that_vanish_mid_scan() {
        let layout = DataLayout::uniform(2, &[("x", 64)]);
        let plan = CheckpointSpec::new(layout, "ck").plan().unwrap();
        let dir = tmpdir("scan-vanish");
        let payloads = materialize_payloads(&plan, fill);
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
        // A dangling symlink is what a concurrently-GC'd entry looks like
        // at open time: it lists, but opening it yields NotFound.
        std::os::unix::fs::symlink(dir.join("no-such-file"), dir.join("ck-gone.rbio")).unwrap();
        let files = scan_checkpoint_dir(&dir, "ck").expect("scan tolerates vanished entry");
        assert_eq!(files.len(), plan.plan_files.len());
        let restored = read_checkpoint_auto(&dir, "ck").expect("restore unaffected");
        assert_eq!(restored.nranks, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
