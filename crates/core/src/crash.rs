//! Crash-state torture harness: record the durability-relevant op
//! stream, enumerate legal post-crash filesystem images, and prove
//! every one of them restores.
//!
//! Everything the fault sweeps verify happens inside a *live* process;
//! what actually survives a power loss is a different question. POSIX
//! only promises that data reached stable storage once the matching
//! `fsync` returned, and that a `rename` is durable once the parent
//! directory has been fsynced. Between those barriers the kernel may
//! persist writes in any order, partially, or not at all. This module
//! closes the loop the way crash-consistency checkers (ALICE, CrashMonkey)
//! do:
//!
//! 1. **Record.** A process-global [`Recorder`] journals every
//!    `write_at` (with byte payload), file `fsync`, `rename`, and
//!    directory `fsync` under a root directory, in the order the
//!    process issued them. The journaling seam sits in the fault-layer
//!    write helpers ([`crate::fault::write_at_with_retry`] and
//!    friends) — the single choke point that the serial executors, the
//!    threaded backend, and the ring backend all share — plus the
//!    commit path's footer/fsync/rename/dir-fsync edges. The
//!    [`RecordingBackend`] decorator covers the one edge backends own
//!    directly: `sync_file`. The harness also notes a
//!    [`RecOp::DurablePoint`] after each `checkpoint()` returns with
//!    `fsync = true` — the instant the API contract promises the step
//!    is crash-safe.
//! 2. **Enumerate.** A *legal crash image* at cut `k` applies a subset
//!    of `ops[..k]` to an in-memory filesystem model: every op that a
//!    later-but-before-`k` barrier made durable (a write followed by
//!    its file's fsync; a rename followed by its directory's fsync) is
//!    **required**; the rest are *volatile* and may be dropped
//!    independently, and the last applied volatile write may addition-
//!    ally be **torn** (only a prefix of its payload persisted).
//! 3. **Check.** Each image is materialized into a fresh directory and
//!    restored with [`CheckpointManager::restore_latest`]. The
//!    invariant: every image restores a generation with
//!    `step >= max(DurablePoint before the cut)` — possibly an older,
//!    degraded one — and never panics, never errors, never returns
//!    bytes that differ from what the application wrote for that step.
//!
//! Op order across writer threads is whatever interleaving the run
//! produced — any recorded order is a legal history, so the invariant
//! is sound for all of them — but a journal can be saved with
//! [`save_ops`] and replayed bit-deterministically with [`load_ops`],
//! which is how a violating image is reproduced from CI.

use std::collections::BTreeMap;
use std::fs::File;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rbio_profile::counters;

use crate::backend::{BatchOutcome, IoBackend, IoCtx, WriteOp};
use crate::buf::Bytes;
use crate::commit;
use crate::layout::DataLayout;
use crate::manager::{CheckpointManager, ManagerConfig, ManagerError};
use crate::strategy::Strategy;

/// One recorded durability-relevant operation. Paths are relative to
/// the recorder's root directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecOp {
    /// `data` landed at `offset` in `path`.
    Write {
        /// Target file, relative to the recorder root.
        path: PathBuf,
        /// Absolute file offset of the payload.
        offset: u64,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// `fsync` on `path` returned: every earlier write to it is durable.
    Fsync {
        /// The synced file, relative to the recorder root.
        path: PathBuf,
    },
    /// `from` was renamed over `to`.
    Rename {
        /// Source, relative to the recorder root.
        from: PathBuf,
        /// Destination, relative to the recorder root.
        to: PathBuf,
    },
    /// `fsync` on directory `dir` returned: every earlier rename whose
    /// destination lives in `dir` is durable.
    DirFsync {
        /// The synced directory, relative to the recorder root ("" for
        /// the root itself).
        dir: PathBuf,
    },
    /// The API promised durability here: `checkpoint(step)` returned
    /// with fsync on. Every crash image cut after this point must
    /// restore `step` or newer.
    DurablePoint {
        /// The step the caller was told is durable.
        step: u64,
    },
}

struct RecState {
    root: PathBuf,
    ops: Vec<RecOp>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<RecState>> = Mutex::new(None);
/// Serializes recorders across threads: the journal is process-global,
/// so two concurrently recording scenarios would interleave streams.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn state_guard() -> MutexGuard<'static, Option<RecState>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when a recorder is installed (one relaxed load; the journal
/// hooks are free when nothing records).
#[inline]
pub fn recording() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A scoped, process-global op journal for everything written under a
/// root directory. Holding the recorder serializes with every other
/// would-be recorder in the process; dropping it uninstalls the journal.
pub struct Recorder {
    _serial: MutexGuard<'static, ()>,
}

impl Recorder {
    /// Install a recorder rooted at `root` (must exist; it is
    /// canonicalized so fd-derived paths compare equal). Blocks until
    /// any other live recorder is dropped.
    pub fn install(root: &Path) -> io::Result<Recorder> {
        let serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let root = root.canonicalize()?;
        *state_guard() = Some(RecState {
            root,
            ops: Vec::new(),
        });
        ACTIVE.store(true, Ordering::Release);
        Ok(Recorder { _serial: serial })
    }

    /// Take the journal recorded so far (leaving it empty).
    pub fn take(&self) -> Vec<RecOp> {
        state_guard()
            .as_mut()
            .map(|s| std::mem::take(&mut s.ops))
            .unwrap_or_default()
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        *state_guard() = None;
    }
}

/// Resolve the filesystem path behind an open file descriptor.
fn fd_path(file: &File) -> Option<PathBuf> {
    use std::os::unix::io::AsRawFd;
    std::fs::read_link(format!("/proc/self/fd/{}", file.as_raw_fd())).ok()
}

fn push_under_root(path: &Path, make: impl FnOnce(PathBuf) -> RecOp) {
    let mut g = state_guard();
    if let Some(st) = g.as_mut() {
        if let Ok(rel) = path.strip_prefix(&st.root) {
            let op = make(rel.to_path_buf());
            st.ops.push(op);
        }
    }
}

/// Best-effort canonicalization for paths that may no longer exist
/// (a renamed-away tmp): canonicalize the parent and re-attach the
/// file name.
fn canon(path: &Path) -> Option<PathBuf> {
    if let Ok(c) = path.canonicalize() {
        return Some(c);
    }
    let parent = path.parent()?.canonicalize().ok()?;
    Some(parent.join(path.file_name()?))
}

/// Journal a completed write of `data` at `offset` into `file`.
pub(crate) fn record_write_file(file: &File, offset: u64, data: &[u8]) {
    if !recording() {
        return;
    }
    if let Some(p) = fd_path(file) {
        push_under_root(&p, |path| RecOp::Write {
            path,
            offset,
            data: data.to_vec(),
        });
    }
}

/// Journal a completed vectored write (`bufs` back to back at `offset`).
pub(crate) fn record_write_bufs(file: &File, offset: u64, bufs: &[&[u8]]) {
    if !recording() {
        return;
    }
    if let Some(p) = fd_path(file) {
        push_under_root(&p, |path| RecOp::Write {
            path,
            offset,
            data: bufs.concat(),
        });
    }
}

/// Journal a successful file fsync.
pub(crate) fn record_fsync_file(file: &File) {
    if !recording() {
        return;
    }
    if let Some(p) = fd_path(file) {
        push_under_root(&p, |path| RecOp::Fsync { path });
    }
}

/// Journal a successful rename.
pub(crate) fn record_rename(from: &Path, to: &Path) {
    if !recording() {
        return;
    }
    let (Some(from), Some(to)) = (canon(from), canon(to)) else {
        return;
    };
    let mut g = state_guard();
    if let Some(st) = g.as_mut() {
        if let (Ok(f), Ok(t)) = (from.strip_prefix(&st.root), to.strip_prefix(&st.root)) {
            let op = RecOp::Rename {
                from: f.to_path_buf(),
                to: t.to_path_buf(),
            };
            st.ops.push(op);
        }
    }
}

/// Journal a successful directory fsync.
pub(crate) fn record_dir_fsync(dir: &Path) {
    if !recording() {
        return;
    }
    if let Some(p) = canon(dir) {
        push_under_root(&p, |dir| RecOp::DirFsync { dir });
    }
}

/// Journal a durability promise: the API reported `step` crash-safe.
pub fn note_durable(step: u64) {
    if !recording() {
        return;
    }
    if let Some(st) = state_guard().as_mut() {
        st.ops.push(RecOp::DurablePoint { step });
    }
}

/// [`IoBackend`] decorator that journals the durability edge backends
/// own directly — `sync_file` — into the crash recorder. Write payloads
/// are journaled one layer down, in the fault-checked write helpers
/// every backend (and the serial executors) funnel through, so wrapping
/// either [`crate::backend::ThreadedBackend`] or
/// [`crate::backend::RingBackend`] yields the same complete op stream.
pub struct RecordingBackend {
    inner: Arc<dyn IoBackend>,
}

impl RecordingBackend {
    /// Decorate `inner`.
    pub fn new(inner: Arc<dyn IoBackend>) -> Self {
        RecordingBackend { inner }
    }
}

/// Wrap `backend` in a [`RecordingBackend`] when a recorder is live;
/// otherwise return it unchanged (zero overhead off the harness path).
pub fn wrap_if_recording(backend: Arc<dyn IoBackend>) -> Arc<dyn IoBackend> {
    if recording() {
        Arc::new(RecordingBackend::new(backend))
    } else {
        backend
    }
}

impl IoBackend for RecordingBackend {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn max_batch(&self) -> usize {
        self.inner.max_batch()
    }

    fn run_writes(&self, ctx: &IoCtx<'_>, ops: Vec<WriteOp>) -> BatchOutcome {
        // Payload journaling happens inside the shared fault-layer
        // write helpers; delegating keeps linked-op and buffer-
        // ownership semantics exactly the inner backend's.
        self.inner.run_writes(ctx, ops)
    }

    fn sync_file(&self, file: &File) -> io::Result<()> {
        self.inner.sync_file(file)?;
        record_fsync_file(file);
        Ok(())
    }

    fn read_at(&self, file: &File, offset: u64, len: usize) -> io::Result<Bytes> {
        self.inner.read_at(file, offset, len)
    }
}

// ---------------------------------------------------------------------------
// Crash-image enumeration.
// ---------------------------------------------------------------------------

/// How the volatile (not-yet-barriered) ops of a cut are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Every op before the cut persisted (clean prefix).
    AllApplied,
    /// Only barrier-protected ops persisted (maximal loss).
    RequiredOnly,
    /// Each volatile op persisted iff a seeded coin says so.
    Subset(u64),
    /// Like [`Variant::AllApplied`], but the last volatile write is
    /// torn: only a seeded-length prefix of its payload persisted.
    Torn(u64),
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::AllApplied => write!(f, "all"),
            Variant::RequiredOnly => write!(f, "required"),
            Variant::Subset(s) => write!(f, "subset:{s:#x}"),
            Variant::Torn(s) => write!(f, "torn:{s:#x}"),
        }
    }
}

impl std::str::FromStr for Variant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "all" {
            return Ok(Variant::AllApplied);
        }
        if s == "required" {
            return Ok(Variant::RequiredOnly);
        }
        let parse_seed = |v: &str| {
            let v = v.trim_start_matches("0x");
            u64::from_str_radix(v, 16).map_err(|e| format!("bad variant seed {v:?}: {e}"))
        };
        if let Some(v) = s.strip_prefix("subset:") {
            return Ok(Variant::Subset(parse_seed(v)?));
        }
        if let Some(v) = s.strip_prefix("torn:") {
            return Ok(Variant::Torn(parse_seed(v)?));
        }
        Err(format!("unknown variant {s:?}"))
    }
}

/// One crash image: a cut position in the op stream plus a treatment of
/// the volatile ops before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageSpec {
    /// Ops `0..cut` happened before the crash.
    pub cut: usize,
    /// What subset of the volatile ops persisted.
    pub variant: Variant,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Which ops in `ops[..cut]` a crash at `cut` *cannot* have dropped:
/// a write whose file was fsynced after it (still before the cut), a
/// rename whose destination directory was fsynced after it, and every
/// barrier/durable-point op itself (they carry no filesystem state).
pub fn required_ops(ops: &[RecOp], cut: usize) -> Vec<bool> {
    let mut required = vec![false; cut];
    for j in 0..cut {
        match &ops[j] {
            RecOp::Fsync { path } => {
                for (i, req) in required.iter_mut().enumerate().take(j) {
                    if let RecOp::Write { path: wp, .. } = &ops[i] {
                        if wp == path {
                            *req = true;
                        }
                    }
                }
            }
            RecOp::DirFsync { dir } => {
                for (i, req) in required.iter_mut().enumerate().take(j) {
                    if let RecOp::Rename { to, .. } = &ops[i] {
                        if to.parent().map(Path::to_path_buf).unwrap_or_default() == *dir {
                            *req = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    required
}

/// The newest step the API had promised durable before `cut`, if any.
pub fn durable_floor(ops: &[RecOp], cut: usize) -> Option<u64> {
    ops[..cut]
        .iter()
        .filter_map(|op| match op {
            RecOp::DurablePoint { step } => Some(*step),
            _ => None,
        })
        .max()
}

/// In-memory filesystem model the applied ops replay into.
#[derive(Default)]
struct FsModel {
    files: BTreeMap<PathBuf, Vec<u8>>,
}

impl FsModel {
    fn apply(&mut self, op: &RecOp, torn_len: Option<usize>) {
        match op {
            RecOp::Write { path, offset, data } => {
                let data = match torn_len {
                    Some(n) => &data[..n.min(data.len())],
                    None => &data[..],
                };
                let f = self.files.entry(path.clone()).or_default();
                let end = *offset as usize + data.len();
                if f.len() < end {
                    f.resize(end, 0);
                }
                f[*offset as usize..end].copy_from_slice(data);
            }
            RecOp::Rename { from, to } => {
                let content = self.files.remove(from).unwrap_or_default();
                self.files.insert(to.clone(), content);
            }
            RecOp::Fsync { .. } | RecOp::DirFsync { .. } | RecOp::DurablePoint { .. } => {}
        }
    }

    fn materialize(&self, out_dir: &Path) -> io::Result<()> {
        for (rel, content) in &self.files {
            let path = out_dir.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, content)?;
        }
        Ok(())
    }
}

/// Which ops `spec` applies, and the torn length of the final applied
/// volatile write (if the variant tears one).
fn applied_set(ops: &[RecOp], spec: ImageSpec) -> (Vec<bool>, Option<(usize, usize)>) {
    let required = required_ops(ops, spec.cut);
    let mut applied = vec![true; spec.cut];
    match spec.variant {
        Variant::AllApplied => {}
        Variant::RequiredOnly => {
            for (i, a) in applied.iter_mut().enumerate() {
                *a = required[i];
            }
        }
        Variant::Subset(seed) => {
            for (i, a) in applied.iter_mut().enumerate() {
                if !required[i] {
                    *a = splitmix(seed ^ (i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd)) & 1 == 0;
                }
            }
        }
        Variant::Torn(seed) => {
            // Clean prefix, but the last volatile write only partially
            // persisted. Barriered writes are never torn — their fsync
            // returned.
            let victim = (0..spec.cut).rev().find(|&i| {
                !required[i] && matches!(&ops[i], RecOp::Write { data, .. } if data.len() > 1)
            });
            if let Some(i) = victim {
                if let RecOp::Write { data, .. } = &ops[i] {
                    let torn = 1 + (splitmix(seed) as usize) % (data.len() - 1);
                    return (applied, Some((i, torn)));
                }
            }
        }
    }
    (applied, None)
}

/// Materialize the crash image `spec` describes into `out_dir`.
pub fn materialize_image(ops: &[RecOp], spec: ImageSpec, out_dir: &Path) -> io::Result<()> {
    let (applied, torn) = applied_set(ops, spec);
    let mut fs = FsModel::default();
    for i in 0..spec.cut {
        if applied[i] {
            let torn_len = torn.and_then(|(vi, n)| (vi == i).then_some(n));
            fs.apply(&ops[i], torn_len);
        }
    }
    fs.materialize(out_dir)
}

// ---------------------------------------------------------------------------
// Scenario recording and sweeping.
// ---------------------------------------------------------------------------

/// A recorded workload: `steps` checkpoints of a fixed two-field layout
/// under one strategy, fsync on, rotation disabled (every recorded op
/// survives to enumeration).
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Aggregation strategy under test.
    pub strategy: Strategy,
    /// Writer ranks in the layout.
    pub nranks: u32,
    /// Checkpoints recorded (each ends in a durable point).
    pub steps: u64,
}

impl Scenario {
    /// Stable label for reports and replay coordinates.
    pub fn label(&self) -> String {
        let s = match self.strategy {
            Strategy::OnePfpp => "1pfpp".to_string(),
            Strategy::CoIo { nf, .. } => format!("coio{nf}"),
            Strategy::RbIo { ng, .. } => format!("rbio{ng}"),
        };
        format!("{s}-r{}-s{}", self.nranks, self.steps)
    }

    /// The layout every scenario records under.
    pub fn layout(&self) -> DataLayout {
        DataLayout::uniform(self.nranks, &[("u", 512), ("v", 128)])
    }
}

/// The deterministic byte the workload writes at position `i` of
/// (`step`, `rank`, `field`) — the checker regenerates it to detect
/// torn or cross-step data in a restored image.
pub fn fill_value(step: u64, rank: u32, field: usize, i: usize) -> u8 {
    (step
        .wrapping_mul(31)
        .wrapping_add(u64::from(rank).wrapping_mul(7))
        .wrapping_add((field as u64).wrapping_mul(13))
        .wrapping_add(i as u64)) as u8
}

/// Run the scenario's checkpoints under a recorder rooted at `scratch`
/// (created fresh, removed afterward) and return the op journal.
/// `revert_pr1` plants the missing-dir-fsync bug for the duration.
pub fn record_scenario(
    scn: &Scenario,
    scratch: &Path,
    revert_pr1: bool,
) -> Result<Vec<RecOp>, ManagerError> {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch)?;
    let rec = Recorder::install(scratch)?;
    // Flip the planted-bug switch only while holding the recorder: the
    // install lock serializes scenarios, so the global flag cannot leak
    // into an unrelated recording.
    let prev = commit::REVERT_PR1_COMMIT_FSYNC.swap(revert_pr1, Ordering::SeqCst);
    let run = || -> Result<(), ManagerError> {
        let mut cfg = ManagerConfig::new(scratch, scn.strategy);
        cfg.fsync = true;
        // Rotation would delete files with unrecorded ops; keep every
        // generation so the journal is the complete history.
        cfg.keep = scn.steps as usize + 1;
        let mgr = CheckpointManager::new(scn.layout(), cfg)?;
        for step in 1..=scn.steps {
            mgr.checkpoint(step, |rank, field, buf| {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = fill_value(step, rank, field, i);
                }
            })?;
            note_durable(step);
        }
        Ok(())
    };
    let result = run();
    commit::REVERT_PR1_COMMIT_FSYNC.store(prev, Ordering::SeqCst);
    let ops = rec.take();
    drop(rec);
    let _ = std::fs::remove_dir_all(scratch);
    result.map(|()| ops)
}

/// One invariant breach: the image's replay coordinates plus what went
/// wrong.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario label ([`Scenario::label`]).
    pub scenario: String,
    /// Cut position in the journal.
    pub cut: usize,
    /// Volatile-op treatment (parseable by `Variant::from_str`).
    pub variant: String,
    /// What the restore did wrong.
    pub detail: String,
}

/// What a sweep covered and found.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Crash images materialized and checked.
    pub images: usize,
    /// Ops in the recorded journal.
    pub journal_ops: usize,
    /// Invariant breaches (empty on a correct commit protocol).
    pub violations: Vec<Violation>,
}

/// The image specs a sweep of a `nops`-op journal checks, at most
/// `budget` of them: five variants per cut, cut positions strided to
/// fit the budget, with the full-stream cut always included (it is the
/// one that catches a missing final barrier).
pub fn enumerate_specs(nops: usize, budget: usize, seed: u64) -> Vec<ImageSpec> {
    const PER_CUT: usize = 5;
    let stride = ((nops + 1) * PER_CUT).div_ceil(budget.max(PER_CUT)).max(1);
    let mut cuts: Vec<usize> = (0..=nops).step_by(stride).collect();
    if cuts.last() != Some(&nops) {
        cuts.push(nops);
    }
    let mut specs = Vec::with_capacity(cuts.len() * PER_CUT);
    for cut in cuts {
        let base = splitmix(seed ^ (cut as u64));
        specs.push(ImageSpec {
            cut,
            variant: Variant::AllApplied,
        });
        specs.push(ImageSpec {
            cut,
            variant: Variant::RequiredOnly,
        });
        specs.push(ImageSpec {
            cut,
            variant: Variant::Subset(base),
        });
        specs.push(ImageSpec {
            cut,
            variant: Variant::Subset(splitmix(base)),
        });
        specs.push(ImageSpec {
            cut,
            variant: Variant::Torn(base),
        });
    }
    specs.truncate(budget.max(PER_CUT));
    specs
}

/// Materialize `spec` into `img_dir` and check the restore invariant.
/// `None` means the image is fine; `Some(detail)` describes the breach.
pub fn check_image(
    ops: &[RecOp],
    spec: ImageSpec,
    scn: &Scenario,
    img_dir: &Path,
) -> io::Result<Option<String>> {
    materialize_image(ops, spec, img_dir)?;
    let floor = durable_floor(ops, spec.cut);
    let cfg = ManagerConfig::new(img_dir, scn.strategy);
    let layout = scn.layout();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        CheckpointManager::new(layout, cfg).and_then(|mgr| mgr.restore_latest())
    }));
    counters::add_crash_images_checked(1);
    let detail = match outcome {
        Err(_) => Some("restore panicked".to_string()),
        Ok(Ok(data)) => {
            if floor.is_some_and(|f| data.step < f) {
                Some(format!(
                    "restored step {} older than fsync-promised step {}",
                    data.step,
                    floor.unwrap_or(0)
                ))
            } else {
                verify_restored_bytes(&data, scn)
            }
        }
        Ok(Err(ManagerError::NothingToRestore)) => floor.map(|f| {
            format!("nothing restorable, but step {f} was promised durable before the cut")
        }),
        Ok(Err(e)) => Some(format!("restore failed: {e}")),
    };
    Ok(detail)
}

fn verify_restored_bytes(data: &crate::restart::RestoredData, scn: &Scenario) -> Option<String> {
    let layout = scn.layout();
    for rank in 0..layout.nranks() {
        for field in 0..layout.nfields() {
            let got = data.field_data(rank, field);
            for (i, &b) in got.iter().enumerate() {
                let want = fill_value(data.step, rank, field, i);
                if b != want {
                    return Some(format!(
                        "torn data accepted: step {} rank {rank} field {field} byte {i}: \
                         got {b:#04x}, wrote {want:#04x}",
                        data.step
                    ));
                }
            }
        }
    }
    None
}

/// Record `scn` and check up to `budget` crash images from its journal.
/// Image directories live (briefly) under `work`. Set `revert_pr1` to
/// plant the missing-dir-fsync bug and prove the sweep catches it.
pub fn sweep_scenario(
    scn: &Scenario,
    budget: usize,
    seed: u64,
    work: &Path,
    revert_pr1: bool,
) -> Result<SweepReport, ManagerError> {
    let ops = record_scenario(scn, &work.join("record"), revert_pr1)?;
    let specs = enumerate_specs(ops.len(), budget, seed);
    let mut report = SweepReport {
        journal_ops: ops.len(),
        ..SweepReport::default()
    };
    for (i, spec) in specs.iter().enumerate() {
        let img = work.join(format!("img-{i}"));
        let _ = std::fs::remove_dir_all(&img);
        std::fs::create_dir_all(&img)?;
        if let Some(detail) = check_image(&ops, *spec, scn, &img)? {
            report.violations.push(Violation {
                scenario: scn.label(),
                cut: spec.cut,
                variant: spec.variant.to_string(),
                detail,
            });
        }
        report.images += 1;
        let _ = std::fs::remove_dir_all(&img);
    }
    // A dirty sweep persists its journal beside the images so every
    // reported (cut, variant) coordinate replays bit-deterministically.
    if !report.violations.is_empty() {
        save_ops(&ops, &work.join("crash.journal"))?;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Journal persistence (deterministic replay of a CI-found violation).
// ---------------------------------------------------------------------------

fn hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd hex length".to_string());
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

/// Serialize a journal to a text file (one op per line, payloads hex).
pub fn save_ops(ops: &[RecOp], path: &Path) -> io::Result<()> {
    let mut out = String::new();
    for op in ops {
        match op {
            RecOp::Write { path, offset, data } => {
                out.push_str(&format!(
                    "write {} {offset} {}\n",
                    path.display(),
                    hex(data)
                ));
            }
            RecOp::Fsync { path } => out.push_str(&format!("fsync {}\n", path.display())),
            RecOp::Rename { from, to } => {
                out.push_str(&format!("rename {} {}\n", from.display(), to.display()));
            }
            RecOp::DirFsync { dir } => {
                out.push_str(&format!("dirfsync {}\n", dir.display()));
            }
            RecOp::DurablePoint { step } => out.push_str(&format!("durable {step}\n")),
        }
    }
    std::fs::write(path, out)
}

/// Load a journal saved by [`save_ops`].
pub fn load_ops(path: &Path) -> io::Result<Vec<RecOp>> {
    let text = std::fs::read_to_string(path)?;
    let bad = |line: &str, why: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("journal line {line:?}: {why}"),
        )
    };
    let mut ops = Vec::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let op = match parts.next() {
            Some("write") => {
                let (Some(p), Some(off), Some(data)) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(bad(line, "expected `write <path> <offset> <hex>`".into()));
                };
                RecOp::Write {
                    path: PathBuf::from(p),
                    offset: off.parse().map_err(|e| bad(line, format!("{e}")))?,
                    data: unhex(data).map_err(|e| bad(line, e))?,
                }
            }
            Some("fsync") => RecOp::Fsync {
                path: PathBuf::from(
                    parts
                        .next()
                        .ok_or_else(|| bad(line, "missing path".into()))?,
                ),
            },
            Some("rename") => {
                let (Some(f), Some(t)) = (parts.next(), parts.next()) else {
                    return Err(bad(line, "expected `rename <from> <to>`".into()));
                };
                RecOp::Rename {
                    from: PathBuf::from(f),
                    to: PathBuf::from(t),
                }
            }
            Some("dirfsync") => RecOp::DirFsync {
                dir: PathBuf::from(parts.next().unwrap_or_default()),
            },
            Some("durable") => RecOp::DurablePoint {
                step: parts
                    .next()
                    .ok_or_else(|| bad(line, "missing step".into()))?
                    .parse()
                    .map_err(|e| bad(line, format!("{e}")))?,
            },
            Some(other) => return Err(bad(line, format!("unknown op {other:?}"))),
            None => continue,
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rbio-crash-{tag}-{}", std::process::id()))
    }

    #[test]
    fn recorder_captures_the_full_commit_chain() {
        let dir = scratch("chain");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Recorder::install(&dir).unwrap();
        commit::commit_text(&dir.join("x.commit"), "hello marker\n", true).unwrap();
        let ops = rec.take();
        drop(rec);
        // Body write, footer write, tmp fsync, rename, dir fsync.
        assert!(
            ops.iter()
                .any(|o| matches!(o, RecOp::Write { path, offset: 0, data }
                    if path == Path::new("x.commit.tmp") && data == b"hello marker\n")),
            "body write missing from {ops:?}"
        );
        assert!(ops
            .iter()
            .any(|o| matches!(o, RecOp::Fsync { path } if path == Path::new("x.commit.tmp"))));
        assert!(ops.iter().any(|o| matches!(o, RecOp::Rename { from, to }
                if from == Path::new("x.commit.tmp") && to == Path::new("x.commit"))));
        assert!(ops
            .iter()
            .any(|o| matches!(o, RecOp::DirFsync { dir } if dir == Path::new(""))));
        // And in barrier order: write < fsync < rename < dirfsync.
        let pos = |pred: &dyn Fn(&RecOp) -> bool| ops.iter().position(pred).unwrap();
        let w = pos(&|o| matches!(o, RecOp::Write { offset: 0, .. }));
        let f = pos(&|o| matches!(o, RecOp::Fsync { .. }));
        let r = pos(&|o| matches!(o, RecOp::Rename { .. }));
        let d = pos(&|o| matches!(o, RecOp::DirFsync { .. }));
        assert!(w < f && f < r && r < d, "order broken: {ops:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_outside_the_root_are_not_recorded() {
        let dir = scratch("root");
        let other = scratch("other");
        for d in [&dir, &other] {
            let _ = std::fs::remove_dir_all(d);
            std::fs::create_dir_all(d).unwrap();
        }
        let rec = Recorder::install(&dir).unwrap();
        commit::commit_text(&other.join("y.commit"), "elsewhere\n", true).unwrap();
        assert!(rec.take().is_empty(), "foreign-dir ops leaked in");
        drop(rec);
        for d in [&dir, &other] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn required_ops_track_barriers() {
        let p = PathBuf::from("a.tmp");
        let q = PathBuf::from("a");
        let ops = vec![
            RecOp::Write {
                path: p.clone(),
                offset: 0,
                data: vec![1, 2],
            },
            RecOp::Fsync { path: p.clone() },
            RecOp::Rename {
                from: p.clone(),
                to: q.clone(),
            },
            RecOp::Write {
                path: PathBuf::from("b.tmp"),
                offset: 0,
                data: vec![3],
            },
            RecOp::DirFsync {
                dir: PathBuf::new(),
            },
        ];
        // Cut after the rename, before the dir fsync: the write is
        // pinned by its fsync, the rename is still volatile.
        let req = required_ops(&ops, 3);
        assert_eq!(req, vec![true, false, false]);
        // Cut after the dir fsync: the rename is pinned too; the
        // unsynced write to b.tmp stays volatile.
        let req = required_ops(&ops, 5);
        assert_eq!(req, vec![true, false, true, false, false]);
    }

    #[test]
    fn torn_variant_never_tears_a_synced_write() {
        let p = PathBuf::from("a.tmp");
        let ops = vec![
            RecOp::Write {
                path: p.clone(),
                offset: 0,
                data: vec![9; 64],
            },
            RecOp::Fsync { path: p.clone() },
        ];
        let (applied, torn) = applied_set(
            &ops,
            ImageSpec {
                cut: 2,
                variant: Variant::Torn(7),
            },
        );
        assert_eq!(applied, vec![true, true]);
        assert_eq!(torn, None, "fsynced write must persist whole");
    }

    #[test]
    fn journal_round_trips_through_save_and_load() {
        let ops = vec![
            RecOp::Write {
                path: PathBuf::from("f.rbio.tmp"),
                offset: 128,
                data: vec![0, 255, 16, 32],
            },
            RecOp::Fsync {
                path: PathBuf::from("f.rbio.tmp"),
            },
            RecOp::Rename {
                from: PathBuf::from("f.rbio.tmp"),
                to: PathBuf::from("f.rbio"),
            },
            RecOp::DirFsync {
                dir: PathBuf::new(),
            },
            RecOp::DurablePoint { step: 3 },
        ];
        let dir = scratch("journal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.journal");
        save_ops(&ops, &path).unwrap();
        assert_eq!(load_ops(&path).unwrap(), ops);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn materialized_image_is_deterministic() {
        let scn = Scenario {
            strategy: Strategy::OnePfpp,
            nranks: 2,
            steps: 1,
        };
        let work = scratch("det");
        let ops = record_scenario(&scn, &work.join("rec"), false).unwrap();
        assert!(!ops.is_empty());
        let spec = ImageSpec {
            cut: ops.len(),
            variant: Variant::Subset(0xfeed),
        };
        let mut digests = Vec::new();
        for pass in 0..2 {
            let img = work.join(format!("img-{pass}"));
            let _ = std::fs::remove_dir_all(&img);
            std::fs::create_dir_all(&img).unwrap();
            materialize_image(&ops, spec, &img).unwrap();
            let mut listing = Vec::new();
            for e in std::fs::read_dir(&img).unwrap() {
                let e = e.unwrap();
                let bytes = std::fs::read(e.path()).unwrap();
                listing.push((e.file_name(), crate::format::crc32(&bytes)));
            }
            listing.sort();
            digests.push(listing);
            let _ = std::fs::remove_dir_all(&img);
        }
        assert_eq!(digests[0], digests[1]);
        let _ = std::fs::remove_dir_all(&work);
    }
}
