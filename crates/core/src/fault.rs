//! Deterministic fault injection for the executors.
//!
//! A [`FaultPlan`] is a small, cloneable handle (shared via `Arc`) that
//! both executors consult at their I/O and messaging edges:
//!
//! * **kill** — terminate a rank once its cumulative written bytes reach a
//!   threshold (models a node dying mid-checkpoint, including right before
//!   the commit rename);
//! * **transient write error** — fail the K-th `write_at` on a rank with
//!   `EIO` for a configurable number of attempts, then succeed (models the
//!   I/O-node hiccups the retry path exists for);
//! * **message drop** — swallow the N-th worker→writer message on a
//!   channel (models a lost handoff; the receiver times out with a typed
//!   error instead of hanging);
//! * **hang** — wedge a rank at its next write edge for a duration
//!   (models a hung-but-not-dead writer: the failover monitor must
//!   declare it dead and fence it before it revives);
//! * **write delay** — slow every write on a rank by a fixed delay
//!   (models a straggling writer; the flush pipeline's hedged re-submits
//!   exist for this).
//!
//! The default plan injects nothing and costs one atomic load per check.

use std::collections::HashMap;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rbio_plan::Rank;
use rbio_profile::counters;

use crate::crash;
use crate::sched;

/// What a write-edge fault check decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The rank dies here: abandon its program immediately.
    Kill,
    /// This attempt fails with a transient I/O error; retrying may succeed.
    Error,
    /// The device accepts only the first `cap` bytes of this write; the
    /// caller must deliver the remainder itself (short-write path). The
    /// plan has already accounted the *full* length — the logical write
    /// will eventually deliver every byte.
    Short {
        /// Bytes the device accepts before cutting the write short.
        cap: u64,
    },
    /// The device is out of space: this and every later write on the rank
    /// fails with `ENOSPC`. Not transient — retrying a full disk is
    /// wasted work, so the retry loops surface it immediately.
    Enospc,
}

#[derive(Debug, Default)]
struct Inner {
    /// rank → kill once cumulative bytes written reach this threshold.
    kill_after: HashMap<Rank, u64>,
    /// rank → cumulative bytes successfully written so far.
    written: HashMap<Rank, u64>,
    /// rank → (failing write index, remaining failures) keyed per rank.
    fail_write: HashMap<Rank, (u64, u32)>,
    /// rank → (write index, byte cap): that write is cut short at `cap`
    /// bytes, one-shot.
    short_write: HashMap<Rank, (u64, u64)>,
    /// rank → index of the next `write_at` (attempt 0 only).
    write_index: HashMap<Rank, u64>,
    /// (src, dst) → message index to drop on that channel.
    drop_msg: HashMap<(Rank, Rank), u64>,
    /// (src, dst) → messages sent so far on that channel.
    sent: HashMap<(Rank, Rank), u64>,
    /// rank → one-shot hang duration at its next write edge.
    hang: HashMap<Rank, Duration>,
    /// rank → fixed delay added to every write.
    delay: HashMap<Rank, Duration>,
    /// ranks whose next directory fsync (the rename-durability barrier in
    /// `commit_file`) fails once with an injected error.
    dir_fsync_fail: std::collections::HashSet<Rank>,
    /// rank → cumulative byte budget after which every write fails with
    /// `ENOSPC` (a full device stays full: persistent, never cleared).
    enospc_after: HashMap<Rank, u64>,
    /// ranks whose file fsyncs fail with `EIO`.
    fsync_eio: std::collections::HashSet<Rank>,
    /// ranks on which an fsync has already failed. Sticky: per fsyncgate
    /// semantics, once an fsync fails the kernel may have dropped the
    /// dirty pages, so no later fsync on that rank is allowed to report
    /// the data durable.
    fsync_failed: std::collections::HashSet<Rank>,
}

/// Shared fault-injection plan. Cloning shares state: the same plan handed
/// to an executor and inspected by a test observes one set of counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    armed: Arc<AtomicBool>,
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill `rank` once it has written at least `bytes` cumulative bytes
    /// (checked before each write; `0` kills on the first write attempt).
    pub fn kill_writer_after_bytes(self, rank: Rank, bytes: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .kill_after
            .insert(rank, bytes);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Fail `rank`'s `nth` write (0-based) with a transient error for the
    /// first `times` attempts; the next retry succeeds.
    pub fn fail_nth_write(self, rank: Rank, nth: u64, times: u32) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .fail_write
            .insert(rank, (nth, times));
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Cut `rank`'s `nth` write (0-based) short: the device accepts only
    /// the first `cap` bytes, and the writer must deliver the remainder
    /// itself (a resubmit in the ring backend, a continuation loop in the
    /// threaded one). One-shot. Models the partial `pwrite` returns that
    /// striped file systems produce near stripe boundaries.
    pub fn short_write(self, rank: Rank, nth: u64, cap: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .short_write
            .insert(rank, (nth, cap));
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Drop the `nth` message (0-based) sent from `src` to `dst`.
    pub fn drop_message(self, src: Rank, dst: Rank, nth: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .drop_msg
            .insert((src, dst), nth);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Wedge `rank` at its *next* write edge for `dur` (one-shot). The
    /// rank is alive but makes no progress: the failover monitor sees a
    /// stale heartbeat, declares it dead past the dead-writer deadline,
    /// and must fence it so its post-revival commit is refused.
    pub fn hang_writer(self, rank: Rank, dur: Duration) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .hang
            .insert(rank, dur);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Add `delay` to every write `rank` performs (a persistent
    /// straggler, never dead — hedged re-submits absorb the latency).
    pub fn delay_writes(self, rank: Rank, delay: Duration) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .delay
            .insert(rank, delay);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// The device runs out of space for `rank` once it has written
    /// `bytes` cumulative bytes: that write and every later one fails
    /// with `ENOSPC`. Persistent (a full disk stays full), and never
    /// retried — `ENOSPC` is not transient.
    pub fn enospc_after_bytes(self, rank: Rank, bytes: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .enospc_after
            .insert(rank, bytes);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Fail `rank`'s file fsyncs with `EIO`. The first failure latches:
    /// even if the injection is later cleared, subsequent fsyncs on the
    /// rank keep failing (see [`FaultPlan::on_fsync`]).
    pub fn fsync_eio(self, rank: Rank) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .fsync_eio
            .insert(rank);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Consult the plan as `rank` is about to fsync a data file.
    /// `Some(error)` means the fsync fails. Sticky (the fsyncgate rule):
    /// after the first failure on a rank, every later fsync on that rank
    /// also fails — writeback errors may have dropped the dirty pages, so
    /// a retried fsync that reports clean proves nothing. Callers must
    /// consult this *before* `sync_all` and report the file not durable.
    pub fn on_fsync(&self, rank: Rank) -> Option<io::Error> {
        if !self.is_armed() {
            return None;
        }
        let mut g = self.inner.lock().expect("fault plan lock");
        if g.fsync_failed.contains(&rank) {
            return Some(io::Error::from_raw_os_error(5));
        }
        if g.fsync_eio.contains(&rank) {
            g.fsync_failed.insert(rank);
            return Some(io::Error::from_raw_os_error(5));
        }
        None
    }

    /// Record that a *real* fsync failed on `rank`, so the sticky rule in
    /// [`FaultPlan::on_fsync`] applies to it from now on.
    pub fn latch_fsync_failure(&self, rank: Rank) {
        self.inner
            .lock()
            .expect("fault plan lock")
            .fsync_failed
            .insert(rank);
        self.armed.store(true, Ordering::Release);
    }

    /// Fail `rank`'s next directory fsync (the commit path's
    /// rename-durability barrier) once with an injected I/O error.
    pub fn fail_dir_fsync(self, rank: Rank) -> Self {
        self.inner
            .lock()
            .expect("fault plan lock")
            .dir_fsync_fail
            .insert(rank);
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Consult the plan as `rank` fsyncs the directory containing a
    /// freshly renamed commit. `Some(error)` means the barrier fails
    /// (one-shot); the commit must report it.
    pub fn on_dir_fsync(&self, rank: Rank) -> Option<io::Error> {
        if !self.is_armed() {
            return None;
        }
        self.inner
            .lock()
            .expect("fault plan lock")
            .dir_fsync_fail
            .remove(&rank)
            .then(|| io::Error::other(format!("injected directory fsync failure on rank {rank}")))
    }

    /// Take (and clear) the pending one-shot hang for `rank`, if any.
    /// The caller performs the actual stall so the shared lock is never
    /// held across a sleep.
    pub fn take_hang(&self, rank: Rank) -> Option<Duration> {
        if !self.is_armed() {
            return None;
        }
        self.inner
            .lock()
            .expect("fault plan lock")
            .hang
            .remove(&rank)
    }

    /// The per-write delay configured for `rank`, if any.
    pub fn write_delay(&self, rank: Rank) -> Option<Duration> {
        if !self.is_armed() {
            return None;
        }
        self.inner
            .lock()
            .expect("fault plan lock")
            .delay
            .get(&rank)
            .copied()
    }

    /// Whether any fault is configured (fast path: one atomic load).
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Consult the plan before `rank` writes `bytes` (attempt number
    /// `attempt`, 0 on the first try). `None` means proceed — the plan
    /// then accounts the bytes as written.
    pub fn on_write(&self, rank: Rank, bytes: u64, attempt: u32) -> Option<WriteFault> {
        if !self.is_armed() {
            return None;
        }
        let mut g = self.inner.lock().expect("fault plan lock");
        if let Some(&threshold) = g.kill_after.get(&rank) {
            if *g.written.entry(rank).or_insert(0) >= threshold {
                return Some(WriteFault::Kill);
            }
        }
        if let Some(&cap) = g.enospc_after.get(&rank) {
            // The write that would cross the remaining-space budget is
            // the one the device rejects; once it fires, the cap drops
            // to zero so every later write fails too (the disk stays
            // full even for smaller writes).
            if g.written
                .get(&rank)
                .copied()
                .unwrap_or(0)
                .saturating_add(bytes)
                > cap
            {
                g.enospc_after.insert(rank, 0);
                return Some(WriteFault::Enospc);
            }
        }
        // The logical write index advances only on first attempts, so a
        // retried write keeps its index.
        let idx = if attempt == 0 {
            let e = g.write_index.entry(rank).or_insert(0);
            let idx = *e;
            *e += 1;
            idx
        } else {
            g.write_index.get(&rank).copied().unwrap_or(1) - 1
        };
        if let Some(&(nth, times)) = g.fail_write.get(&rank) {
            if idx == nth && attempt < times {
                return Some(WriteFault::Error);
            }
        }
        if let Some(&(nth, cap)) = g.short_write.get(&rank) {
            if idx == nth && attempt == 0 {
                // The write proceeds (short), so the full length is
                // accounted now: the caller owes the remainder and the
                // plan never sees this logical write again.
                g.short_write.remove(&rank);
                *g.written.entry(rank).or_insert(0) += bytes;
                return Some(WriteFault::Short { cap });
            }
        }
        *g.written.entry(rank).or_insert(0) += bytes;
        None
    }

    /// Consult the plan as `rank` is about to commit (rename) a file;
    /// `true` means the rank dies here — after its data writes, before the
    /// rename — the worst spot for crash consistency.
    pub fn on_commit(&self, rank: Rank) -> bool {
        if !self.is_armed() {
            return false;
        }
        let g = self.inner.lock().expect("fault plan lock");
        match g.kill_after.get(&rank) {
            Some(&threshold) => g.written.get(&rank).copied().unwrap_or(0) >= threshold,
            None => false,
        }
    }

    /// Consult the plan as `src` sends a message to `dst`; `true` means
    /// drop it (the receiver never sees it).
    pub fn on_send(&self, src: Rank, dst: Rank) -> bool {
        if !self.is_armed() {
            return false;
        }
        let mut g = self.inner.lock().expect("fault plan lock");
        let e = g.sent.entry((src, dst)).or_insert(0);
        let idx = *e;
        *e += 1;
        g.drop_msg.get(&(src, dst)) == Some(&idx)
    }
}

/// Failure of a fault-checked, retried write.
#[derive(Debug)]
pub enum WriteError {
    /// Fault injection killed the rank; abandon its program.
    Killed,
    /// A real or injected I/O error that exhausted the retry budget.
    Io(io::Error),
    /// Transient errors persisted past the retry wall-clock deadline;
    /// the writer gave up even though attempts remained.
    DeadlineExceeded {
        /// How long the write (including retries) had been running.
        waited: Duration,
    },
    /// A partial write could not be completed: the device accepted a
    /// prefix and then stopped making progress (or failed hard). Typed so
    /// callers can report exactly how much of the payload landed instead
    /// of folding it into a generic retry error.
    ShortWrite {
        /// Bytes that reached the device before progress stopped.
        written: u64,
        /// Bytes the logical write was supposed to deliver.
        expected: u64,
    },
}

/// Errors worth retrying a write for (besides injected ones).
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Total retry wall-clock budget for one logical write: the doubling
/// backoff series `initial_backoff · 2^retries` (exponent capped so huge
/// retry counts cannot produce an unbounded budget), clamped to
/// [50 ms, 2 s]. The floor guarantees the full attempt schedule of the
/// small default backoffs always fits; the ceiling bounds how long a
/// writer can sit on an EIO-forever device before surfacing a typed
/// [`WriteError::DeadlineExceeded`].
fn retry_budget(max_retries: u32, initial_backoff: Duration) -> Duration {
    let factor = 1u32 << max_retries.min(12);
    initial_backoff
        .saturating_mul(factor)
        .clamp(Duration::from_millis(50), Duration::from_secs(2))
}

/// Deterministic backoff jitter in `[0, backoff/2]`, decorrelating the
/// retry storms of writers that hit the same I/O-node hiccup together.
fn retry_jitter(backoff: Duration, rank: Rank, offset: u64, attempt: u32) -> Duration {
    let mut x = u64::from(rank) ^ offset.rotate_left(17) ^ (u64::from(attempt) << 32);
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    backoff
        .checked_div(2)
        .unwrap_or(Duration::ZERO)
        .mul_f64((x % 1000) as f64 / 1000.0)
}

/// One write's retry clock: sleeps the (jittered) backoff, doubling it
/// each attempt, and fails with a typed error once the wall-clock
/// deadline passes — an EIO-forever device gives up in bounded time no
/// matter how large the attempt budget is.
struct RetryClock {
    start: Instant,
    deadline: Instant,
}

impl RetryClock {
    fn new(max_retries: u32, initial_backoff: Duration) -> Self {
        let start = Instant::now();
        RetryClock {
            start,
            deadline: start + retry_budget(max_retries, initial_backoff),
        }
    }

    fn backoff(
        &self,
        backoff: &mut Duration,
        rank: Rank,
        offset: u64,
        attempt: u32,
    ) -> Result<(), WriteError> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(WriteError::DeadlineExceeded {
                waited: now.duration_since(self.start),
            });
        }
        let jittered = backoff.saturating_add(retry_jitter(*backoff, rank, offset, attempt));
        std::thread::sleep(jittered.min(self.deadline.duration_since(now)));
        *backoff = backoff.saturating_mul(2);
        Ok(())
    }
}

/// `write_all_at` guarded by `faults`, with up to `max_retries` bounded
/// retries (jittered backoff doubling from `initial_backoff`, total
/// retry wall-clock capped by a deadline) on transient errors. Returns
/// the number of retried attempts. Shared by both executors so their
/// failure behavior is identical.
pub fn write_at_with_retry(
    file: &std::fs::File,
    rank: Rank,
    offset: u64,
    data: &[u8],
    faults: &FaultPlan,
    max_retries: u32,
    initial_backoff: Duration,
) -> Result<u32, WriteError> {
    if let Some(d) = faults.write_delay(rank) {
        if !sched::registered() {
            // A straggling writer: every write pays the injected delay
            // (wall-clock sleeps would wreck controlled-run determinism,
            // so schedule exploration skips the stall itself).
            std::thread::sleep(d);
        }
    }
    let mut attempt = 0u32;
    let mut backoff = initial_backoff;
    let clock = RetryClock::new(max_retries, initial_backoff);
    loop {
        match faults.on_write(rank, data.len() as u64, attempt) {
            Some(WriteFault::Kill) => return Err(WriteError::Killed),
            Some(WriteFault::Error) => {
                if attempt >= max_retries {
                    // EIO: the canonical "device hiccup" errno.
                    return Err(WriteError::Io(io::Error::from_raw_os_error(5)));
                }
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
                continue;
            }
            Some(WriteFault::Short { cap }) => {
                // The device takes `cap` bytes now; the remainder is a
                // continuation of the *same* logical write — counted as a
                // short-write retry, never as a hedge or retry attempt.
                let cap = (cap as usize).min(data.len());
                file.write_all_at(&data[..cap], offset)
                    .map_err(WriteError::Io)?;
                if cap < data.len() {
                    counters::add_short_write_retries(1);
                    write_full_at(file, offset, data, cap)?;
                }
                crash::record_write_file(file, offset, data);
                return Ok(attempt);
            }
            Some(WriteFault::Enospc) => {
                return Err(WriteError::Io(io::Error::from_raw_os_error(28)));
            }
            None => {}
        }
        match write_full_at(file, offset, data, 0) {
            Ok(()) => {
                crash::record_write_file(file, offset, data);
                return Ok(attempt);
            }
            Err(WriteError::Io(e)) if attempt < max_retries && is_transient(&e) => {
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Deliver `data[already..]` at `offset + already`, looping positional
/// writes until every byte lands. Zero progress — or a hard error after
/// partial progress — surfaces a typed [`WriteError::ShortWrite`] with
/// the exact written/expected byte counts rather than a generic error.
/// Each extra syscall past the first counts a short-write retry.
pub fn write_full_at(
    file: &std::fs::File,
    offset: u64,
    data: &[u8],
    already: usize,
) -> Result<(), WriteError> {
    let expected = data.len() as u64;
    let mut written = already;
    let mut continued = false;
    while written < data.len() {
        if continued {
            counters::add_short_write_retries(1);
        }
        match file.write_at(&data[written..], offset + written as u64) {
            Ok(0) => {
                return Err(WriteError::ShortWrite {
                    written: written as u64,
                    expected,
                })
            }
            Ok(n) => {
                written += n;
                continued = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if written > already => {
                // A prefix landed and then the device failed hard: report
                // how far the write got, not just the errno.
                let _ = e;
                return Err(WriteError::ShortWrite {
                    written: written as u64,
                    expected,
                });
            }
            Err(e) => return Err(WriteError::Io(e)),
        }
    }
    Ok(())
}

/// Outcome of a capped (ring-submitted) write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CappedWrite {
    /// Every byte landed.
    Full {
        /// Retried attempts consumed by transient errors.
        attempts: u32,
    },
    /// Only a prefix landed (injected short write); the submitter owes a
    /// resubmission of `data[written..]`.
    Short {
        /// Bytes delivered before the cut.
        written: u64,
        /// Retried attempts consumed before the short completion.
        attempts: u32,
    },
}

/// Ring-backend variant of [`write_at_with_retry`]: identical fault
/// consultation and retry policy, but an injected [`WriteFault::Short`]
/// delivers only the capped prefix and *returns* — completing the
/// remainder is the submitter's job (a resubmitted SQE at reap time),
/// which is exactly how a real completion queue surfaces partial writes.
pub fn write_at_capped(
    file: &std::fs::File,
    rank: Rank,
    offset: u64,
    data: &[u8],
    faults: &FaultPlan,
    max_retries: u32,
    initial_backoff: Duration,
) -> Result<CappedWrite, WriteError> {
    if let Some(d) = faults.write_delay(rank) {
        if !sched::registered() {
            std::thread::sleep(d);
        }
    }
    let mut attempt = 0u32;
    let mut backoff = initial_backoff;
    let clock = RetryClock::new(max_retries, initial_backoff);
    loop {
        match faults.on_write(rank, data.len() as u64, attempt) {
            Some(WriteFault::Kill) => return Err(WriteError::Killed),
            Some(WriteFault::Error) => {
                if attempt >= max_retries {
                    return Err(WriteError::Io(io::Error::from_raw_os_error(5)));
                }
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
                continue;
            }
            Some(WriteFault::Short { cap }) => {
                let cap = (cap as usize).min(data.len());
                file.write_all_at(&data[..cap], offset)
                    .map_err(WriteError::Io)?;
                crash::record_write_file(file, offset, &data[..cap]);
                if cap < data.len() {
                    return Ok(CappedWrite::Short {
                        written: cap as u64,
                        attempts: attempt,
                    });
                }
                return Ok(CappedWrite::Full { attempts: attempt });
            }
            Some(WriteFault::Enospc) => {
                return Err(WriteError::Io(io::Error::from_raw_os_error(28)));
            }
            None => {}
        }
        match write_full_at(file, offset, data, 0) {
            Ok(()) => {
                crash::record_write_file(file, offset, data);
                return Ok(CappedWrite::Full { attempts: attempt });
            }
            Err(WriteError::Io(e)) if attempt < max_retries && is_transient(&e) => {
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write `bufs` back to back starting at `offset` as **one** logical,
/// fault-checked write of their total length, with the same bounded-retry
/// policy as [`write_at_with_retry`]. Used by the executors to coalesce a
/// run of contiguous `WriteAt` ops into a single vectored syscall.
///
/// Counting the batch as one write changes `FaultPlan`'s per-write
/// accounting granularity, so the executors only coalesce when
/// [`FaultPlan::is_armed`] is false — fault semantics are specified
/// against plan ops, not against batched syscalls.
pub fn write_vectored_at(
    file: &std::fs::File,
    rank: Rank,
    offset: u64,
    bufs: &[&[u8]],
    faults: &FaultPlan,
    max_retries: u32,
    initial_backoff: Duration,
) -> Result<u32, WriteError> {
    if let Some(d) = faults.write_delay(rank) {
        if !sched::registered() {
            std::thread::sleep(d);
        }
    }
    let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
    let mut attempt = 0u32;
    let mut backoff = initial_backoff;
    let clock = RetryClock::new(max_retries, initial_backoff);
    loop {
        match faults.on_write(rank, total, attempt) {
            Some(WriteFault::Kill) => return Err(WriteError::Killed),
            Some(WriteFault::Error) => {
                if attempt >= max_retries {
                    return Err(WriteError::Io(io::Error::from_raw_os_error(5)));
                }
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
                continue;
            }
            // Short injection targets plain writes; a coalesced vectored
            // batch (only built when the plan is unarmed) delivers in
            // full. Bytes are already accounted.
            Some(WriteFault::Short { .. }) => {}
            Some(WriteFault::Enospc) => {
                return Err(WriteError::Io(io::Error::from_raw_os_error(28)));
            }
            None => {}
        }
        match write_vectored_all(file, offset, bufs) {
            Ok(()) => {
                crash::record_write_bufs(file, offset, bufs);
                return Ok(attempt);
            }
            Err(e) if attempt < max_retries && is_transient(&e) => {
                attempt += 1;
                clock.backoff(&mut backoff, rank, offset, attempt)?;
            }
            Err(e) => return Err(WriteError::Io(e)),
        }
    }
}

/// Positional vectored write with full-delivery semantics: seeks to
/// `offset` and loops `write_vectored` until every byte of every buffer
/// has landed. The file's cursor is clobbered; the executors only ever use
/// positional reads/writes elsewhere, and each rank owns its own open file
/// description, so this is safe.
fn write_vectored_all(file: &std::fs::File, offset: u64, bufs: &[&[u8]]) -> io::Result<()> {
    use std::io::{IoSlice, Seek, SeekFrom, Write};
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    let mut written = 0usize;
    while written < total {
        // Rebuild the slice list past `written` bytes (a partial vectored
        // write is rare; the rebuild cost is irrelevant).
        let mut skip = written;
        let mut slices: Vec<IoSlice> = Vec::with_capacity(bufs.len());
        for b in bufs {
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            slices.push(IoSlice::new(&b[skip..]));
            skip = 0;
        }
        match f.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write made no progress",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_armed());
        assert_eq!(p.on_write(0, 1 << 20, 0), None);
        assert!(!p.on_send(0, 1));
    }

    #[test]
    fn kill_threshold_counts_cumulative_bytes() {
        let p = FaultPlan::none().kill_writer_after_bytes(2, 100);
        assert_eq!(p.on_write(2, 60, 0), None);
        assert_eq!(p.on_write(2, 60, 0), None); // 60 < 100 still
        assert_eq!(p.on_write(2, 1, 0), Some(WriteFault::Kill)); // 120 >= 100
                                                                 // Other ranks unaffected.
        assert_eq!(p.on_write(3, 1 << 30, 0), None);
    }

    #[test]
    fn kill_at_zero_fires_before_first_write() {
        let p = FaultPlan::none().kill_writer_after_bytes(0, 0);
        assert_eq!(p.on_write(0, 1, 0), Some(WriteFault::Kill));
    }

    #[test]
    fn nth_write_fails_then_recovers() {
        let p = FaultPlan::none().fail_nth_write(1, 1, 2);
        assert_eq!(p.on_write(1, 10, 0), None); // write 0 ok
        assert_eq!(p.on_write(1, 10, 0), Some(WriteFault::Error)); // write 1, attempt 0
        assert_eq!(p.on_write(1, 10, 1), Some(WriteFault::Error)); // retry 1
        assert_eq!(p.on_write(1, 10, 2), None); // retry 2 succeeds
        assert_eq!(p.on_write(1, 10, 0), None); // write 2 ok
    }

    #[test]
    fn commit_kill_fires_once_threshold_reached() {
        let p = FaultPlan::none().kill_writer_after_bytes(0, 100);
        assert!(!p.on_commit(0), "threshold not reached yet");
        assert_eq!(p.on_write(0, 100, 0), None);
        assert!(p.on_commit(0), "all data written: die before the rename");
        assert!(!p.on_commit(1));
    }

    #[test]
    fn drops_exactly_the_nth_message() {
        let p = FaultPlan::none().drop_message(5, 0, 1);
        assert!(!p.on_send(5, 0));
        assert!(p.on_send(5, 0));
        assert!(!p.on_send(5, 0));
        assert!(!p.on_send(0, 5)); // direction matters
    }

    #[test]
    fn vectored_write_lands_all_buffers_contiguously() {
        let dir = std::env::temp_dir().join(format!("rbio-fault-vec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.bin");
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let a = [1u8; 3];
        let b = [2u8; 5];
        let c = [3u8; 2];
        let attempts = write_vectored_at(
            &f,
            0,
            4,
            &[&a, &b, &c],
            &FaultPlan::none(),
            3,
            Duration::from_micros(10),
        )
        .unwrap();
        assert_eq!(attempts, 0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[4..], &[1, 1, 1, 2, 2, 2, 2, 2, 3, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vectored_write_is_one_logical_write_for_faults() {
        let dir = std::env::temp_dir().join(format!("rbio-fault-vec1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(dir.join("w.bin"))
            .unwrap();
        // Fail write index 0 twice: the whole batch retries as a unit.
        let plan = FaultPlan::none().fail_nth_write(9, 0, 2);
        let attempts = write_vectored_at(
            &f,
            9,
            0,
            &[&[5u8; 4], &[6u8; 4]],
            &plan,
            3,
            Duration::from_micros(10),
        )
        .unwrap();
        assert_eq!(attempts, 2);
        // The next write on this rank is logical index 1: no fault left.
        assert_eq!(plan.on_write(9, 1, 0), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clones_share_state() {
        let p = FaultPlan::none().kill_writer_after_bytes(0, 10);
        let q = p.clone();
        assert_eq!(q.on_write(0, 10, 0), None);
        // p sees q's accounting.
        assert_eq!(p.on_write(0, 1, 0), Some(WriteFault::Kill));
    }

    #[test]
    fn hang_is_one_shot_and_delay_persists() {
        let p = FaultPlan::none()
            .hang_writer(3, Duration::from_millis(7))
            .delay_writes(5, Duration::from_micros(2));
        assert!(p.is_armed());
        assert_eq!(p.take_hang(3), Some(Duration::from_millis(7)));
        assert_eq!(p.take_hang(3), None, "hang fires once");
        assert_eq!(p.take_hang(5), None);
        assert_eq!(p.write_delay(5), Some(Duration::from_micros(2)));
        assert_eq!(p.write_delay(5), Some(Duration::from_micros(2)));
        assert_eq!(p.write_delay(3), None);
    }

    #[test]
    fn eio_forever_gives_up_within_the_retry_deadline() {
        let dir = std::env::temp_dir().join(format!("rbio-fault-ddl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(dir.join("d.bin"))
            .unwrap();
        // Every attempt fails, and the attempt budget alone would allow
        // far more retries than the wall-clock deadline: the deadline
        // must end it with a typed error.
        let plan = FaultPlan::none().fail_nth_write(7, 0, u32::MAX);
        let start = Instant::now();
        let err = write_at_with_retry(
            &f,
            7,
            0,
            &[1u8; 8],
            &plan,
            u32::MAX,
            Duration::from_micros(1),
        )
        .expect_err("EIO-forever must not succeed");
        let elapsed = start.elapsed();
        match err {
            WriteError::DeadlineExceeded { waited } => {
                assert!(waited >= Duration::from_millis(50), "{waited:?}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "gave up far too late: {elapsed:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_fires_at_budget_and_is_persistent() {
        let p = FaultPlan::none().enospc_after_bytes(4, 100);
        assert_eq!(p.on_write(4, 100, 0), None); // fills the device exactly
        assert_eq!(p.on_write(4, 1, 0), Some(WriteFault::Enospc));
        assert_eq!(p.on_write(4, 1, 1), Some(WriteFault::Enospc), "retry too");
        assert_eq!(p.on_write(4, 1, 0), Some(WriteFault::Enospc), "stays full");
        assert_eq!(p.on_write(5, 1 << 20, 0), None, "other ranks unaffected");
    }

    #[test]
    fn enospc_rejects_the_single_write_that_crosses_the_budget() {
        // One large write bigger than the remaining space must fail —
        // the device does not accept a prefix of it.
        let p = FaultPlan::none().enospc_after_bytes(4, 256);
        assert_eq!(p.on_write(4, 1280, 0), Some(WriteFault::Enospc));
        // …and the latch holds even for writes that would have fit.
        assert_eq!(p.on_write(4, 1, 0), Some(WriteFault::Enospc));
    }

    #[test]
    fn enospc_surfaces_errno_28_without_retries() {
        let dir = std::env::temp_dir().join(format!("rbio-fault-nospc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(dir.join("n.bin"))
            .unwrap();
        let plan = FaultPlan::none().enospc_after_bytes(6, 0);
        let start = Instant::now();
        let err = write_at_with_retry(&f, 6, 0, &[1u8; 8], &plan, 8, Duration::from_millis(10))
            .expect_err("full device must fail");
        assert!(
            start.elapsed() < Duration::from_millis(10),
            "ENOSPC must not consume the retry schedule"
        );
        match err {
            WriteError::Io(e) => assert_eq!(e.raw_os_error(), Some(28)),
            other => panic!("expected Io(ENOSPC), got {other:?}"),
        }
    }

    #[test]
    fn fsync_failure_is_sticky() {
        let p = FaultPlan::none().fsync_eio(2);
        let e = p.on_fsync(2).expect("injected fsync failure");
        assert_eq!(e.raw_os_error(), Some(5));
        // fsyncgate: a retried fsync must not report clean.
        assert!(p.on_fsync(2).is_some(), "second fsync must also fail");
        assert!(p.on_fsync(2).is_some(), "and every one after");
        assert!(p.on_fsync(3).is_none(), "other ranks unaffected");
    }

    #[test]
    fn real_fsync_failure_latches_the_rank() {
        let p = FaultPlan::none();
        assert!(p.on_fsync(1).is_none());
        p.latch_fsync_failure(1);
        assert!(p.on_fsync(1).is_some(), "latched rank can never sync clean");
        assert!(p.on_fsync(0).is_none());
    }

    #[test]
    fn bounded_attempts_still_recover_under_the_deadline() {
        let dir = std::env::temp_dir().join(format!("rbio-fault-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(dir.join("r.bin"))
            .unwrap();
        let plan = FaultPlan::none().fail_nth_write(2, 0, 2);
        let attempts =
            write_at_with_retry(&f, 2, 0, &[9u8; 4], &plan, 3, Duration::from_micros(10))
                .expect("recovers inside both budgets");
        assert_eq!(attempts, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
