//! Checkpoint file format.
//!
//! Mirrors the structure the paper describes (§III-B, Fig. 2): every output
//! file is a *master header* followed by the field data blocks, sorted by
//! field, and within a field by rank. The header carries the application
//! name, checkpoint step, the rank range the file covers, the per-rank size
//! table of every field, and each field's absolute data offset — everything
//! a restart (or a ParaView-style post-processor) needs to slice the file
//! without touching any other metadata.
//!
//! All integers are little-endian. The header ends with a CRC32 of itself,
//! so a truncated or corrupted checkpoint is detected at restart.
//!
//! Layout:
//!
//! ```text
//! magic  u32      "RBIO" (0x4F49_4252 LE on disk)
//! version u32
//! header_len u64  total master-header bytes including the trailing CRC
//! step   u64
//! nranks_total u32
//! r0 u32, r1 u32  covered rank range [r0, r1)
//! app_len u16, app bytes
//! nfields u32
//! per field:
//!   name_len u16, name bytes
//!   kind u8         0 = uniform, 1 = per-rank
//!   sizes           u64 (uniform) or (r1-r0) × u64
//!   data_off u64    absolute offset of the field's data in this file
//! crc32 u32        over all preceding header bytes
//! ```

use std::sync::OnceLock;

use crate::layout::DataLayout;
use crate::strategy::CheckpointPlan;

/// File magic ("RBIO" as a little-endian u32).
pub const MAGIC: u32 = u32::from_le_bytes(*b"RBIO");
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors parsing a checkpoint file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Not an rbio checkpoint file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer is shorter than the header claims.
    Truncated,
    /// The header CRC does not match (corruption).
    CrcMismatch,
    /// Internally inconsistent header fields.
    Inconsistent(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "bad magic (not an rbio checkpoint)"),
            FormatError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::Truncated => write!(f, "truncated header"),
            FormatError::CrcMismatch => write!(f, "header CRC mismatch (corrupt file)"),
            FormatError::Inconsistent(s) => write!(f, "inconsistent header: {s}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// IEEE 802.3 polynomial (reflected) — master-header CRC32.
const CRC32_POLY: u32 = 0xEDB8_8320;
/// Castagnoli polynomial (reflected) — commit-footer CRC32C.
const CRC32C_POLY: u32 = 0x82F6_3B78;

/// Build the slice-by-8 lookup tables for a reflected CRC polynomial.
/// `tables[0]` is the classic byte-at-a-time table; `tables[k][b]` folds a
/// byte that sits `k` positions ahead in an 8-byte block.
fn build_crc_tables(poly: u32) -> Box<[[u32; 256]; 8]> {
    let mut t = Box::new([[0u32; 256]; 8]);
    for i in 0..256usize {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { poly ^ (c >> 1) } else { c >> 1 };
        }
        t[0][i] = c;
    }
    for i in 0..256usize {
        let mut c = t[0][i];
        for k in 1..8 {
            c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
            t[k][i] = c;
        }
    }
    t
}

/// Slice-by-8 CRC update: process 8 input bytes per iteration with eight
/// independent table lookups (Intel's "slicing-by-8"), falling back to
/// byte-at-a-time for the 0–7 byte tail. `crc` is the running pre-inverted
/// state (`!0` at the start of a message).
#[inline]
fn crc_update_sliced(tables: &[[u32; 256]; 8], mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().expect("len 4")) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().expect("len 4"));
        crc = tables[7][(lo & 0xFF) as usize]
            ^ tables[6][((lo >> 8) & 0xFF) as usize]
            ^ tables[5][((lo >> 16) & 0xFF) as usize]
            ^ tables[4][(lo >> 24) as usize]
            ^ tables[3][(hi & 0xFF) as usize]
            ^ tables[2][((hi >> 8) & 0xFF) as usize]
            ^ tables[1][((hi >> 16) & 0xFF) as usize]
            ^ tables[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = tables[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

fn crc32_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| build_crc_tables(CRC32_POLY))
}

fn crc32c_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| build_crc_tables(CRC32C_POLY))
}

/// CRC32 (IEEE 802.3 polynomial, reflected), slice-by-8.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc_update_sliced(crc32_tables(), !0, bytes)
}

/// CRC32C (Castagnoli polynomial, reflected) — used for the commit footer's
/// per-region data checksums, keeping it distinct from the header's CRC32.
/// Slice-by-8.
pub fn crc32c(bytes: &[u8]) -> u32 {
    !crc_update_sliced(crc32c_tables(), !0, bytes)
}

/// Byte-at-a-time CRC32 reference implementation. Kept as the oracle the
/// property tests compare the slice-by-8 path against; not used on the
/// checkpoint datapath.
pub fn crc32_scalar(bytes: &[u8]) -> u32 {
    let t = &crc32_tables()[0];
    let mut crc = !0u32;
    for &b in bytes {
        crc = t[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Byte-at-a-time CRC32C reference implementation (test oracle).
pub fn crc32c_scalar(bytes: &[u8]) -> u32 {
    let t = &crc32c_tables()[0];
    let mut crc = !0u32;
    for &b in bytes {
        crc = t[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Commit-footer magic ("RBFT" as a little-endian u32).
pub const FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"RBFT");

/// One checksummed byte region of a committed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FooterRegion {
    /// Absolute byte offset of the region.
    pub off: u64,
    /// Region length in bytes.
    pub len: u64,
    /// CRC32C of the region's bytes.
    pub crc32c: u32,
}

/// Length in bytes of a commit footer covering `nregions` regions.
///
/// Layout, appended at `expected_file_size()` by the committing rank:
///
/// ```text
/// magic    u32   "RBFT"
/// nregions u32
/// per region: off u64, len u64, crc32c u32
/// footer_crc u32   CRC32C over all preceding footer bytes
/// ```
pub fn footer_len(nregions: usize) -> u64 {
    4 + 4 + 20 * nregions as u64 + 4
}

/// Encode a commit footer over `regions`.
pub fn encode_footer(regions: &[FooterRegion]) -> Vec<u8> {
    let mut out = Vec::with_capacity(footer_len(regions.len()) as usize);
    let cap = out.capacity();
    out.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
    out.extend_from_slice(&(regions.len() as u32).to_le_bytes());
    for r in regions {
        out.extend_from_slice(&r.off.to_le_bytes());
        out.extend_from_slice(&r.len.to_le_bytes());
        out.extend_from_slice(&r.crc32c.to_le_bytes());
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(out.len() as u64, footer_len(regions.len()));
    debug_assert_eq!(out.capacity(), cap, "footer_len pre-sized exactly");
    out
}

/// Parse a commit footer from `bytes` (the exact footer slice).
pub fn decode_footer(bytes: &[u8]) -> Result<Vec<FooterRegion>, FormatError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.u32()? != FOOTER_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let nregions = c.u32()? as usize;
    if bytes.len() as u64 != footer_len(nregions) {
        return Err(FormatError::Truncated);
    }
    let mut regions = Vec::with_capacity(nregions);
    for _ in 0..nregions {
        regions.push(FooterRegion {
            off: c.u64()?,
            len: c.u64()?,
            crc32c: c.u32()?,
        });
    }
    let stored = c.u32()?;
    if crc32c(&bytes[..bytes.len() - 4]) != stored {
        return Err(FormatError::CrcMismatch);
    }
    Ok(regions)
}

/// A parsed master header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileHeader {
    /// Checkpoint step number.
    pub step: u64,
    /// Total ranks in the job that wrote this checkpoint.
    pub nranks_total: u32,
    /// First covered rank.
    pub r0: u32,
    /// One past the last covered rank.
    pub r1: u32,
    /// Application name.
    pub app: String,
    /// Per field: name, per-covered-rank byte sizes, absolute data offset.
    pub fields: Vec<ParsedField>,
    /// Total header length in bytes.
    pub header_len: u64,
}

/// One field entry of a parsed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedField {
    /// Field name.
    pub name: String,
    /// Byte sizes for ranks `r0..r1`, in order.
    pub sizes: Vec<u64>,
    /// Absolute offset of this field's data region in the file.
    pub data_off: u64,
}

impl FileHeader {
    /// Offset of `rank`'s block of field `field` within this file.
    pub fn rank_block(&self, rank: u32, field: usize) -> (u64, u64) {
        assert!((self.r0..self.r1).contains(&rank), "rank not covered");
        let f = &self.fields[field];
        let idx = (rank - self.r0) as usize;
        let off: u64 = f.sizes[..idx].iter().sum();
        (f.data_off + off, f.sizes[idx])
    }

    /// Total size this file should have (header + all field data).
    pub fn expected_file_size(&self) -> u64 {
        self.header_len
            + self
                .fields
                .iter()
                .map(|f| f.sizes.iter().sum::<u64>())
                .sum::<u64>()
    }

    /// Total size after commit: header + data + the checksum footer the
    /// committing rank appends (one region per field).
    pub fn expected_committed_size(&self) -> u64 {
        self.expected_file_size() + footer_len(self.fields.len())
    }
}

fn sizes_encoding_len(layout: &DataLayout, field: usize, r0: u32, r1: u32) -> u64 {
    // kind byte + either one u64 or (r1-r0) u64s.
    match &layout.fields()[field].sizes {
        crate::layout::FieldSizes::Uniform(_) => 1 + 8,
        crate::layout::FieldSizes::PerRank(_) => 1 + 8 * u64::from(r1 - r0),
    }
}

/// Length in bytes of the master header of a file covering ranks `r0..r1`.
pub fn header_len(layout: &DataLayout, app: &str, r0: u32, r1: u32) -> u64 {
    let mut n = 4 + 4 + 8 + 8 + 4 + 4 + 4; // magic..r1
    n += 2 + app.len() as u64;
    n += 4; // nfields
    for (fi, f) in layout.fields().iter().enumerate() {
        n += 2 + f.name.len() as u64;
        n += sizes_encoding_len(layout, fi, r0, r1);
        n += 8; // data_off
    }
    n + 4 // crc
}

/// Absolute offset of field `field`'s data region in a file covering
/// `r0..r1`.
pub fn field_data_off(layout: &DataLayout, app: &str, r0: u32, r1: u32, field: usize) -> u64 {
    header_len(layout, app, r0, r1)
        + (0..field)
            .map(|g| layout.field_total(g, r0, r1))
            .sum::<u64>()
}

/// Total size of a file covering `r0..r1` (header + data).
pub fn file_size(layout: &DataLayout, app: &str, r0: u32, r1: u32) -> u64 {
    header_len(layout, app, r0, r1) + layout.data_total(r0, r1)
}

/// Encode the master header of a file covering `r0..r1`.
pub fn encode_header(layout: &DataLayout, app: &str, step: u64, r0: u32, r1: u32) -> Vec<u8> {
    let hlen = header_len(layout, app, r0, r1);
    let mut out = Vec::with_capacity(hlen as usize);
    let cap = out.capacity();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&hlen.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&layout.nranks().to_le_bytes());
    out.extend_from_slice(&r0.to_le_bytes());
    out.extend_from_slice(&r1.to_le_bytes());
    out.extend_from_slice(&(app.len() as u16).to_le_bytes());
    out.extend_from_slice(app.as_bytes());
    out.extend_from_slice(&(layout.nfields() as u32).to_le_bytes());
    for (fi, f) in layout.fields().iter().enumerate() {
        out.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
        out.extend_from_slice(f.name.as_bytes());
        match &f.sizes {
            crate::layout::FieldSizes::Uniform(sz) => {
                out.push(0);
                out.extend_from_slice(&sz.to_le_bytes());
            }
            crate::layout::FieldSizes::PerRank(v) => {
                out.push(1);
                for &sz in &v[r0 as usize..r1 as usize] {
                    out.extend_from_slice(&sz.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&field_data_off(layout, app, r0, r1, fi).to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(out.len() as u64, hlen);
    debug_assert_eq!(out.capacity(), cap, "header_len pre-sized exactly");
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.buf.len() {
            return Err(FormatError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FormatError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Parse a master header from the start of `bytes` (which may extend past
/// the header).
pub fn decode_header(bytes: &[u8]) -> Result<FileHeader, FormatError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.u32()? != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let hlen = c.u64()?;
    if hlen as usize > bytes.len() || hlen < 4 {
        return Err(FormatError::Truncated);
    }
    let body = &bytes[..hlen as usize - 4];
    let stored_crc = u32::from_le_bytes(
        bytes[hlen as usize - 4..hlen as usize]
            .try_into()
            .expect("len 4"),
    );
    if crc32(body) != stored_crc {
        return Err(FormatError::CrcMismatch);
    }
    let step = c.u64()?;
    let nranks_total = c.u32()?;
    let r0 = c.u32()?;
    let r1 = c.u32()?;
    if r0 >= r1 || r1 > nranks_total {
        return Err(FormatError::Inconsistent(format!(
            "rank range [{r0},{r1}) of {nranks_total}"
        )));
    }
    let app_len = c.u16()? as usize;
    let app = String::from_utf8(c.take(app_len)?.to_vec())
        .map_err(|_| FormatError::Inconsistent("app name not UTF-8".into()))?;
    let nfields = c.u32()? as usize;
    let covered = (r1 - r0) as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name_len = c.u16()? as usize;
        let name = String::from_utf8(c.take(name_len)?.to_vec())
            .map_err(|_| FormatError::Inconsistent("field name not UTF-8".into()))?;
        let kind = c.u8()?;
        let sizes = match kind {
            0 => vec![c.u64()?; covered],
            1 => {
                let mut v = Vec::with_capacity(covered);
                for _ in 0..covered {
                    v.push(c.u64()?);
                }
                v
            }
            k => return Err(FormatError::Inconsistent(format!("size kind {k}"))),
        };
        let data_off = c.u64()?;
        fields.push(ParsedField {
            name,
            sizes,
            data_off,
        });
    }
    if c.pos + 4 != hlen as usize {
        return Err(FormatError::Inconsistent(format!(
            "header length {} != declared {}",
            c.pos + 4,
            hlen
        )));
    }
    Ok(FileHeader {
        step,
        nranks_total,
        r0,
        r1,
        app,
        fields,
        header_len: hlen,
    })
}

/// Deterministic filler byte for [`rbio_plan::DataRef::Synthetic`] writes,
/// as a function of absolute file offset. Shared by the real executor and
/// verification tools so synthetic checkpoints are checkable.
#[inline]
pub fn synthetic_byte(file_offset: u64) -> u8 {
    // Cheap odd-multiplier hash; any byte-valued mixing works.
    (file_offset.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

/// Build each rank's in-memory payload for a plan: the header blob (if the
/// rank owns a file) followed by its packed field blocks, filled by
/// `fill(rank, field, buf)`.
pub fn materialize_payloads(
    plan: &CheckpointPlan,
    mut fill: impl FnMut(u32, usize, &mut [u8]),
) -> Vec<Vec<u8>> {
    let layout = &plan.layout;
    let mut out = Vec::with_capacity(layout.nranks() as usize);
    for rank in 0..layout.nranks() {
        let meta = &plan.payload_meta[rank as usize];
        let total = meta.header_len + layout.rank_payload_bytes(rank);
        let mut buf = vec![0u8; total as usize];
        if let Some(file_idx) = meta.header_for_file {
            let pf = &plan.plan_files[file_idx];
            let hdr = encode_header(layout, &plan.app, plan.step, pf.r0, pf.r1);
            debug_assert_eq!(hdr.len() as u64, meta.header_len);
            buf[..hdr.len()].copy_from_slice(&hdr);
        }
        for f in 0..layout.nfields() {
            let off = (meta.header_len + layout.payload_field_off(rank, f)) as usize;
            let len = layout.field_bytes(rank, f) as usize;
            fill(rank, f, &mut buf[off..off + len]);
        }
        out.push(buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{FieldSizes, FieldSpec};

    fn layout() -> DataLayout {
        DataLayout::new(
            4,
            vec![
                FieldSpec {
                    name: "Ex".into(),
                    sizes: FieldSizes::Uniform(100),
                },
                FieldSpec {
                    name: "Hy".into(),
                    sizes: FieldSizes::PerRank(vec![1, 2, 3, 4]),
                },
            ],
        )
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32c_known_vector() {
        // Standard test vector: CRC32C("123456789") = 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn scalar_oracles_match_known_vectors() {
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32c_scalar(b"123456789"), 0xE306_9283);
        assert_eq!(crc32_scalar(b""), 0);
        assert_eq!(crc32c_scalar(b""), 0);
    }

    #[test]
    fn sliced_crc_equals_scalar_on_all_tail_lengths() {
        // Every length 0..=64 exercises the empty input, sub-block inputs
        // (1–7 bytes), and each 1–15 byte tail after full 8-byte blocks.
        let data: Vec<u8> = (0..64u64).map(synthetic_byte).collect();
        for len in 0..=data.len() {
            let s = &data[..len];
            assert_eq!(crc32(s), crc32_scalar(s), "crc32 len {len}");
            assert_eq!(crc32c(s), crc32c_scalar(s), "crc32c len {len}");
        }
        // Misaligned starts: slice-by-8 reads u32s from arbitrary offsets.
        for start in 0..8 {
            let s = &data[start..];
            assert_eq!(crc32(s), crc32_scalar(s), "crc32 start {start}");
            assert_eq!(crc32c(s), crc32c_scalar(s), "crc32c start {start}");
        }
    }

    #[test]
    fn footer_round_trip_and_corruption() {
        let regions = vec![
            FooterRegion {
                off: 0,
                len: 100,
                crc32c: 0xDEAD_BEEF,
            },
            FooterRegion {
                off: 100,
                len: 7,
                crc32c: 1,
            },
        ];
        let enc = encode_footer(&regions);
        assert_eq!(enc.len() as u64, footer_len(2));
        assert_eq!(decode_footer(&enc).unwrap(), regions);
        // Flip a byte anywhere: footer CRC catches it.
        let mut bad = enc.clone();
        bad[10] ^= 0xFF;
        assert!(decode_footer(&bad).is_err());
        // Truncation is detected.
        assert!(decode_footer(&enc[..enc.len() - 1]).is_err());
        // Wrong magic.
        let mut wrong = enc;
        wrong[0] ^= 1;
        assert_eq!(decode_footer(&wrong), Err(FormatError::BadMagic));
    }

    #[test]
    fn committed_size_adds_footer() {
        let l = layout();
        let h = encode_header(&l, "x", 0, 0, 4);
        let parsed = decode_header(&h).unwrap();
        assert_eq!(
            parsed.expected_committed_size(),
            parsed.expected_file_size() + footer_len(2)
        );
    }

    #[test]
    fn header_round_trip() {
        let l = layout();
        let h = encode_header(&l, "nekcem", 7, 1, 3);
        assert_eq!(h.len() as u64, header_len(&l, "nekcem", 1, 3));
        let parsed = decode_header(&h).unwrap();
        assert_eq!(parsed.step, 7);
        assert_eq!(parsed.nranks_total, 4);
        assert_eq!((parsed.r0, parsed.r1), (1, 3));
        assert_eq!(parsed.app, "nekcem");
        assert_eq!(parsed.fields.len(), 2);
        assert_eq!(parsed.fields[0].name, "Ex");
        assert_eq!(parsed.fields[0].sizes, vec![100, 100]);
        assert_eq!(parsed.fields[1].sizes, vec![2, 3]);
        assert_eq!(parsed.header_len, h.len() as u64);
        // Data offsets: field 0 right after header, field 1 after 200 bytes.
        assert_eq!(parsed.fields[0].data_off, h.len() as u64);
        assert_eq!(parsed.fields[1].data_off, h.len() as u64 + 200);
        assert_eq!(parsed.expected_file_size(), file_size(&l, "nekcem", 1, 3));
    }

    #[test]
    fn rank_block_offsets() {
        let l = layout();
        let h = encode_header(&l, "x", 0, 0, 4);
        let parsed = decode_header(&h).unwrap();
        let (off0, len0) = parsed.rank_block(0, 0);
        assert_eq!((off0, len0), (parsed.header_len, 100));
        let (off, len) = parsed.rank_block(2, 1);
        assert_eq!(len, 3);
        assert_eq!(off, parsed.fields[1].data_off + 1 + 2);
    }

    #[test]
    fn detects_corruption() {
        let l = layout();
        let mut h = encode_header(&l, "x", 0, 0, 4);
        assert!(decode_header(&h).is_ok());
        let mid = h.len() / 2;
        h[mid] ^= 0xFF;
        assert_eq!(decode_header(&h), Err(FormatError::CrcMismatch));
    }

    #[test]
    fn detects_truncation_and_bad_magic() {
        let l = layout();
        let h = encode_header(&l, "x", 0, 0, 4);
        assert_eq!(decode_header(&h[..10]), Err(FormatError::Truncated));
        let mut bad = h.clone();
        bad[0] ^= 1;
        assert_eq!(decode_header(&bad), Err(FormatError::BadMagic));
        let mut badv = h;
        badv[4] = 99;
        assert!(matches!(
            decode_header(&badv),
            Err(FormatError::BadVersion(_)) | Err(FormatError::CrcMismatch)
        ));
    }

    #[test]
    fn header_parses_with_trailing_data() {
        let l = layout();
        let mut h = encode_header(&l, "x", 0, 0, 4);
        h.extend_from_slice(&[0xAB; 500]);
        let parsed = decode_header(&h).unwrap();
        assert_eq!(parsed.app, "x");
    }

    #[test]
    fn synthetic_byte_is_deterministic_and_varied() {
        assert_eq!(synthetic_byte(42), synthetic_byte(42));
        let distinct: std::collections::HashSet<u8> = (0..256u64).map(synthetic_byte).collect();
        assert!(
            distinct.len() > 100,
            "filler should vary: {}",
            distinct.len()
        );
    }
}
