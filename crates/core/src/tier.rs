//! Multi-tier checkpoint staging: a node-local fast tier with an
//! asynchronous drain engine.
//!
//! The paper's rbIO strategy hides PFS latency behind dedicated writer
//! ranks; this module goes one hop further and hides the *writers'* I/O
//! behind node-local storage, the way burst buffers do on machines a
//! generation after the Blue Gene/P. A checkpoint generation is:
//!
//! 1. **Staged** — writer ranks append extents into a pre-allocated,
//!    mmap'd slab file ([`SlabPool`]) at memory speed. The append hot
//!    path is zero-alloc: an atomic bump pointer plus one `memcpy`.
//!    From the application's point of view the checkpoint is over as
//!    soon as staging finishes — this is the *perceived* bandwidth.
//! 2. **Drained** — a background [`TierEngine`] thread flushes each
//!    staged generation down the hierarchy (local → optional burst
//!    directory → PFS) through the shared flush pool in
//!    [`crate::pipeline`], then publishes the generation's manifest and
//!    commit marker. Only then is the generation *durable*.
//! 3. **Retained** — the most recent drained generations stay resident
//!    in the local tier so a restart can be served at memory speed
//!    (restore-from-nearest-tier); older slabs are evicted.
//!
//! Tier loss is a first-class fault: [`TierEngine::lose_local`] drops
//! the local tier. Files that already reached the burst tier are
//! re-read (and footer-verified) from there and the generation degrades
//! instead of aborting — mirroring how writer failover degrades a
//! generation in [`crate::failover`]. Files that never left the local
//! tier make the generation fail; earlier durable generations remain
//! restorable.
//!
//! Everything here is instrumented with [`crate::sched`] points and
//! events so the `rbio-check` harness can race drains against restores
//! and tier losses deterministically.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rbio_plan::Rank;
use rbio_profile::counters;

use crate::buf::Bytes;
use crate::commit;
use crate::fault::FaultPlan;
use crate::pipeline::{FlushJob, FlushPool, WriterTuning};
use crate::sched::{self, Point, TierId};

/// Pipeline rank the drain engine registers under. Out of the plan's
/// rank space so rank-targeted fault plans never hit the drain by
/// accident (`Rank::MAX` itself is the manager's commit identity).
pub const DRAIN_RANK: Rank = Rank::MAX - 1;

/// Tier staging errors.
#[derive(Debug)]
pub enum TierError {
    /// The pre-allocated slab ran out of room mid-append.
    StageFull {
        /// Slab capacity in bytes.
        capacity: usize,
        /// Size of the append that did not fit.
        requested: usize,
    },
    /// The generation can never become durable (e.g. the local tier was
    /// lost before its extents reached the burst or PFS tier).
    Failed {
        /// The failed generation step.
        step: u64,
        /// What went wrong.
        reason: String,
    },
    /// The drain engine shut down before the generation drained.
    Shutdown,
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::StageFull {
                capacity,
                requested,
            } => write!(
                f,
                "local tier slab full: {requested} byte append exceeds {capacity} byte capacity"
            ),
            TierError::Failed { step, reason } => {
                write!(f, "generation {step} cannot become durable: {reason}")
            }
            TierError::Shutdown => write!(f, "tier drain engine shut down"),
        }
    }
}

impl std::error::Error for TierError {}

/// Configuration for the local staging tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Directory holding the node-local slab files.
    pub local_dir: PathBuf,
    /// Pre-allocated slab size per generation. Staging a generation
    /// larger than this fails with [`TierError::StageFull`].
    pub slab_capacity: usize,
    /// Optional intermediate burst-buffer directory. With one set, a
    /// drained file is committed there before the PFS hop, and tier
    /// loss mid-drain can recover from it.
    pub burst_dir: Option<PathBuf>,
    /// Drained generations kept resident in the local tier for
    /// restore-from-nearest-tier. Older slabs are evicted.
    pub retain: usize,
    /// fsync burst and PFS files as they are committed.
    pub fsync: bool,
}

impl TierConfig {
    /// Stage into `local_dir` with a 16 MiB slab, no burst tier, one
    /// retained generation, fsync on.
    pub fn new(local_dir: impl Into<PathBuf>) -> TierConfig {
        TierConfig {
            local_dir: local_dir.into(),
            slab_capacity: 16 << 20,
            burst_dir: None,
            retain: 1,
            fsync: true,
        }
    }

    /// Set the per-generation slab capacity.
    pub fn slab_capacity(mut self, bytes: usize) -> TierConfig {
        self.slab_capacity = bytes;
        self
    }

    /// Route drains through an intermediate burst-buffer directory.
    pub fn burst_dir(mut self, dir: impl Into<PathBuf>) -> TierConfig {
        self.burst_dir = Some(dir.into());
        self
    }

    /// Set how many drained generations stay resident locally.
    pub fn retain(mut self, n: usize) -> TierConfig {
        self.retain = n;
        self
    }

    /// Toggle fsync on drained files.
    pub fn fsync(mut self, on: bool) -> TierConfig {
        self.fsync = on;
        self
    }
}

/// A staged extent's location inside a [`SlabPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabRef {
    /// Byte offset inside the slab.
    pub off: usize,
    /// Extent length.
    pub len: usize,
}

/// A pre-allocated append-only slab, mmap'd from a node-local file when
/// the platform allows (Linux x86_64/aarch64 via raw syscalls — the
/// workspace is dependency-free, so no libc), else heap-backed.
///
/// The hot path is [`SlabPool::append`]: one `fetch_add` to reserve a
/// disjoint window, one `memcpy` into it. No allocation, no lock.
pub struct SlabPool {
    ptr: *mut u8,
    capacity: usize,
    head: AtomicUsize,
    mapped: bool,
    path: Option<PathBuf>,
    _file: Option<File>,
}

// SAFETY: `append` hands out disjoint `[off, off+len)` windows via the
// atomic bump pointer, so concurrent appends never alias. Readers only
// reach a window through a `SlabRef` published after the filling memcpy
// (in practice via the `TierStage` mutex), which orders the bytes.
unsafe impl Send for SlabPool {}
unsafe impl Sync for SlabPool {}

impl SlabPool {
    /// Create (and pre-allocate) a slab file of `capacity` bytes at
    /// `path`, mapping it shared read-write. Falls back to a heap slab
    /// (keeping the file for eviction bookkeeping) if mmap fails.
    pub fn create(path: &Path, capacity: usize) -> io::Result<SlabPool> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.set_len(capacity as u64)?;
        if let Some(ptr) = sys::mmap_shared(&f, capacity) {
            return Ok(SlabPool {
                ptr,
                capacity,
                head: AtomicUsize::new(0),
                mapped: true,
                path: Some(path.to_path_buf()),
                _file: Some(f),
            });
        }
        Ok(Self::heap(capacity, Some(path.to_path_buf()), Some(f)))
    }

    /// A purely in-memory slab (tests, platforms without a local disk).
    pub fn anonymous(capacity: usize) -> SlabPool {
        Self::heap(capacity, None, None)
    }

    fn heap(capacity: usize, path: Option<PathBuf>, file: Option<File>) -> SlabPool {
        let slab = vec![0u8; capacity].into_boxed_slice();
        SlabPool {
            ptr: Box::into_raw(slab).cast::<u8>(),
            capacity,
            head: AtomicUsize::new(0),
            mapped: false,
            path,
            _file: file,
        }
    }

    /// Reserve a window and copy `data` into it. `None` when the slab
    /// is full — the caller surfaces [`TierError::StageFull`].
    pub fn append(&self, data: &[u8]) -> Option<SlabRef> {
        let off = self.head.fetch_add(data.len(), Ordering::Relaxed);
        let end = off.checked_add(data.len())?;
        if end > self.capacity {
            return None;
        }
        // SAFETY: `[off, end)` is in-bounds (checked above) and
        // exclusively ours (bump pointer), and `data` cannot overlap a
        // mapping we own.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(off), data.len());
        }
        Some(SlabRef {
            off,
            len: data.len(),
        })
    }

    /// Read back a staged extent.
    pub fn slice(&self, r: SlabRef) -> &[u8] {
        assert!(
            r.off
                .checked_add(r.len)
                .is_some_and(|end| end <= self.capacity),
            "slab ref out of bounds"
        );
        // SAFETY: bounds asserted; the window was fully written before
        // its SlabRef was published.
        unsafe { std::slice::from_raw_parts(self.ptr.add(r.off), r.len) }
    }

    /// Bytes appended so far (saturated at capacity).
    pub fn used(&self) -> usize {
        self.head.load(Ordering::Relaxed).min(self.capacity)
    }

    /// Total pre-allocated capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing slab file, when one exists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

impl std::fmt::Debug for SlabPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabPool")
            .field("capacity", &self.capacity)
            .field("used", &self.used())
            .field("mapped", &self.mapped)
            .field("path", &self.path)
            .finish()
    }
}

impl Drop for SlabPool {
    fn drop(&mut self) {
        if self.mapped {
            // SAFETY: `ptr` is the live mapping of exactly `capacity`
            // bytes established in `create`.
            unsafe { sys::munmap_slab(self.ptr, self.capacity) };
        } else {
            // SAFETY: rebuilding the boxed slice leaked in `heap`.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    self.ptr,
                    self.capacity,
                )));
            }
        }
    }
}

/// Raw mmap/munmap, gated to the platforms the inline asm covers.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_RW: usize = 0x1 | 0x2; // PROT_READ | PROT_WRITE
    const MAP_SHARED: usize = 0x01;

    /// Map the whole of `f` shared read-write. `None` on any kernel
    /// error (the caller falls back to a heap slab).
    pub fn mmap_shared(f: &File, len: usize) -> Option<*mut u8> {
        if len == 0 {
            return None;
        }
        let fd = f.as_raw_fd() as isize as usize;
        // SAFETY: a fresh shared file mapping at a kernel-chosen
        // address aliases nothing in this process.
        let ret = unsafe { mmap(0, len, PROT_RW, MAP_SHARED, fd, 0) };
        if (-4095..0).contains(&(ret as isize)) {
            None
        } else {
            Some(ret as *mut u8)
        }
    }

    /// Unmap a mapping returned by [`mmap_shared`].
    ///
    /// # Safety
    /// `ptr` must be a live mapping of exactly `len` bytes with no
    /// outstanding borrows.
    pub unsafe fn munmap_slab(ptr: *mut u8, len: usize) {
        // SAFETY: caller contract above.
        unsafe {
            munmap(ptr as usize, len);
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret;
        // SAFETY: mmap touches no memory the compiler knows about; all
        // six args are passed per the x86_64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9usize => ret, // __NR_mmap
                in("rdi") addr,
                in("rsi") len,
                in("rdx") prot,
                in("r10") flags,
                in("r8") fd,
                in("r9") off,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret;
        // SAFETY: munmap of a region this module mapped.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11usize => ret, // __NR_munmap
                in("rdi") addr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret;
        // SAFETY: as the x86_64 variant, per the aarch64 syscall ABI.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x2") prot,
                in("x3") flags,
                in("x4") fd,
                in("x5") off,
                in("x8") 222usize, // __NR_mmap
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn munmap(addr: usize, len: usize) -> usize {
        let ret;
        // SAFETY: munmap of a region this module mapped.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x8") 215usize, // __NR_munmap
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub fn mmap_shared(_f: &std::fs::File, _len: usize) -> Option<*mut u8> {
        None
    }

    /// No mapped slabs exist on this platform.
    ///
    /// # Safety
    /// Never called (nothing maps), but keeps the call site uniform.
    pub unsafe fn munmap_slab(_ptr: *mut u8, _len: usize) {}
}

#[derive(Default)]
struct StagedFile {
    extents: Vec<(u64, SlabRef)>,
    sealed_size: Option<u64>,
}

/// One generation's worth of staged checkpoint files in the local tier.
///
/// Executors append extents as the plan's `WriteAt` ops run and seal
/// each file at its `Commit` op; the drain engine assembles the sealed
/// images and flushes them down the hierarchy.
pub struct TierStage {
    step: u64,
    pool: Arc<SlabPool>,
    files: Mutex<HashMap<String, StagedFile>>,
}

impl TierStage {
    /// Stage generation `step` into `pool`.
    pub fn new(step: u64, pool: Arc<SlabPool>) -> TierStage {
        TierStage {
            step,
            pool,
            files: Mutex::new(HashMap::new()),
        }
    }

    /// The generation this stage holds.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The backing slab.
    pub fn pool(&self) -> &Arc<SlabPool> {
        &self.pool
    }

    /// Append one extent of `name` at logical file `offset`.
    pub fn append(&self, name: &str, offset: u64, data: &[u8]) -> Result<(), TierError> {
        let r = self.pool.append(data).ok_or(TierError::StageFull {
            capacity: self.pool.capacity(),
            requested: data.len(),
        })?;
        counters::add_tier_staged_bytes(data.len() as u64);
        counters::add_bytes_copied(data.len() as u64);
        let mut g = self.files.lock().expect("tier stage lock");
        g.entry(name.to_string())
            .or_default()
            .extents
            .push((offset, r));
        drop(g);
        sched::emit(|| sched::Event::TierExtentStaged {
            step: self.step,
            path_hash: sched::fingerprint([name.as_bytes()]),
        });
        Ok(())
    }

    /// Seal `name` at its logical (pre-footer) `size`: no more extents
    /// will arrive; the file is ready to drain.
    pub fn seal_file(&self, name: &str, size: u64) {
        let mut g = self.files.lock().expect("tier stage lock");
        g.entry(name.to_string()).or_default().sealed_size = Some(size);
    }

    /// The sealed files of this generation, `(name, logical size)`,
    /// sorted by name for deterministic drain order.
    pub fn sealed_files(&self) -> Vec<(String, u64)> {
        let g = self.files.lock().expect("tier stage lock");
        let mut v: Vec<(String, u64)> = g
            .iter()
            .filter_map(|(n, f)| f.sealed_size.map(|s| (n.clone(), s)))
            .collect();
        v.sort();
        v
    }

    /// Total staged bytes across all files.
    pub fn staged_bytes(&self) -> u64 {
        let g = self.files.lock().expect("tier stage lock");
        g.values()
            .flat_map(|f| f.extents.iter())
            .map(|(_, r)| r.len as u64)
            .sum()
    }

    /// Assemble the full logical image of a sealed file from its
    /// staged extents (unstaged regions read as zero, matching what a
    /// sparse PFS write would produce). `None` for unknown or unsealed
    /// names.
    pub fn assemble(&self, name: &str) -> Option<Vec<u8>> {
        let g = self.files.lock().expect("tier stage lock");
        let f = g.get(name)?;
        let size = usize::try_from(f.sealed_size?).ok()?;
        let mut img = vec![0u8; size];
        for &(off, r) in &f.extents {
            let off = usize::try_from(off).ok()?;
            let end = off.checked_add(r.len)?;
            if end > size {
                return None;
            }
            img[off..end].copy_from_slice(self.pool.slice(r));
        }
        Some(img)
    }
}

impl std::fmt::Debug for TierStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierStage")
            .field("step", &self.step)
            .field("staged_bytes", &self.staged_bytes())
            .finish()
    }
}

/// What a completed drain produced, handed to the publish callback.
#[derive(Debug)]
pub struct DrainOutcome {
    /// The drained generation.
    pub step: u64,
    /// Files whose PFS copy was sourced from the burst tier because the
    /// local tier was lost mid-drain. Non-empty ⇒ degraded generation.
    pub recovered_from_burst: Vec<String>,
    /// Logical bytes flushed to the PFS tier.
    pub drained_bytes: u64,
}

/// Publishes a drained generation's manifest and commit marker.
pub type PublishFn = Box<dyn FnOnce(&DrainOutcome) -> io::Result<()> + Send>;

/// One generation's drain work order.
pub struct DrainJob {
    /// The generation step.
    pub step: u64,
    /// Its staged extents.
    pub stage: Arc<TierStage>,
    /// Final PFS directory the files are published into.
    pub pfs_dir: PathBuf,
    /// Optional intermediate burst directory.
    pub burst_dir: Option<PathBuf>,
    /// fsync burst/PFS files as they are committed.
    pub fsync: bool,
    /// Publishes the generation's manifest and commit marker once every
    /// file is on the PFS; the generation is durable only after this
    /// returns `Ok`.
    pub publish: PublishFn,
}

impl std::fmt::Debug for DrainJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainJob")
            .field("step", &self.step)
            .field("pfs_dir", &self.pfs_dir)
            .field("burst_dir", &self.burst_dir)
            .finish()
    }
}

enum Msg {
    Drain(DrainJob),
    Shutdown,
}

#[derive(Default)]
struct EngineState {
    durable: BTreeSet<u64>,
    failed: BTreeMap<u64, String>,
    retained: VecDeque<Arc<TierStage>>,
    stopped: bool,
}

struct EngineShared {
    state: Mutex<EngineState>,
    cv: Condvar,
    lost_local: AtomicBool,
    lose_between_hops: AtomicBool,
}

/// The background drain engine: one thread, FIFO over generations,
/// flushing each through the shared [`FlushPool`].
pub struct TierEngine {
    tx: Mutex<Option<Sender<Msg>>>,
    shared: Arc<EngineShared>,
    join: Mutex<Option<JoinHandle<()>>>,
    alive: Arc<AtomicBool>,
    retain: usize,
}

impl TierEngine {
    /// Spawn the drain thread, keeping `retain` drained generations
    /// resident in the local tier.
    pub fn new(retain: usize) -> Arc<TierEngine> {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState::default()),
            cv: Condvar::new(),
            lost_local: AtomicBool::new(false),
            lose_between_hops: AtomicBool::new(false),
        });
        let alive = Arc::new(AtomicBool::new(true));
        let (s2, a2) = (Arc::clone(&shared), Arc::clone(&alive));
        sched::spawning();
        let join = std::thread::Builder::new()
            .name("rbio-tier-drain".into())
            .spawn(move || {
                sched::register("tier-drain");
                drain_loop(&s2, &rx, retain);
                a2.store(false, Ordering::Release);
                sched::unregister();
            })
            .expect("spawn tier drain engine");
        Arc::new(TierEngine {
            tx: Mutex::new(Some(tx)),
            shared,
            join: Mutex::new(Some(join)),
            alive,
            retain,
        })
    }

    /// Drained generations kept resident.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Queue a generation for draining (FIFO).
    pub fn submit(&self, job: DrainJob) {
        let g = self.tx.lock().expect("tier engine tx lock");
        let sent = g
            .as_ref()
            .is_some_and(|tx| tx.send(Msg::Drain(job)).is_ok());
        drop(g);
        if !sent {
            // Engine already shut down: surface as a failed generation
            // rather than hanging wait_durable.
            let mut s = self.shared.state.lock().expect("tier engine lock");
            s.stopped = true;
            self.shared.cv.notify_all();
        }
    }

    /// Block until generation `step` is durable on the PFS tier.
    pub fn wait_durable(&self, step: u64) -> Result<(), TierError> {
        let mut g = self.shared.state.lock().expect("tier engine lock");
        loop {
            if g.durable.contains(&step) {
                return Ok(());
            }
            if let Some(reason) = g.failed.get(&step) {
                return Err(TierError::Failed {
                    step,
                    reason: reason.clone(),
                });
            }
            if g.stopped {
                return Err(TierError::Shutdown);
            }
            if sched::registered() {
                drop(g);
                sched::yield_now(Point::TierDurableWait);
                g = self.shared.state.lock().expect("tier engine lock");
            } else {
                g = self.shared.cv.wait(g).expect("tier engine lock");
            }
        }
    }

    /// Simulate losing the node-local tier: retained slabs are gone and
    /// in-flight drains must source from the burst tier or fail.
    pub fn lose_local(&self) {
        apply_local_loss(&self.shared);
    }

    /// Arm a deterministic mid-drain loss: the drain thread applies
    /// [`TierEngine::lose_local`] exactly between the burst hop and the
    /// PFS hop of the generation it processes next.
    pub fn lose_local_between_hops(&self) {
        self.shared.lose_between_hops.store(true, Ordering::Release);
    }

    /// Whether the local tier has been lost.
    pub fn local_lost(&self) -> bool {
        self.shared.lost_local.load(Ordering::Acquire)
    }

    /// Steps that have reached durability, ascending.
    pub fn durable_steps(&self) -> Vec<u64> {
        let g = self.shared.state.lock().expect("tier engine lock");
        g.durable.iter().copied().collect()
    }

    /// The newest drained generation still resident in the local tier.
    pub fn newest_retained(&self) -> Option<Arc<TierStage>> {
        let g = self.shared.state.lock().expect("tier engine lock");
        g.retained.back().cloned()
    }

    /// The resident stage for `step`, if retained.
    pub fn retained_stage(&self, step: u64) -> Option<Arc<TierStage>> {
        let g = self.shared.state.lock().expect("tier engine lock");
        g.retained.iter().find(|s| s.step() == step).cloned()
    }
}

impl std::fmt::Debug for TierEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.shared.state.lock().expect("tier engine lock");
        f.debug_struct("TierEngine")
            .field("retain", &self.retain)
            .field("durable", &g.durable)
            .field("failed", &g.failed.keys().collect::<Vec<_>>())
            .field("lost_local", &self.local_lost())
            .finish()
    }
}

impl Drop for TierEngine {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.lock().expect("tier engine tx lock").take() {
            tx.send(Msg::Shutdown).ok();
        }
        // Under a controlled scheduler a blocking join would wedge the
        // schedule; spin through the JoinWait point until the drain
        // thread has unhooked itself (same pattern as the executors).
        if sched::registered() {
            while self.alive.load(Ordering::Acquire) {
                sched::yield_now(Point::JoinWait);
            }
        }
        if let Some(j) = self.join.lock().expect("tier engine join lock").take() {
            j.join().ok();
        }
    }
}

fn apply_local_loss(shared: &EngineShared) {
    let was_lost = shared.lost_local.swap(true, Ordering::AcqRel);
    let mut g = shared.state.lock().expect("tier engine lock");
    for stage in g.retained.drain(..) {
        if let Some(p) = stage.pool().path() {
            std::fs::remove_file(p).ok();
        }
    }
    drop(g);
    if !was_lost {
        counters::add_tier_losses(1);
        sched::emit(|| sched::Event::TierLost {
            tier: TierId::Local,
        });
    }
    shared.cv.notify_all();
}

fn drain_loop(shared: &EngineShared, rx: &Receiver<Msg>, retain: usize) {
    loop {
        let msg = if sched::registered() {
            loop {
                match rx.try_recv() {
                    Ok(m) => break m,
                    Err(TryRecvError::Empty) => sched::yield_now(Point::TierDrainIdle),
                    Err(TryRecvError::Disconnected) => return finish(shared),
                }
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => return finish(shared),
            }
        };
        match msg {
            Msg::Shutdown => return finish(shared),
            Msg::Drain(job) => run_drain(shared, job, retain),
        }
    }
}

fn finish(shared: &EngineShared) {
    let mut g = shared.state.lock().expect("tier engine lock");
    g.stopped = true;
    drop(g);
    shared.cv.notify_all();
}

/// Read a committed burst copy back as a logical image: footer-verify,
/// then strip the footer. Never trusts an unverified burst file.
fn read_burst(path: &Path, size: u64) -> Result<Vec<u8>, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("burst copy {} unreadable: {e}", path.display()))?;
    if let Some(err) = commit::verify_committed(&bytes, size) {
        return Err(format!("burst copy {} corrupt: {err}", path.display()));
    }
    let mut img = bytes;
    img.truncate(size as usize);
    Ok(img)
}

/// Commit `img` at `path` via the tmp + footer + rename path so the
/// copy is torn-write detectable like any other checkpoint file.
fn write_committed(path: &Path, img: &[u8], fsync: bool) -> io::Result<()> {
    let tmp = commit::tmp_path(path);
    std::fs::write(&tmp, img)?;
    commit::commit_file(&tmp, path, img.len() as u64, fsync)
}

fn run_drain(shared: &EngineShared, job: DrainJob, retain: usize) {
    let DrainJob {
        step,
        stage,
        pfs_dir,
        burst_dir,
        fsync,
        publish,
    } = job;
    let files = stage.sealed_files();

    let outcome = (|| -> Result<DrainOutcome, String> {
        // Hop 1: local → burst. Every file lands as a committed copy so
        // the PFS hop can verify it before trusting it.
        if let Some(bdir) = burst_dir.as_deref() {
            std::fs::create_dir_all(bdir)
                .map_err(|e| format!("burst dir {}: {e}", bdir.display()))?;
            for (name, _size) in &files {
                let dst = bdir.join(name);
                if shared.lost_local.load(Ordering::Acquire) {
                    if dst.exists() {
                        continue; // an earlier pass already landed it
                    }
                    return Err(format!(
                        "local tier lost before {name} reached the burst tier"
                    ));
                }
                let img = stage
                    .assemble(name)
                    .ok_or_else(|| format!("{name} not sealed in local tier"))?;
                write_committed(&dst, &img, fsync)
                    .map_err(|e| format!("burst hop for {name}: {e}"))?;
                sched::emit(|| sched::Event::TierExtentDrained {
                    step,
                    tier: TierId::Burst,
                    path_hash: sched::fingerprint([name.as_bytes()]),
                });
            }
        }

        if shared.lose_between_hops.swap(false, Ordering::AcqRel) {
            apply_local_loss(shared);
        }

        // Hop 2: → PFS, through the shared flush pool so drain traffic
        // rides the same FIFO/retry/error-latching machinery as
        // foreground writers.
        let pool = FlushPool::current();
        let writer = pool.register(DRAIN_RANK, 2, FaultPlan::none(), WriterTuning::default());
        let mut recovered = Vec::new();
        let mut drained = 0u64;
        for (name, size) in &files {
            let (img, from_burst) = if shared.lost_local.load(Ordering::Acquire) {
                let bdir = burst_dir
                    .as_deref()
                    .ok_or_else(|| format!("local tier lost and no burst copy of {name}"))?;
                (read_burst(&bdir.join(name), *size)?, true)
            } else {
                let img = stage
                    .assemble(name)
                    .ok_or_else(|| format!("{name} not sealed in local tier"))?;
                (img, false)
            };
            if from_burst {
                recovered.push(name.clone());
            }
            let final_path = pfs_dir.join(name);
            let tmp = commit::tmp_path(&final_path);
            let f = Arc::new(File::create(&tmp).map_err(|e| format!("PFS tmp for {name}: {e}"))?);
            drained += img.len() as u64;
            writer
                .submit(FlushJob::Write {
                    file: Arc::clone(&f),
                    offset: 0,
                    data: Bytes::from_vec(img),
                })
                .map_err(|e| format!("PFS write for {name}: {e}"))?;
            writer
                .submit(FlushJob::Close {
                    file: f,
                    fsync: false,
                })
                .map_err(|e| format!("PFS close for {name}: {e}"))?;
            writer
                .submit(FlushJob::Commit {
                    tmp,
                    final_path,
                    size: *size,
                    fsync,
                })
                .map_err(|e| format!("PFS commit for {name}: {e}"))?;
        }
        writer
            .drain()
            .map_err(|e| format!("PFS drain for step {step}: {e}"))?;
        counters::add_tier_drained_bytes(drained);
        for (name, _) in &files {
            sched::emit(|| sched::Event::TierExtentDrained {
                step,
                tier: TierId::Pfs,
                path_hash: sched::fingerprint([name.as_bytes()]),
            });
        }
        Ok(DrainOutcome {
            step,
            recovered_from_burst: recovered,
            drained_bytes: drained,
        })
    })();

    let published = outcome.and_then(|out| {
        publish(&out)
            .map(|()| out)
            .map_err(|e| format!("publish for step {step}: {e}"))
    });

    match published {
        Ok(_out) => {
            sched::emit(|| sched::Event::TierDurable { step });
            let mut g = shared.state.lock().expect("tier engine lock");
            g.durable.insert(step);
            if !shared.lost_local.load(Ordering::Acquire) {
                g.retained.push_back(stage);
                while g.retained.len() > retain {
                    if let Some(old) = g.retained.pop_front() {
                        if let Some(p) = old.pool().path() {
                            std::fs::remove_file(p).ok();
                        }
                    }
                }
            }
            drop(g);
            shared.cv.notify_all();
        }
        Err(reason) => {
            let mut g = shared.state.lock().expect("tier engine lock");
            g.failed.insert(step, reason);
            drop(g);
            shared.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_appends_are_disjoint_and_readable() {
        let pool = SlabPool::anonymous(1 << 16);
        let a = pool.append(b"hello").unwrap();
        let b = pool.append(b"world!").unwrap();
        assert_eq!(pool.slice(a), b"hello");
        assert_eq!(pool.slice(b), b"world!");
        assert_eq!(pool.used(), 11);
    }

    #[test]
    fn slab_full_append_fails_cleanly() {
        let pool = SlabPool::anonymous(8);
        assert!(pool.append(&[1; 8]).is_some());
        assert!(pool.append(&[2; 1]).is_none());
        // The failed reservation must not have corrupted earlier data.
        assert_eq!(pool.slice(SlabRef { off: 0, len: 8 }), &[1; 8]);
    }

    #[test]
    fn file_backed_slab_roundtrips() {
        let dir = std::env::temp_dir().join("rbio-tier-slab-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("step.slab");
        let pool = SlabPool::create(&path, 4096).unwrap();
        let r = pool.append(b"persisted").unwrap();
        assert_eq!(pool.slice(r), b"persisted");
        assert_eq!(pool.path(), Some(path.as_path()));
        drop(pool);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_assembles_sealed_images_with_holes_zeroed() {
        let stage = TierStage::new(7, Arc::new(SlabPool::anonymous(1 << 12)));
        stage.append("f", 0, b"head").unwrap();
        stage.append("f", 8, b"tail").unwrap();
        stage.seal_file("f", 12);
        let img = stage.assemble("f").unwrap();
        assert_eq!(&img[0..4], b"head");
        assert_eq!(&img[4..8], &[0; 4]);
        assert_eq!(&img[8..12], b"tail");
        assert!(stage.assemble("missing").is_none());
        assert_eq!(stage.sealed_files(), vec![("f".to_string(), 12)]);
    }

    #[test]
    fn engine_drains_stage_to_pfs_byte_identically() {
        let dir = std::env::temp_dir().join("rbio-tier-engine-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let stage = Arc::new(TierStage::new(1, Arc::new(SlabPool::anonymous(1 << 16))));
        let body: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        stage.append("ck.rbio", 0, &body).unwrap();
        stage.seal_file("ck.rbio", body.len() as u64);

        let engine = TierEngine::new(1);
        let published = Arc::new(AtomicBool::new(false));
        let p2 = Arc::clone(&published);
        engine.submit(DrainJob {
            step: 1,
            stage: Arc::clone(&stage),
            pfs_dir: dir.clone(),
            burst_dir: None,
            fsync: false,
            publish: Box::new(move |out| {
                assert_eq!(out.drained_bytes, 1000);
                assert!(out.recovered_from_burst.is_empty());
                p2.store(true, Ordering::Release);
                Ok(())
            }),
        });
        engine.wait_durable(1).unwrap();
        assert!(published.load(Ordering::Acquire));
        let bytes = std::fs::read(dir.join("ck.rbio")).unwrap();
        assert!(commit::verify_committed(&bytes, 1000).is_none());
        assert_eq!(&bytes[..1000], &body[..]);
        assert_eq!(engine.durable_steps(), vec![1]);
        assert!(engine.newest_retained().is_some_and(|s| s.step() == 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tier_loss_mid_drain_recovers_from_burst() {
        let dir = std::env::temp_dir().join("rbio-tier-loss-test");
        std::fs::remove_dir_all(&dir).ok();
        let pfs = dir.join("pfs");
        let burst = dir.join("burst");
        std::fs::create_dir_all(&pfs).unwrap();
        let stage = Arc::new(TierStage::new(2, Arc::new(SlabPool::anonymous(1 << 16))));
        stage.append("ck.rbio", 0, &[0xAB; 512]).unwrap();
        stage.seal_file("ck.rbio", 512);

        let engine = TierEngine::new(1);
        engine.lose_local_between_hops();
        engine.submit(DrainJob {
            step: 2,
            stage,
            pfs_dir: pfs.clone(),
            burst_dir: Some(burst.clone()),
            fsync: false,
            publish: Box::new(|out| {
                assert_eq!(out.recovered_from_burst, vec!["ck.rbio".to_string()]);
                Ok(())
            }),
        });
        engine.wait_durable(2).unwrap();
        assert!(engine.local_lost());
        // Nothing retained after a loss, but the PFS copy is whole.
        assert!(engine.newest_retained().is_none());
        let bytes = std::fs::read(pfs.join("ck.rbio")).unwrap();
        assert!(commit::verify_committed(&bytes, 512).is_none());
        assert_eq!(&bytes[..512], &[0xAB; 512][..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tier_loss_without_burst_fails_the_generation() {
        let dir = std::env::temp_dir().join("rbio-tier-loss-noburst-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let stage = Arc::new(TierStage::new(3, Arc::new(SlabPool::anonymous(1 << 12))));
        stage.append("ck.rbio", 0, &[1; 64]).unwrap();
        stage.seal_file("ck.rbio", 64);

        let engine = TierEngine::new(1);
        engine.lose_local_between_hops();
        engine.submit(DrainJob {
            step: 3,
            stage,
            pfs_dir: dir.clone(),
            burst_dir: None,
            fsync: false,
            publish: Box::new(|_| panic!("must not publish a lost generation")),
        });
        match engine.wait_durable(3) {
            Err(TierError::Failed { step: 3, .. }) => {}
            other => panic!("expected failed generation, got {other:?}"),
        }
        assert!(!dir.join("ck.rbio").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_honors_retain() {
        let dir = std::env::temp_dir().join("rbio-tier-evict-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let engine = TierEngine::new(1);
        for step in 1..=3u64 {
            let slab_path = dir.join(format!("step{step}.slab"));
            let pool = Arc::new(SlabPool::create(&slab_path, 4096).unwrap());
            let stage = Arc::new(TierStage::new(step, pool));
            stage.append("ck.rbio", 0, &[step as u8; 32]).unwrap();
            stage.seal_file("ck.rbio", 32);
            engine.submit(DrainJob {
                step,
                stage,
                pfs_dir: dir.clone(),
                burst_dir: None,
                fsync: false,
                publish: Box::new(|_| Ok(())),
            });
            engine.wait_durable(step).unwrap();
        }
        assert!(engine.newest_retained().is_some_and(|s| s.step() == 3));
        assert!(engine.retained_stage(1).is_none());
        assert!(engine.retained_stage(2).is_none());
        // Evicted slab files are deleted; the retained one survives.
        assert!(!dir.join("step1.slab").exists());
        assert!(!dir.join("step2.slab").exists());
        assert!(dir.join("step3.slab").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
