//! Multi-tenant checkpoint service: many concurrent checkpoint/restore
//! sessions multiplexed over one explicitly-constructed [`FlushPool`].
//!
//! The paper's rbIO strategy exists because many clients contending for
//! a shared filesystem collapse without coordination. This module is the
//! production analogue at service scale: tenants open *sessions*, and
//! the service decides (a) whether a session may start at all
//! (admission control — bounded in-flight sessions, a bounded FIFO
//! queue, and a typed [`ServiceError::Rejected`] beyond that), (b) when
//! each admitted session's next chunk may move (weighted fair-share
//! bandwidth arbitration, the gpfs fair-shared-pipe model extended to
//! tenant weights), and (c) who goes first under contention
//! ([`QosClass::LatencySensitive`] restores preempt
//! [`QosClass::Throughput`] checkpoints at chunk grant points).
//!
//! The service owns its pool instead of relying on the process-global
//! one — constructing a [`CheckpointService`] with `install_pool` routes
//! the legacy [`FlushPool::global`] shim and [`FlushPool::current`]
//! through this pool, which is what actually fixes the stale-global
//! reconfiguration bug at its root: reconfiguration is re-installation.
//!
//! Every admission decision and per-tenant byte moved is charged to the
//! zero-alloc counters in [`rbio_profile::counters`], which also keep a
//! live ring-buffered time series for observability.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rbio_profile::counters;

use crate::buf::{BufPool, Bytes};
use crate::fault::FaultPlan;
use crate::pipeline::{FlushJob, FlushPool, PipelineError, WriterHandle, WriterTuning};
use crate::sched::{self, Point};

/// Futile polls a controlled (rbio-check) run allows in the admission
/// and grant wait loops before the typed timeout surfaces — the
/// deterministic analogue of the wall-clock deadlines.
pub(crate) const CHECK_SERVICE_POLL_BUDGET: u32 = 4000;

/// Fixed-point scale for virtual time: one byte at weight `WEIGHT_SCALE`
/// costs one vtime unit, so `cost = bytes * WEIGHT_SCALE / weight`.
const WEIGHT_SCALE: u64 = 64;

/// Quality-of-service class of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosClass {
    /// Restore-style traffic: a waiter of this class preempts
    /// `Throughput` sessions at the next chunk grant point.
    LatencySensitive,
    /// Checkpoint-style traffic: yields to latency-sensitive waiters.
    Throughput,
}

/// A tenant identity as the service schedules it.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Stable tenant id (hashes to a counter slot, see
    /// [`counters::tenant_slot`]).
    pub id: u64,
    /// Fair-share weight (≥ 1): bandwidth under contention is split in
    /// proportion to weights.
    pub weight: u32,
    /// Scheduling class for this tenant's sessions.
    pub qos: QosClass,
}

impl TenantSpec {
    /// An equal-weight throughput tenant.
    pub fn new(id: u64) -> Self {
        TenantSpec {
            id,
            weight: 1,
            qos: QosClass::Throughput,
        }
    }

    /// Replace the fair-share weight (clamped to ≥ 1).
    pub fn weight(mut self, w: u32) -> Self {
        self.weight = w.max(1);
        self
    }

    /// Replace the QoS class.
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory all session files live under (one subdirectory per
    /// tenant).
    pub base_dir: PathBuf,
    /// Flush worker threads in the service-owned pool.
    pub pool_threads: usize,
    /// Outstanding background jobs per session writer (≥ 1).
    pub pipeline_depth: u32,
    /// Sessions allowed in flight at once; the `max_inflight + 1`-th
    /// session queues.
    pub max_inflight: usize,
    /// Sessions allowed to wait in the admission queue; beyond this the
    /// outcome is a typed [`ServiceError::Rejected`].
    pub queue_depth: usize,
    /// Fair-share grant quantum in bytes: sessions move at most this
    /// many bytes per arbitration turn, so preemption latency is bounded
    /// by one quantum.
    pub quantum: u64,
    /// Deadline for a queued session to be admitted.
    pub admit_timeout: Duration,
    /// Deadline for one chunk's bandwidth grant.
    pub grant_timeout: Duration,
    /// fsync session files before publishing them.
    pub fsync: bool,
    /// Install the service pool as the process pool, routing
    /// [`FlushPool::current`] and the legacy [`FlushPool::global`] shim
    /// through it (uninstalled again when the service drops). Off by
    /// default so embedded services (tests) don't steal the pool from
    /// unrelated concurrent work.
    pub install_pool: bool,
}

impl ServiceConfig {
    /// Defaults: 2 pool threads, depth 2, 8 in flight, 64 queued, 256
    /// KiB quantum, 2 s deadlines, no fsync, not installed.
    pub fn new(base_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            base_dir: base_dir.into(),
            pool_threads: 2,
            pipeline_depth: 2,
            max_inflight: 8,
            queue_depth: 64,
            quantum: 256 << 10,
            admit_timeout: Duration::from_secs(2),
            grant_timeout: Duration::from_secs(2),
            fsync: false,
            install_pool: false,
        }
    }

    /// Set pool threads (≥ 1).
    pub fn pool_threads(mut self, n: usize) -> Self {
        self.pool_threads = n.max(1);
        self
    }

    /// Set per-writer pipeline depth (≥ 1).
    pub fn pipeline_depth(mut self, d: u32) -> Self {
        self.pipeline_depth = d.max(1);
        self
    }

    /// Set admission bounds: `inflight` concurrent sessions, `queued`
    /// waiting beyond that.
    pub fn admission(mut self, inflight: usize, queued: usize) -> Self {
        self.max_inflight = inflight.max(1);
        self.queue_depth = queued;
        self
    }

    /// Set the fair-share grant quantum in bytes (≥ 1).
    pub fn quantum(mut self, bytes: u64) -> Self {
        self.quantum = bytes.max(1);
        self
    }

    /// Set both wait deadlines.
    pub fn timeouts(mut self, admit: Duration, grant: Duration) -> Self {
        self.admit_timeout = admit;
        self.grant_timeout = grant;
        self
    }

    /// Install the service pool process-wide for the service's lifetime.
    pub fn install_pool(mut self) -> Self {
        self.install_pool = true;
        self
    }
}

/// A typed service failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission refused outright: in-flight sessions and the waiting
    /// queue are both at capacity. The caller is expected to back off
    /// and retry — nothing was queued on its behalf.
    Rejected {
        /// Tenant that was refused.
        tenant: u64,
        /// In-flight sessions at refusal time.
        inflight: usize,
        /// Queued sessions at refusal time.
        queued: usize,
    },
    /// A queued session was not admitted within the deadline.
    AdmitTimeout {
        /// Tenant whose session timed out.
        tenant: u64,
        /// How long it waited.
        waited: Duration,
    },
    /// A chunk's bandwidth grant did not arrive within the deadline.
    GrantTimeout {
        /// Tenant whose grant timed out.
        tenant: u64,
        /// How long it waited.
        waited: Duration,
    },
    /// The session's background writer failed (first error latched).
    Pipeline(PipelineError),
    /// A foreground file operation failed.
    Io(io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                tenant,
                inflight,
                queued,
            } => write!(
                f,
                "tenant {tenant}: admission rejected ({inflight} in flight, {queued} queued)"
            ),
            ServiceError::AdmitTimeout { tenant, waited } => {
                write!(f, "tenant {tenant}: not admitted within {waited:?}")
            }
            ServiceError::GrantTimeout { tenant, waited } => {
                write!(f, "tenant {tenant}: no bandwidth grant within {waited:?}")
            }
            ServiceError::Pipeline(e) => write!(f, "session writer: {e}"),
            ServiceError::Io(e) => write!(f, "session i/o: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PipelineError> for ServiceError {
    fn from(e: PipelineError) -> Self {
        ServiceError::Pipeline(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// How an admitted session got in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Capacity was free; the session started immediately.
    Admitted,
    /// The session waited in the bounded queue first.
    Queued,
}

// ---------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------

struct GateState {
    inflight: usize,
    /// FIFO tickets: next to hand out, and next to serve.
    next_ticket: u64,
    serve_ticket: u64,
    /// Tickets whose owner gave up waiting; skipped when serving.
    abandoned: std::collections::HashSet<u64>,
}

impl GateState {
    fn queued(&self) -> usize {
        (self.next_ticket - self.serve_ticket) as usize - self.abandoned.len()
    }

    /// Skip over abandoned tickets so a timed-out waiter can't wedge the
    /// queue.
    fn skip_abandoned(&mut self) {
        while self.abandoned.remove(&self.serve_ticket) {
            self.serve_ticket += 1;
        }
    }
}

/// Bounded admission: at most `max_inflight` permits out, at most
/// `queue_depth` FIFO waiters, typed rejection beyond that.
pub struct AdmissionGate {
    m: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    queue_depth: usize,
    admit_timeout: Duration,
}

/// RAII permit for one in-flight session; releases on drop.
pub struct SessionPermit {
    gate: Arc<AdmissionGate>,
    /// How the permit was obtained.
    pub admission: Admission,
}

impl std::fmt::Debug for SessionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPermit")
            .field("admission", &self.admission)
            .finish_non_exhaustive()
    }
}

impl AdmissionGate {
    /// A gate allowing `max_inflight` concurrent permits and
    /// `queue_depth` waiters.
    pub fn new(max_inflight: usize, queue_depth: usize, admit_timeout: Duration) -> Arc<Self> {
        Arc::new(AdmissionGate {
            m: Mutex::new(GateState {
                inflight: 0,
                next_ticket: 0,
                serve_ticket: 0,
                abandoned: std::collections::HashSet::new(),
            }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
            admit_timeout,
        })
    }

    /// Acquire a permit for `tenant`, queueing (bounded, FIFO) when the
    /// service is at capacity.
    pub fn acquire(self: &Arc<Self>, tenant: u64) -> Result<SessionPermit, ServiceError> {
        let mut g = self.m.lock().expect("gate lock");
        g.skip_abandoned();
        if g.inflight < self.max_inflight && g.queued() == 0 {
            g.inflight += 1;
            counters::add_service_admitted(1);
            return Ok(SessionPermit {
                gate: Arc::clone(self),
                admission: Admission::Admitted,
            });
        }
        if g.queued() >= self.queue_depth {
            counters::add_service_rejected(1);
            return Err(ServiceError::Rejected {
                tenant,
                inflight: g.inflight,
                queued: g.queued(),
            });
        }
        let ticket = g.next_ticket;
        g.next_ticket += 1;
        counters::add_service_queued(1);
        let start = Instant::now();
        let controlled = sched::registered();
        let mut budget = CHECK_SERVICE_POLL_BUDGET;
        loop {
            if g.serve_ticket == ticket && g.inflight < self.max_inflight {
                g.serve_ticket += 1;
                g.skip_abandoned();
                g.inflight += 1;
                counters::add_service_admitted(1);
                self.cv.notify_all();
                return Ok(SessionPermit {
                    gate: Arc::clone(self),
                    admission: Admission::Queued,
                });
            }
            let timed_out = if controlled {
                if budget == 0 {
                    true
                } else {
                    budget -= 1;
                    drop(g);
                    sched::yield_now(Point::AdmitWait);
                    g = self.m.lock().expect("gate lock");
                    false
                }
            } else {
                let left = self
                    .admit_timeout
                    .saturating_sub(start.elapsed())
                    .min(Duration::from_millis(25));
                if left.is_zero() {
                    true
                } else {
                    g = self.cv.wait_timeout(g, left).expect("gate lock").0;
                    start.elapsed() >= self.admit_timeout
                        && !(g.serve_ticket == ticket && g.inflight < self.max_inflight)
                }
            };
            if timed_out {
                g.abandoned.insert(ticket);
                g.skip_abandoned();
                self.cv.notify_all();
                return Err(ServiceError::AdmitTimeout {
                    tenant,
                    waited: start.elapsed(),
                });
            }
        }
    }
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        let mut g = self.gate.m.lock().expect("gate lock");
        g.inflight -= 1;
        g.skip_abandoned();
        self.gate.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Weighted fair-share arbiter
// ---------------------------------------------------------------------

struct TenantSched {
    weight: u32,
    qos: QosClass,
    /// Weighted virtual time: grows by `bytes * WEIGHT_SCALE / weight`
    /// per grant, so heavier tenants accumulate vtime slower and are
    /// eligible more often — bandwidth splits in weight proportion.
    vtime: u64,
    /// Active sessions of this tenant (refcount for state retention).
    sessions: usize,
    /// Sessions of this tenant currently blocked in `grant`.
    waiting: usize,
}

struct FsState {
    tenants: HashMap<u64, TenantSched>,
    /// Latency-sensitive sessions currently blocked in `grant`; while
    /// nonzero, throughput sessions stay blocked (QoS preemption).
    lat_waiters: usize,
}

/// Weighted fair-share bandwidth arbiter over tenant virtual time — the
/// gpfs fair-shared-pipe model (every stream progresses, none overtakes
/// by more than a quantum) extended with per-tenant weights and QoS
/// preemption.
pub struct FairShare {
    m: Mutex<FsState>,
    cv: Condvar,
    /// Vtime slack a tenant may run ahead of the slowest waiter.
    quantum_v: u64,
    grant_timeout: Duration,
}

impl FairShare {
    /// An arbiter whose tenants may run at most `quantum` bytes (at
    /// weight 1) ahead of the slowest contender.
    pub fn new(quantum: u64, grant_timeout: Duration) -> Self {
        FairShare {
            m: Mutex::new(FsState {
                tenants: HashMap::new(),
                lat_waiters: 0,
            }),
            cv: Condvar::new(),
            quantum_v: quantum.max(1).saturating_mul(WEIGHT_SCALE),
            grant_timeout,
        }
    }

    /// Register one session of `tenant`. A tenant joining an ongoing
    /// contest starts at the present minimum vtime, not at zero — new
    /// arrivals get an equal share, not a retroactive credit.
    pub fn join(&self, tenant: &TenantSpec) {
        let mut g = self.m.lock().expect("fair-share lock");
        let floor = g
            .tenants
            .values()
            .filter(|t| t.sessions > 0)
            .map(|t| t.vtime)
            .min()
            .unwrap_or(0);
        let t = g.tenants.entry(tenant.id).or_insert(TenantSched {
            weight: tenant.weight.max(1),
            qos: tenant.qos,
            vtime: floor,
            sessions: 0,
            waiting: 0,
        });
        t.weight = tenant.weight.max(1);
        t.qos = tenant.qos;
        t.vtime = t.vtime.max(floor);
        t.sessions += 1;
    }

    /// Unregister one session of `tenant`.
    pub fn leave(&self, tenant_id: u64) {
        let mut g = self.m.lock().expect("fair-share lock");
        if let Some(t) = g.tenants.get_mut(&tenant_id) {
            t.sessions = t.sessions.saturating_sub(1);
            if t.sessions == 0 {
                g.tenants.remove(&tenant_id);
            }
        }
        self.cv.notify_all();
    }

    /// Block until `tenant` may move `bytes` more bytes, then charge
    /// them. Eligibility: the tenant's vtime is within one quantum of
    /// the slowest *waiting* contender, and no latency-sensitive session
    /// is waiting if this one is throughput-class.
    ///
    /// Every grant under contention parks at least one scheduling slice
    /// before deciding. Decisions are made among the set of sessions
    /// that currently *want* the pipe, so without the park two streams
    /// ping-ponging through instantaneous grants would never observe
    /// each other and fairness would silently degrade to FIFO. The park
    /// is the serialization point of the fair-shared pipe; a tenant
    /// with nothing in flight is excluded from the floor, so a dead or
    /// stalled session can never wedge healthy ones.
    pub fn grant(&self, tenant_id: u64, bytes: u64) -> Result<(), ServiceError> {
        let mut g = self.m.lock().expect("fair-share lock");
        let (qos, cost) = {
            let t = g.tenants.get(&tenant_id).expect("granted tenant joined");
            (
                t.qos,
                bytes.saturating_mul(WEIGHT_SCALE) / u64::from(t.weight),
            )
        };
        // Register as a waiter up front so concurrent grants contend.
        g.tenants
            .get_mut(&tenant_id)
            .expect("granted tenant joined")
            .waiting += 1;
        if qos == QosClass::LatencySensitive {
            g.lat_waiters += 1;
        }
        self.cv.notify_all();
        let leave_wait = |g: &mut FsState| {
            g.tenants.get_mut(&tenant_id).expect("joined").waiting -= 1;
            if qos == QosClass::LatencySensitive {
                g.lat_waiters -= 1;
            }
        };
        let start = Instant::now();
        let controlled = sched::registered();
        let mut budget = CHECK_SERVICE_POLL_BUDGET;
        let mut first = true;
        let mut counted_block = false;
        let mut counted_preempt = false;
        loop {
            // Uncontended fast path: sole joined tenant, no park needed.
            let must_park = !(first && g.tenants.len() == 1);
            first = false;
            if must_park {
                if !counted_block {
                    counted_block = true;
                    counters::add_service_throttle_waits(1);
                }
                if qos == QosClass::Throughput && g.lat_waiters > 0 && !counted_preempt {
                    // Parked behind a latency-sensitive waiter: a QoS
                    // preemption at a chunk grant point.
                    counted_preempt = true;
                    counters::add_service_preemptions(1);
                }
                let timed_out = if controlled {
                    if budget == 0 {
                        true
                    } else {
                        budget -= 1;
                        drop(g);
                        sched::yield_now(Point::GrantWait);
                        g = self.m.lock().expect("fair-share lock");
                        false
                    }
                } else {
                    let left = self.grant_timeout.saturating_sub(start.elapsed());
                    if left.is_zero() {
                        true
                    } else {
                        let slice = left.min(Duration::from_millis(25));
                        g = self.cv.wait_timeout(g, slice).expect("fair-share lock").0;
                        false
                    }
                };
                if timed_out {
                    leave_wait(&mut g);
                    self.cv.notify_all();
                    return Err(ServiceError::GrantTimeout {
                        tenant: tenant_id,
                        waited: start.elapsed(),
                    });
                }
            }
            // While a latency-sensitive session waits, throughput waiters
            // are frozen by the QoS gate; leaving their stale vtime in the
            // floor would wedge the latency stream one quantum later
            // (it waits on a vtime that can't advance — deadlock). The
            // floor spans only waiters eligible to run right now.
            let lat_only = g.lat_waiters > 0;
            let floor = g
                .tenants
                .values()
                .filter(|t| t.waiting > 0 && (!lat_only || t.qos == QosClass::LatencySensitive))
                .map(|t| t.vtime)
                .min();
            let me = g.tenants.get(&tenant_id).expect("granted tenant joined");
            let vtime_ok = match floor {
                // Compare against the slowest tenant that actually wants
                // bandwidth; an idle tenant must not block the pipe.
                Some(f) => me.vtime <= f.saturating_add(self.quantum_v),
                None => true,
            };
            let qos_ok = qos == QosClass::LatencySensitive || g.lat_waiters == 0;
            if vtime_ok && qos_ok {
                leave_wait(&mut g);
                let t = g.tenants.get_mut(&tenant_id).expect("joined");
                t.vtime = t.vtime.saturating_add(cost);
                self.cv.notify_all();
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

struct SvcInner {
    cfg: ServiceConfig,
    pool: Arc<FlushPool>,
    gate: Arc<AdmissionGate>,
    arbiter: FairShare,
    session_seq: AtomicU32,
    installed: bool,
}

/// A long-lived multi-tenant checkpoint service. See the module docs.
pub struct CheckpointService {
    inner: Arc<SvcInner>,
}

impl CheckpointService {
    /// Construct the service and its owned flush pool.
    pub fn new(cfg: ServiceConfig) -> Self {
        let pool = FlushPool::with_threads(cfg.pool_threads.max(1));
        let installed = cfg.install_pool;
        if installed {
            FlushPool::install(Arc::clone(&pool));
        }
        let gate = AdmissionGate::new(cfg.max_inflight, cfg.queue_depth, cfg.admit_timeout);
        let arbiter = FairShare::new(cfg.quantum, cfg.grant_timeout);
        CheckpointService {
            inner: Arc::new(SvcInner {
                cfg,
                pool,
                gate,
                arbiter,
                session_seq: AtomicU32::new(0),
                installed,
            }),
        }
    }

    /// The service-owned flush pool (for embedding executors:
    /// `FlushPool::install` it, or pass it explicitly).
    pub fn pool(&self) -> &Arc<FlushPool> {
        &self.inner.pool
    }

    /// Open a checkpoint session writing `name` for `tenant`. Admission
    /// is bounded — see [`ServiceError::Rejected`]; fairness and QoS
    /// apply per [`CheckpointSession::write`] chunk.
    pub fn checkpoint(
        &self,
        tenant: TenantSpec,
        name: &str,
    ) -> Result<CheckpointSession, ServiceError> {
        self.checkpoint_with_faults(tenant, name, FaultPlan::none())
    }

    /// [`CheckpointService::checkpoint`] with an injected fault plan on
    /// the session's background writer (the writer "rank" is the session
    /// id this returns via [`CheckpointSession::session_id`] — fault
    /// plans keyed on rank 0 hit every session writer registered as 0).
    pub fn checkpoint_with_faults(
        &self,
        tenant: TenantSpec,
        name: &str,
        faults: FaultPlan,
    ) -> Result<CheckpointSession, ServiceError> {
        let inner = &self.inner;
        let permit = inner.gate.acquire(tenant.id)?;
        let sid = inner.session_seq.fetch_add(1, Ordering::Relaxed);
        let dir = inner.cfg.base_dir.join(format!("tenant-{}", tenant.id));
        std::fs::create_dir_all(&dir).map_err(ServiceError::Io)?;
        let final_path = dir.join(name);
        let tmp_path = crate::commit::tmp_path(&final_path);
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&tmp_path)
            .map_err(ServiceError::Io)?;
        let writer = inner.pool.register(
            sid,
            inner.cfg.pipeline_depth,
            faults,
            WriterTuning::default(),
        );
        inner.arbiter.join(&tenant);
        Ok(CheckpointSession {
            inner: Arc::clone(inner),
            tenant,
            slot: counters::tenant_slot(tenant.id),
            sid,
            file: Arc::new(file),
            tmp_path,
            final_path,
            offset: 0,
            writer: Some(writer),
            _permit: permit,
        })
    }

    /// Open a restore session reading `name` for `tenant`. Reads go
    /// through the same admission gate and fair-share arbiter as writes
    /// (restore is how `LatencySensitive` tenants preempt checkpoints).
    pub fn restore(&self, tenant: TenantSpec, name: &str) -> Result<RestoreSession, ServiceError> {
        let inner = &self.inner;
        let permit = inner.gate.acquire(tenant.id)?;
        let path = inner
            .cfg
            .base_dir
            .join(format!("tenant-{}", tenant.id))
            .join(name);
        let file = File::open(&path).map_err(ServiceError::Io)?;
        let len = file.metadata().map_err(ServiceError::Io)?.len();
        inner.arbiter.join(&tenant);
        Ok(RestoreSession {
            inner: Arc::clone(inner),
            tenant,
            slot: counters::tenant_slot(tenant.id),
            file,
            len,
            offset: 0,
            _permit: permit,
        })
    }
}

impl Drop for CheckpointService {
    fn drop(&mut self) {
        // Uninstall only our own pool — a service must never tear down a
        // pool some newer service installed over it.
        if self.inner.installed {
            if let Some(p) = FlushPool::installed() {
                if Arc::ptr_eq(&p, &self.inner.pool) {
                    FlushPool::uninstall();
                }
            }
        }
        self.inner.pool.shutdown();
    }
}

/// An admitted checkpoint session: stream bytes in with
/// [`CheckpointSession::write`], publish atomically with
/// [`CheckpointSession::commit`].
pub struct CheckpointSession {
    inner: Arc<SvcInner>,
    tenant: TenantSpec,
    slot: usize,
    sid: u32,
    file: Arc<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    offset: u64,
    writer: Option<WriterHandle>,
    _permit: SessionPermit,
}

impl std::fmt::Debug for CheckpointSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSession")
            .field("tenant", &self.tenant.id)
            .field("sid", &self.sid)
            .field("offset", &self.offset)
            .finish_non_exhaustive()
    }
}

impl CheckpointSession {
    /// The session's writer id within the service pool.
    pub fn session_id(&self) -> u32 {
        self.sid
    }

    /// Whether admission was immediate or queued.
    pub fn admission(&self) -> Admission {
        self._permit.admission
    }

    /// Append `data` to the checkpoint stream. The write is chunked at
    /// the fair-share quantum: each chunk waits for this tenant's
    /// bandwidth grant (the preemption point for latency-sensitive
    /// restores), then rides the background flush pipeline.
    pub fn write(&mut self, data: &[u8]) -> Result<(), ServiceError> {
        let quantum = self.inner.cfg.quantum.max(1) as usize;
        for chunk in data.chunks(quantum) {
            self.inner
                .arbiter
                .grant(self.tenant.id, chunk.len() as u64)?;
            let buf: Bytes = BufPool::global().copy_from_slice(chunk);
            self.writer
                .as_ref()
                .expect("writer lives until commit")
                .submit(FlushJob::Write {
                    file: Arc::clone(&self.file),
                    offset: self.offset,
                    data: buf,
                })?;
            self.offset += chunk.len() as u64;
            counters::tenant_add_bytes_written(self.slot, chunk.len() as u64);
        }
        Ok(())
    }

    /// Drain the pipeline and atomically publish the file under its
    /// final name. Returns total bytes written.
    pub fn commit(mut self) -> Result<u64, ServiceError> {
        let res = self.commit_inner();
        match &res {
            Ok(_) => counters::add_service_completed(1),
            Err(_) => counters::add_service_failed(1),
        }
        counters::tenant_add_session_done(self.slot);
        counters::service_series_record(self.slot);
        res
    }

    fn commit_inner(&mut self) -> Result<u64, ServiceError> {
        let writer = self.writer.take().expect("commit runs once");
        writer.drain()?;
        drop(writer); // quiesce + free the pool slot
        if self.inner.cfg.fsync {
            self.file.sync_all().map_err(ServiceError::Io)?;
        }
        std::fs::rename(&self.tmp_path, &self.final_path).map_err(ServiceError::Io)?;
        Ok(self.offset)
    }
}

impl Drop for CheckpointSession {
    fn drop(&mut self) {
        self.inner.arbiter.leave(self.tenant.id);
        if self.writer.is_some() {
            // Aborted session: the writer drops (quiesce + free) and the
            // tmp file stays unpublished.
            counters::add_service_failed(1);
            counters::tenant_add_session_done(self.slot);
            counters::service_series_record(self.slot);
        }
    }
}

/// An admitted restore session: stream the checkpoint back with
/// [`RestoreSession::read`] / [`RestoreSession::read_all`].
pub struct RestoreSession {
    inner: Arc<SvcInner>,
    tenant: TenantSpec,
    slot: usize,
    file: File,
    len: u64,
    offset: u64,
    _permit: SessionPermit,
}

impl RestoreSession {
    /// Total bytes in the checkpoint being restored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the checkpoint is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read the next chunk into `buf`; returns bytes read (0 at EOF).
    /// Chunked at the quantum through the fair-share arbiter, like
    /// writes.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize, ServiceError> {
        let left = (self.len - self.offset) as usize;
        let quantum = self.inner.cfg.quantum.max(1) as usize;
        let n = buf.len().min(left).min(quantum);
        if n == 0 {
            return Ok(0);
        }
        self.inner.arbiter.grant(self.tenant.id, n as u64)?;
        self.file
            .read_exact_at(&mut buf[..n], self.offset)
            .map_err(ServiceError::Io)?;
        self.offset += n as u64;
        counters::tenant_add_bytes_read(self.slot, n as u64);
        Ok(n)
    }

    /// Read the whole remaining stream.
    pub fn read_all(&mut self) -> Result<Vec<u8>, ServiceError> {
        let mut out = vec![0u8; (self.len - self.offset) as usize];
        let mut done = 0;
        while done < out.len() {
            let n = self.read(&mut out[done..])?;
            done += n;
        }
        counters::add_service_completed(1);
        counters::tenant_add_session_done(self.slot);
        counters::service_series_record(self.slot);
        Ok(out)
    }
}

impl Drop for RestoreSession {
    fn drop(&mut self) {
        self.inner.arbiter.leave(self.tenant.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-svc-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn payload(tenant: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| (tenant as usize + i * 7) as u8).collect()
    }

    #[test]
    fn checkpoint_then_restore_round_trips() {
        let dir = tmpdir("roundtrip");
        let svc = CheckpointService::new(ServiceConfig::new(&dir).quantum(1 << 10));
        let t = TenantSpec::new(42);
        let data = payload(42, 10_000);
        let mut s = svc.checkpoint(t, "gen0.ckpt").expect("admit");
        assert_eq!(s.admission(), Admission::Admitted);
        s.write(&data).expect("write");
        assert_eq!(s.commit().expect("commit"), 10_000);
        // Tmp sibling must be gone, final file present.
        assert!(dir.join("tenant-42").join("gen0.ckpt").exists());
        let mut r = svc.restore(t, "gen0.ckpt").expect("admit restore");
        assert_eq!(r.len(), 10_000);
        assert_eq!(r.read_all().expect("read"), data);
    }

    #[test]
    fn admission_queues_then_rejects_beyond_capacity() {
        let dir = tmpdir("admission");
        let svc = CheckpointService::new(
            ServiceConfig::new(&dir)
                .admission(1, 1)
                .timeouts(Duration::from_millis(100), Duration::from_secs(2)),
        );
        let t = TenantSpec::new(1);
        let s0 = svc.checkpoint(t, "a.ckpt").expect("first session admits");
        // Second session queues and times out (nobody releases the slot),
        // third is rejected outright while the queue is occupied.
        let gate = Arc::clone(&svc.inner.gate);
        let waiter = std::thread::spawn(move || gate.acquire(9));
        // Give the waiter time to enter the queue.
        std::thread::sleep(Duration::from_millis(20));
        match svc.checkpoint(t, "c.ckpt") {
            Err(ServiceError::Rejected {
                inflight: 1,
                queued: 1,
                ..
            }) => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }
        match waiter.join().expect("waiter thread") {
            Err(ServiceError::AdmitTimeout { tenant: 9, .. }) => {}
            other => panic!("expected admit timeout, got {other:?}"),
        }
        // Releasing the permit un-wedges admission (abandoned ticket is
        // skipped, not served).
        drop(s0);
        let s = svc.checkpoint(t, "d.ckpt").expect("slot free again");
        drop(s);
    }

    #[test]
    fn queued_session_admits_when_slot_frees() {
        let dir = tmpdir("queued");
        let svc = Arc::new(CheckpointService::new(
            ServiceConfig::new(&dir).admission(1, 4),
        ));
        let t = TenantSpec::new(5);
        let s0 = svc.checkpoint(t, "a.ckpt").expect("admit");
        let svc2 = Arc::clone(&svc);
        let h = std::thread::spawn(move || {
            let mut s = svc2.checkpoint(t, "b.ckpt").expect("queued then admitted");
            assert_eq!(s.admission(), Admission::Queued);
            s.write(&payload(5, 256)).expect("write");
            s.commit().expect("commit")
        });
        std::thread::sleep(Duration::from_millis(30));
        s0.commit().expect("commit first");
        assert_eq!(h.join().expect("second session"), 256);
    }

    #[test]
    fn equal_weights_split_bandwidth_evenly() {
        // Two equal-weight tenants pushing identical streams through a
        // tiny quantum: neither may finish more than a quantum ahead in
        // *granted* bytes at any point. We approximate by checking both
        // complete and per-tenant counters agree.
        let dir = tmpdir("fair");
        let svc = Arc::new(CheckpointService::new(
            ServiceConfig::new(&dir).quantum(512).admission(8, 8),
        ));
        let bytes = 64 * 1024;
        let mut handles = Vec::new();
        for id in [60u64, 61] {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let t = TenantSpec::new(id);
                let mut s = svc.checkpoint(t, "gen.ckpt").expect("admit");
                s.write(&payload(id, bytes)).expect("write");
                s.commit().expect("commit")
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("tenant thread"), bytes as u64);
        }
        let a = counters::tenant_snapshot(counters::tenant_slot(60));
        let b = counters::tenant_snapshot(counters::tenant_slot(61));
        assert!(a.bytes_written >= bytes as u64);
        assert!(b.bytes_written >= bytes as u64);
    }

    #[test]
    fn weighted_tenant_gets_proportionally_more_grants() {
        // Drive the arbiter directly: tenant 2 has twice tenant 1's
        // weight; with both continuously waiting, after N grant rounds
        // the charged byte ratio must approach the weight ratio.
        let fs = Arc::new(FairShare::new(1024, Duration::from_secs(2)));
        let t1 = TenantSpec::new(71).weight(1);
        let t2 = TenantSpec::new(72).weight(2);
        fs.join(&t1);
        fs.join(&t2);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut counts = Vec::new();
        let mut handles = Vec::new();
        for t in [t1, t2] {
            let fs = Arc::clone(&fs);
            let done = Arc::clone(&done);
            let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
            counts.push(Arc::clone(&count));
            handles.push(std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if fs.grant(t.id, 1024).is_ok() {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(300));
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("grant thread");
        }
        fs.leave(t1.id);
        fs.leave(t2.id);
        let c1 = counts[0].load(Ordering::Relaxed) as f64;
        let c2 = counts[1].load(Ordering::Relaxed) as f64;
        assert!(c1 > 0.0 && c2 > 0.0, "both tenants must progress");
        let ratio = c2 / c1;
        assert!(
            (1.2..=3.3).contains(&ratio),
            "weight-2 tenant should get ~2x the grants, got {ratio:.2} ({c1} vs {c2})"
        );
    }

    #[test]
    fn latency_sensitive_restore_preempts_throughput_checkpoint() {
        let dir = tmpdir("qos");
        let svc = Arc::new(CheckpointService::new(
            ServiceConfig::new(&dir).quantum(256).admission(8, 8),
        ));
        // Seed a checkpoint for the restore to read.
        let lat = TenantSpec::new(81).qos(QosClass::LatencySensitive);
        let mut s = svc.checkpoint(lat, "seed.ckpt").expect("admit");
        s.write(&payload(81, 4096)).expect("write");
        s.commit().expect("commit");

        let before = counters::service_snapshot();
        let thr = TenantSpec::new(80); // Throughput
        let svc2 = Arc::clone(&svc);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut s = svc2.checkpoint(thr, "big.ckpt").expect("admit");
            let mut total = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                s.write(&payload(80, 2048)).expect("write");
                total += 2048;
            }
            s.commit().expect("commit");
            total
        });
        // Interleave restores while the checkpoint streams.
        std::thread::sleep(Duration::from_millis(20));
        for _ in 0..4 {
            let mut r = svc.restore(lat, "seed.ckpt").expect("admit restore");
            let got = r.read_all().expect("read");
            assert_eq!(got.len(), 4096);
        }
        stop.store(true, Ordering::Relaxed);
        assert!(writer.join().expect("writer") > 0);
        // The restore stream must have registered at least one QoS
        // preemption against the bulk writer.
        let delta = counters::service_snapshot().delta_since(&before);
        assert!(delta.completed >= 5);
        assert!(
            delta.preemptions >= 1,
            "latency restore never preempted the bulk checkpoint"
        );
    }

    #[test]
    fn dead_tenant_writer_does_not_fence_healthy_tenants() {
        // One tenant's background writer is fault-killed mid-stream; the
        // error latches on *its* session only, and a concurrent healthy
        // tenant commits untouched.
        let dir = tmpdir("isolate");
        let svc = Arc::new(CheckpointService::new(
            ServiceConfig::new(&dir).quantum(512).admission(8, 8),
        ));
        let sick = TenantSpec::new(90);
        let healthy = TenantSpec::new(91);
        // Open the sick session first so its writer deterministically
        // registers as session id 0 — the rank the fault plan targets.
        let faults = FaultPlan::none().kill_writer_after_bytes(0, 0);
        let mut s = svc
            .checkpoint_with_faults(sick, "dead.ckpt", faults)
            .expect("admit");
        assert_eq!(s.session_id(), 0);
        let svc2 = Arc::clone(&svc);
        let h = std::thread::spawn(move || {
            let mut s = svc2.checkpoint(healthy, "ok.ckpt").expect("admit");
            for _ in 0..16 {
                s.write(&payload(91, 1024)).expect("write");
            }
            s.commit().expect("healthy tenant must commit")
        });
        let mut failed = false;
        for _ in 0..16 {
            if s.write(&payload(90, 1024)).is_err() {
                failed = true;
                break;
            }
        }
        let failed = failed || s.commit().is_err();
        assert!(failed, "fault-killed writer must surface a typed error");
        assert_eq!(h.join().expect("healthy thread"), 16 * 1024);
        assert!(dir.join("tenant-91").join("ok.ckpt").exists());
        assert!(!dir.join("tenant-90").join("dead.ckpt").exists());
    }

    #[test]
    fn install_pool_routes_global_shim_through_service() {
        let dir = tmpdir("install");
        let svc = CheckpointService::new(ServiceConfig::new(&dir).pool_threads(3).install_pool());
        assert!(Arc::ptr_eq(&FlushPool::current(), svc.pool()));
        assert!(Arc::ptr_eq(&FlushPool::global(), svc.pool()));
        let pool = Arc::clone(svc.pool());
        drop(svc);
        // Dropping the service uninstalls and shuts down its pool.
        assert!(
            FlushPool::installed().is_none_or(|p| !Arc::ptr_eq(&p, &pool)),
            "dropped service left its pool installed"
        );
    }
}
