//! VTK legacy export.
//!
//! §III-B: NekCEM writes "the vtk legacy format, \[which\] can be directly
//! read by postprocessing tools for visualization using ParaView or VisIt"
//! — reusing checkpoint data for analysis is one of the paper's arguments
//! for application-level checkpointing. This module converts restored
//! checkpoint fields plus a mesh into a legacy `.vtk` unstructured-grid
//! file (ASCII or binary).
//!
//! Legacy binary VTK stores all numbers big-endian; both flavours are
//! supported and tested.

use std::io::{self, Write};
use std::path::Path;

/// An unstructured hexahedral mesh with point-centered fields.
#[derive(Debug, Clone, Default)]
pub struct VtkGrid {
    /// Point coordinates.
    pub points: Vec<[f64; 3]>,
    /// Hexahedral cells (8 point indices each, VTK_HEXAHEDRON ordering).
    pub hexes: Vec<[u32; 8]>,
    /// Named point-centered scalar fields; each must have one value per
    /// point.
    pub fields: Vec<(String, Vec<f64>)>,
}

/// Errors building/writing a grid.
#[derive(Debug)]
pub enum VtkError {
    /// A cell references a missing point.
    BadCell {
        /// Cell index.
        cell: usize,
        /// Offending point id.
        point: u32,
    },
    /// A field's length differs from the point count.
    BadFieldLen {
        /// Field name.
        name: String,
        /// Values present.
        got: usize,
        /// Points in the grid.
        want: usize,
    },
    /// Underlying I/O error.
    Io(io::Error),
}

impl std::fmt::Display for VtkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtkError::BadCell { cell, point } => {
                write!(f, "cell {cell} references missing point {point}")
            }
            VtkError::BadFieldLen { name, got, want } => {
                write!(f, "field {name}: {got} values for {want} points")
            }
            VtkError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for VtkError {}

impl From<io::Error> for VtkError {
    fn from(e: io::Error) -> Self {
        VtkError::Io(e)
    }
}

impl VtkGrid {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), VtkError> {
        let np = self.points.len();
        for (ci, hex) in self.hexes.iter().enumerate() {
            for &p in hex {
                if p as usize >= np {
                    return Err(VtkError::BadCell { cell: ci, point: p });
                }
            }
        }
        for (name, vals) in &self.fields {
            if vals.len() != np {
                return Err(VtkError::BadFieldLen {
                    name: name.clone(),
                    got: vals.len(),
                    want: np,
                });
            }
        }
        Ok(())
    }

    /// Write as a legacy `.vtk` file. `binary` selects the (big-endian)
    /// binary encoding; ASCII otherwise.
    pub fn write_legacy(
        &self,
        path: impl AsRef<Path>,
        title: &str,
        binary: bool,
    ) -> Result<(), VtkError> {
        self.validate()?;
        let f = std::fs::File::create(path)?;
        let mut w = io::BufWriter::new(f);
        self.write_to(&mut w, title, binary)?;
        w.flush()?;
        Ok(())
    }

    /// Write the legacy format to any writer (see [`VtkGrid::write_legacy`]).
    pub fn write_to(&self, w: &mut impl Write, title: &str, binary: bool) -> Result<(), VtkError> {
        // Master header — the paper's Fig. 2 "application name, file type
        // (binary or ASCII), application type, grid point coordinates,
        // cell numbering, and cell type".
        writeln!(w, "# vtk DataFile Version 3.0")?;
        writeln!(w, "{}", title.lines().next().unwrap_or("rbio checkpoint"))?;
        writeln!(w, "{}", if binary { "BINARY" } else { "ASCII" })?;
        writeln!(w, "DATASET UNSTRUCTURED_GRID")?;

        writeln!(w, "POINTS {} double", self.points.len())?;
        if binary {
            for p in &self.points {
                for &c in p {
                    w.write_all(&c.to_be_bytes())?;
                }
            }
            writeln!(w)?;
        } else {
            for p in &self.points {
                writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
            }
        }

        writeln!(w, "CELLS {} {}", self.hexes.len(), self.hexes.len() * 9)?;
        if binary {
            for hex in &self.hexes {
                w.write_all(&8i32.to_be_bytes())?;
                for &p in hex {
                    w.write_all(&(p as i32).to_be_bytes())?;
                }
            }
            writeln!(w)?;
        } else {
            for hex in &self.hexes {
                write!(w, "8")?;
                for &p in hex {
                    write!(w, " {p}")?;
                }
                writeln!(w)?;
            }
        }

        writeln!(w, "CELL_TYPES {}", self.hexes.len())?;
        if binary {
            for _ in &self.hexes {
                w.write_all(&12i32.to_be_bytes())?; // VTK_HEXAHEDRON
            }
            writeln!(w)?;
        } else {
            for _ in &self.hexes {
                writeln!(w, "12")?;
            }
        }

        if !self.fields.is_empty() {
            writeln!(w, "POINT_DATA {}", self.points.len())?;
            for (name, vals) in &self.fields {
                writeln!(w, "SCALARS {name} double 1")?;
                writeln!(w, "LOOKUP_TABLE default")?;
                if binary {
                    for &v in vals {
                        w.write_all(&v.to_be_bytes())?;
                    }
                    writeln!(w)?;
                } else {
                    for &v in vals {
                        writeln!(w, "{v}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Decode a little-endian f64 field block (the checkpoint on-disk layout)
/// into values. The byte length must be a multiple of 8.
pub fn decode_f64_field(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "field blocks are f64 arrays");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("len 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cube() -> VtkGrid {
        let points = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
        ];
        VtkGrid {
            fields: vec![("Ex".into(), (0..8).map(f64::from).collect())],
            hexes: vec![[0, 1, 2, 3, 4, 5, 6, 7]],
            points,
        }
    }

    #[test]
    fn ascii_output_structure() {
        let g = unit_cube();
        let mut buf = Vec::new();
        g.write_to(&mut buf, "one cube", false).expect("write");
        let s = String::from_utf8(buf).expect("ascii");
        assert!(s.starts_with("# vtk DataFile Version 3.0\none cube\nASCII\n"));
        assert!(s.contains("DATASET UNSTRUCTURED_GRID"));
        assert!(s.contains("POINTS 8 double"));
        assert!(s.contains("CELLS 1 9"));
        assert!(s.contains("\n12\n"));
        assert!(s.contains("POINT_DATA 8"));
        assert!(s.contains("SCALARS Ex double 1"));
        // All eight scalar values present.
        for v in 0..8 {
            assert!(s.contains(&format!("\n{v}\n")), "missing value {v}");
        }
    }

    #[test]
    fn binary_output_is_big_endian() {
        let g = unit_cube();
        let mut buf = Vec::new();
        g.write_to(&mut buf, "bin", true).expect("write");
        let s = String::from_utf8_lossy(&buf);
        assert!(s.contains("BINARY"));
        // Locate the POINTS section and check the second point's x == 1.0
        // in big-endian f64.
        let header_end = buf
            .windows(7)
            .position(|w| w == b"double\n")
            .expect("points header")
            + 7;
        let x1 = f64::from_be_bytes(buf[header_end + 24..header_end + 32].try_into().unwrap());
        assert_eq!(x1, 1.0);
    }

    #[test]
    fn validation_catches_bad_input() {
        let mut g = unit_cube();
        g.hexes[0][3] = 99;
        assert!(matches!(
            g.validate(),
            Err(VtkError::BadCell { point: 99, .. })
        ));
        let mut g = unit_cube();
        g.fields[0].1.pop();
        assert!(matches!(g.validate(), Err(VtkError::BadFieldLen { .. })));
        assert!(unit_cube().validate().is_ok());
    }

    #[test]
    fn decode_f64_round_trips() {
        let vals = [1.5f64, -2.25, 0.0, 1e-300];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(decode_f64_field(&bytes), vals);
    }

    #[test]
    fn file_write_works() {
        let path = std::env::temp_dir().join(format!("rbio-vtk-{}.vtk", std::process::id()));
        unit_cube().write_legacy(&path, "t", false).expect("write");
        let body = std::fs::read_to_string(&path).expect("read");
        assert!(body.contains("POINTS 8 double"));
        std::fs::remove_file(&path).ok();
    }
}
