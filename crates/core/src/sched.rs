//! Scheduling instrumentation points for deterministic concurrency testing.
//!
//! The runtime (pipeline flush pool, [`crate::exec`], [`crate::rt`]) is
//! instrumented with *yield points* (places where a thread may pause and
//! another may run) and *events* (facts about shared-state transitions).
//! In production nothing is installed and every hook is a single relaxed
//! atomic load. Under `rbio-check`, a controller implementing [`Sched`]
//! is installed process-wide: it serializes all registered threads onto a
//! single run token, picks the next thread at every yield point from a
//! seeded (or pinned) schedule, and feeds the event stream to invariant
//! checkers. See DESIGN.md §11.
//!
//! Contract for instrumented code:
//!
//! * Never call [`yield_now`] while holding a lock another registered
//!   thread may need — drop the lock, yield, re-acquire, re-check.
//! * [`emit`] may be called under a runtime lock (the controller lock is
//!   a leaf).
//! * Blocking waits must become drop-lock/yield/re-check loops when the
//!   calling thread [`is registered`](Sched::is_registered); unbounded
//!   waits use a waiting [`Point`] (see [`Point::is_wait`]), timed waits
//!   use a deterministic futile-poll budget instead of wall-clock time.
//! * A thread must be announced with [`spawning`] before it is spawned
//!   and must call [`register`] first thing and [`unregister`] last, so
//!   schedule decisions never depend on OS thread-startup timing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Where a thread is pausing. Waiting points ([`Point::is_wait`]) mean
/// the thread cannot make progress until another thread acts; a
/// bounded-preemption scheduler must switch threads there or it
/// livelocks. Progress points are optional preemption opportunities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Point {
    /// Writer pipeline full; waiting for a flush job to complete.
    SubmitFull,
    /// Waiting for a writer's pipeline to empty in `drain`.
    DrainWait,
    /// Waiting for a writer's pipeline to empty before freeing the slot.
    QuiesceWait,
    /// Flush worker waiting for a runnable writer.
    WorkerIdle,
    /// Waiting at a rank barrier.
    BarrierWait,
    /// Polling an empty message queue (futile-poll budgeted).
    RecvEmpty,
    /// Polling a full bounded message queue (send backpressure).
    SendFull,
    /// A session waiting in the service admission queue.
    AdmitWait,
    /// A session waiting for its fair-share bandwidth grant.
    GrantWait,
    /// Driver waiting for rank threads to finish.
    JoinWait,
    /// Tier drain engine waiting for a staged generation to drain.
    TierDrainIdle,
    /// Caller waiting for a generation to become durable on the PFS tier.
    TierDurableWait,
    /// A flush job was submitted.
    Submitted,
    /// A flush worker is about to execute a job.
    JobRun,
    /// Generic preemption opportunity (e.g. between plan ops).
    Progress,
}

impl Point {
    /// True for points where the yielding thread is blocked on another
    /// thread's progress (a scheduler must eventually run someone else).
    pub fn is_wait(self) -> bool {
        matches!(
            self,
            Point::SubmitFull
                | Point::DrainWait
                | Point::QuiesceWait
                | Point::WorkerIdle
                | Point::BarrierWait
                | Point::RecvEmpty
                | Point::SendFull
                | Point::AdmitWait
                | Point::GrantWait
                | Point::JoinWait
                | Point::TierDrainIdle
                | Point::TierDurableWait
        )
    }
}

/// A level of the checkpoint storage hierarchy, as carried by tier
/// events (see [`crate::tier`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierId {
    /// Node-local slab tier (memory-speed staging).
    Local,
    /// Intermediate burst-buffer tier.
    Burst,
    /// The parallel filesystem — the durable tier of record.
    Pfs,
}

/// The kind of a [`crate::pipeline::FlushJob`], as seen by checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Single buffered write.
    Write,
    /// Vectored write of several contiguous chunks.
    WriteV,
    /// File close (optionally fsynced).
    Close,
    /// Footer + rename publish.
    Commit,
}

/// Shared-state transitions reported to the installed scheduler. The
/// controller replays these through a shadow model of the pipeline to
/// check invariants at every scheduling point.
#[derive(Clone, Debug)]
pub enum Event {
    /// A program execution began. Execution-scoped invariants
    /// (exactly-once sends, exactly-once takeover, fencing, unique
    /// extent commits) reset at this boundary: a multi-generation run
    /// re-executes fresh plans whose op indices restart from zero.
    ExecStarted {
        /// Ranks in the program.
        nranks: u32,
    },
    /// A writer slot was registered to a handle.
    WriterRegistered {
        /// Pool slot index.
        wid: usize,
        /// Owning rank.
        rank: u32,
    },
    /// A writer slot was quiesced and freed.
    WriterFreed {
        /// Pool slot index.
        wid: usize,
    },
    /// A job entered a writer's queue. `hash` fingerprints the payload
    /// bytes at submit time (0 for non-write jobs).
    Submit {
        /// Pool slot index.
        wid: usize,
        /// Job kind.
        kind: JobKind,
        /// FNV-1a of the payload at submit time.
        hash: u64,
    },
    /// A pool thread claimed a writer from the runnable queue.
    /// `was_active` must always be false: true means two threads are
    /// draining one writer (the PR 2 double-enqueue race).
    WorkerClaim {
        /// Pool slot index.
        wid: usize,
        /// Writer was already being drained by another thread.
        was_active: bool,
    },
    /// A pool thread is about to run (or skip) a popped job. `hash`
    /// re-fingerprints the payload: a mismatch with the submit-time
    /// hash means the buffer was recycled and overwritten in flight.
    JobStart {
        /// Pool slot index.
        wid: usize,
        /// Per-writer execution sequence number (FIFO check).
        seq: u64,
        /// Job kind.
        kind: JobKind,
        /// FNV-1a of the payload at execution time.
        hash: u64,
        /// Job is skipped (latched error or freed slot).
        skipped: bool,
    },
    /// A job finished executing.
    JobEnd {
        /// Pool slot index.
        wid: usize,
        /// Job succeeded.
        ok: bool,
    },
    /// A write op was queued as an SQE in a completion-queue backend.
    /// `hash` fingerprints the payload buffers at queue time.
    SubmitQueued {
        /// Pool slot index.
        wid: usize,
        /// Ring user-data token, unique within the batch.
        udata: u64,
        /// FNV-1a of the payload at queue time.
        hash: u64,
    },
    /// A run of queued SQEs was submitted to the device as one batch.
    SubmitBatched {
        /// Pool slot index.
        wid: usize,
        /// SQEs in the batch.
        count: usize,
    },
    /// A completion was reaped. `hash` re-fingerprints the buffers the
    /// ring still holds for this SQE: a mismatch with the queue-time
    /// hash means the buffer was released (and possibly recycled)
    /// before its completion was reaped.
    CompletionReaped {
        /// Pool slot index.
        wid: usize,
        /// Ring user-data token of the reaped SQE.
        udata: u64,
        /// FNV-1a of the held payload at reap time.
        hash: u64,
        /// Completion carried no error.
        ok: bool,
    },
    /// A reaped completion was short (partial write); the remainder is
    /// being resubmitted as a continuation SQE.
    ShortWriteResubmit {
        /// Pool slot index.
        wid: usize,
        /// Ring user-data token of the short completion.
        udata: u64,
        /// Bytes delivered before the cut.
        written: u64,
        /// Bytes the op was supposed to deliver.
        expected: u64,
    },
    /// A writer latched its first error; later jobs must be skipped.
    ErrorLatched {
        /// Pool slot index.
        wid: usize,
    },
    /// A latched error was taken by `submit`/`drain` (pipeline reusable).
    ErrorCleared {
        /// Pool slot index.
        wid: usize,
    },
    /// A Commit job is actually executing (not skipped). Must never
    /// happen after `ErrorLatched` without an intervening
    /// `ErrorCleared`.
    CommitExecuted {
        /// Pool slot index.
        wid: usize,
    },
    /// A rank is entering a plan barrier; its pipeline must be quiescent.
    BarrierEnter {
        /// The rank.
        rank: u32,
    },
    /// A rank executed a `Send` plan op (delivered or fault-dropped).
    /// The same `(rank, op_index)` attempted twice is the PR 3
    /// fault-drop re-execution bug.
    SendAttempt {
        /// Sending rank.
        rank: u32,
        /// Destination rank.
        dst: u32,
        /// Index of the op in the rank's program.
        op_index: usize,
        /// The fault plan swallowed this send.
        dropped: bool,
    },
    /// `BufPool` was asked to recycle a buffer whose pointer is already
    /// in the free list (use-after-recycle / double-free of a slab).
    BufDoubleRecycle {
        /// Buffer base address.
        addr: usize,
    },
    /// A writer's progress stalled past the straggler deadline.
    WriterStraggling {
        /// The straggling writer.
        rank: u32,
    },
    /// A writer was declared dead and fenced; its extent is orphaned.
    WriterDead {
        /// The dead writer.
        rank: u32,
    },
    /// A successor claimed an orphaned extent for takeover. At most one
    /// claim per orphan (exactly-once takeover invariant).
    TakeoverClaim {
        /// The dead writer whose extent is taken over.
        orphan: u32,
        /// The surviving writer doing the takeover.
        successor: u32,
    },
    /// A fenced writer's commit attempt was refused.
    FenceRefused {
        /// The fenced writer.
        rank: u32,
    },
    /// An atomic file was committed (footer + rename). `path_hash`
    /// fingerprints the final path; two commits of one path is the
    /// double-commit hazard the fence exists to prevent, and a commit
    /// `by` a fenced rank is a fence violation.
    ExtentCommit {
        /// Rank that owned the extent in the plan.
        owner: u32,
        /// Rank that performed the commit (the owner, or its successor).
        by: u32,
        /// FNV-1a of the final path.
        path_hash: u64,
    },
    /// A checkpoint extent landed in the node-local slab tier.
    TierExtentStaged {
        /// Generation step the extent belongs to.
        step: u64,
        /// FNV-1a of the extent's final file name.
        path_hash: u64,
    },
    /// The drain engine finished flushing one staged file to `tier`.
    TierExtentDrained {
        /// Generation step the extent belongs to.
        step: u64,
        /// Tier the extent now lives on.
        tier: TierId,
        /// FNV-1a of the extent's final file name.
        path_hash: u64,
    },
    /// A generation's manifest + commit marker were published: it is
    /// durable on the PFS tier. Emitting this while any staged extent of
    /// the step has not been drained to [`TierId::Pfs`] is the
    /// durable-before-drained violation.
    TierDurable {
        /// The now-durable generation step.
        step: u64,
    },
    /// A storage tier was lost (simulated node-local media failure).
    TierLost {
        /// The lost tier.
        tier: TierId,
    },
    /// A restore was served from `tier` instead of the PFS.
    TierRestore {
        /// The restored generation step.
        step: u64,
        /// Tier that served the restore.
        tier: TierId,
    },
    /// A generation was published with fsync on: the API promised the
    /// caller this step is durable and will survive a crash.
    GenDurable {
        /// The promised-durable generation step.
        step: u64,
    },
    /// `restore_latest` returned a generation to the caller. Returning
    /// a step older than the newest [`Event::GenDurable`] promise is
    /// the fsynced-implies-recoverable violation.
    RestoreDone {
        /// The restored generation step.
        step: u64,
    },
}

/// A pluggable scheduler. The production scheduler is "no scheduler"
/// (every method a no-op); `rbio-check` installs a cooperative
/// single-token controller.
pub trait Sched: Send + Sync {
    /// True while a controlled run is active (drives `FlushPool::current`
    /// redirection and jitter/gate suppression).
    fn controlled(&self) -> bool {
        false
    }
    /// True if the calling thread is registered with the scheduler.
    fn is_registered(&self) -> bool {
        false
    }
    /// Announce that a controlled thread is about to be spawned.
    fn spawning(&self) {}
    /// Register the calling thread under `name`; may block until the
    /// scheduler grants it the run token.
    fn register(&self, name: &str) {
        let _ = name;
    }
    /// Remove the calling thread from scheduling (it is about to exit).
    fn unregister(&self) {}
    /// Pause at `point`; the scheduler picks who runs next.
    fn yield_point(&self, point: Point) {
        let _ = point;
    }
    /// Report a shared-state transition to the invariant checkers.
    fn emit(&self, event: Event) {
        let _ = event;
    }
}

/// The production scheduler: every hook is a no-op.
pub struct OsSched;

impl Sched for OsSched {}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SCHED: RwLock<Option<Arc<dyn Sched>>> = RwLock::new(None);

/// Install a scheduler process-wide (normally once, by the test
/// harness). Replaces any previous scheduler.
pub fn install(sched: Arc<dyn Sched>) {
    *SCHED.write().expect("sched lock") = Some(sched);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the installed scheduler (hooks become no-ops again).
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *SCHED.write().expect("sched lock") = None;
}

/// The installed scheduler, if any. Fast path: one relaxed load.
pub fn handle() -> Option<Arc<dyn Sched>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    SCHED.read().expect("sched lock").clone()
}

/// True while a controlled run is active.
pub fn controlled() -> bool {
    handle().is_some_and(|s| s.controlled())
}

/// True if the calling thread is registered with an installed scheduler.
pub fn registered() -> bool {
    handle().is_some_and(|s| s.is_registered())
}

/// Announce an about-to-spawn controlled thread (no-op in production).
pub fn spawning() {
    if let Some(s) = handle() {
        s.spawning();
    }
}

/// Register the calling thread (no-op in production).
pub fn register(name: &str) {
    if let Some(s) = handle() {
        s.register(name);
    }
}

/// Unregister the calling thread (no-op in production).
pub fn unregister() {
    if let Some(s) = handle() {
        s.unregister();
    }
}

/// Yield at `point` (no-op in production).
pub fn yield_now(point: Point) {
    if let Some(s) = handle() {
        s.yield_point(point);
    }
}

/// Emit an event to the invariant checkers. The closure is only invoked
/// while a controlled run is active, so fingerprint hashing costs
/// nothing in production.
pub fn emit(make: impl FnOnce() -> Event) {
    if let Some(s) = handle() {
        if s.controlled() {
            s.emit(make());
        }
    }
}

/// FNV-1a over a list of byte slices — the payload fingerprint used by
/// the use-after-recycle check. Not cryptographic; collision odds are
/// irrelevant at test scale.
pub fn fingerprint<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Fingerprint of a file path, as carried by [`Event::ExtentCommit`].
/// Only the final component is hashed: plan file names are unique
/// within a generation, while the parent directory is a per-run
/// scratch dir that would make event streams unreproducible across
/// replays.
pub fn path_fingerprint(p: &std::path::Path) -> u64 {
    let name = p.file_name().map(|n| n.to_string_lossy());
    fingerprint([name
        .as_deref()
        .unwrap_or_else(|| p.to_str().unwrap_or(""))
        .as_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_hooks_are_noops() {
        assert!(handle().is_none());
        assert!(!controlled());
        assert!(!registered());
        yield_now(Point::Progress);
        emit(|| unreachable!("emit closure must not run with no scheduler"));
    }

    #[test]
    fn wait_points_classified() {
        for p in [
            Point::SubmitFull,
            Point::DrainWait,
            Point::QuiesceWait,
            Point::WorkerIdle,
            Point::BarrierWait,
            Point::RecvEmpty,
            Point::SendFull,
            Point::AdmitWait,
            Point::GrantWait,
            Point::JoinWait,
            Point::TierDrainIdle,
            Point::TierDurableWait,
        ] {
            assert!(p.is_wait());
        }
        for p in [Point::Submitted, Point::JobRun, Point::Progress] {
            assert!(!p.is_wait());
        }
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_concat_consistent() {
        let ab = fingerprint([b"ab".as_slice()]);
        assert_eq!(fingerprint([b"a".as_slice(), b"b".as_slice()]), ab);
        assert_ne!(fingerprint([b"ba".as_slice()]), ab);
        assert_ne!(fingerprint([b"".as_slice()]), ab);
    }
}
