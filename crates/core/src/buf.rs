//! Zero-copy buffer layer for the checkpoint datapath.
//!
//! The paper's rbIO handoff is cheap because a worker's package is
//! allocated once and every later stage — channel, writer aggregation,
//! flush — works on the *same* bytes. [`Bytes`] provides that ownership
//! model at library scale: a refcounted, immutable byte slice with cheap
//! `clone` and `slice` (both O(1), no data movement), backed either by a
//! caller-supplied `Vec<u8>` or by a buffer leased from a [`BufPool`].
//! Pool-backed storage returns to the pool when the last `Bytes` referring
//! to it drops, so steady-state checkpointing recycles a fixed set of
//! staging buffers instead of hammering the allocator.
//!
//! Ownership and lifetime rules (see DESIGN.md §9):
//!
//! * the bytes behind a `Bytes` are immutable for its entire lifetime —
//!   every copy-avoidance decision in the executors leans on this;
//! * a pooled buffer is returned to its pool exactly when the last
//!   `Bytes`/slice over it drops; the pool only ever hands it out again
//!   after that point, so no live reader can observe reuse;
//! * copies are *counted*: every helper that actually moves bytes calls
//!   [`rbio_profile::counters::add_bytes_copied`], making "copies per
//!   checkpoint byte" a measurable quantity rather than a code-review
//!   claim.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use rbio_profile::counters;

/// How the executors materialize the bytes a plan op refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyMode {
    /// Reference-counted slices end to end: a payload byte is copied only
    /// where a copy is semantically required (into mutable staging, or
    /// into an eager-send buffer). The default.
    #[default]
    ZeroCopy,
    /// Deep-copy every resolved reference, emulating the legacy datapath
    /// (payload → `to_vec` → channel `to_vec` → staging → flush snapshot).
    /// Kept as the baseline for the `datapath` bench and the byte-identity
    /// property tests.
    DeepCopy,
}

/// Backing storage of one or more `Bytes` slices.
struct Inner {
    data: Vec<u8>,
    /// The pool to return `data` to on final drop, when pool-backed.
    pool: Option<Weak<PoolShared>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.as_ref().and_then(Weak::upgrade) {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

/// A cheaply cloneable, immutable, refcounted byte slice.
///
/// `clone` and [`Bytes::slice`] are O(1) and never touch the data. The
/// underlying storage is freed (or returned to its [`BufPool`]) when the
/// last slice over it drops.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<Inner>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty slice (no allocation).
    pub fn new() -> Bytes {
        static EMPTY: OnceLock<Bytes> = OnceLock::new();
        EMPTY.get_or_init(|| Bytes::from_vec(Vec::new())).clone()
    }

    /// Take ownership of `v` without copying.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            inner: Arc::new(Inner {
                data: v,
                pool: None,
            }),
            off: 0,
            len,
        }
    }

    /// Copy `src` into a buffer leased from the global pool. This is a
    /// real data movement and is accounted as copied bytes.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        BufPool::global().copy_from_slice(src)
    }

    /// Slice length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) subslice sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice [{start}..{end}) out of bounds of {}",
            self.len
        );
        Bytes {
            inner: Arc::clone(&self.inner),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Recover a `Vec<u8>`: zero-copy when this is the only slice over a
    /// non-pooled, full-range storage; otherwise a counted copy. (Pooled
    /// storage is never surrendered — the Vec must not escape the pool's
    /// recycling.)
    pub fn into_vec(self) -> Vec<u8> {
        let whole = self.off == 0 && self.len == self.inner.data.len();
        if whole && self.inner.pool.is_none() {
            match Arc::try_unwrap(self.inner) {
                Ok(mut inner) => return std::mem::take(&mut inner.data),
                Err(inner) => {
                    // Another slice is alive: copy out.
                    counters::add_bytes_copied(inner.data.len() as u64);
                    return inner.data.clone();
                }
            }
        }
        counters::add_bytes_copied(self.len as u64);
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes[{} bytes", self.len)?;
        if self.inner.pool.is_some() {
            write!(f, ", pooled")?;
        }
        write!(f, "]")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

/// Retain at most this many free buffers per pool.
const MAX_POOLED_BUFS: usize = 64;
/// Never recycle a buffer larger than this (one-off giants go back to the
/// allocator instead of pinning memory).
const MAX_POOLED_CAP: usize = 16 << 20;

struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
}

impl PoolShared {
    fn put(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 || v.capacity() > MAX_POOLED_CAP {
            return;
        }
        let mut g = self.free.lock().expect("buffer pool lock");
        if crate::sched::controlled() && Self::contains_ptr(&g, v.as_ptr()) {
            // The same allocation is being recycled twice: some live
            // `Bytes` still references a buffer the pool may hand out
            // again (use-after-recycle). Report it to the checker
            // rather than corrupting the free list.
            crate::sched::emit(|| crate::sched::Event::BufDoubleRecycle {
                addr: v.as_ptr() as usize,
            });
            return;
        }
        if g.len() < MAX_POOLED_BUFS {
            v.clear();
            g.push(v);
        }
    }

    /// True if a buffer with base pointer `p` already sits in the free
    /// list (the double-recycle predicate; split out for unit testing).
    fn contains_ptr(free: &[Vec<u8>], p: *const u8) -> bool {
        free.iter().any(|b| std::ptr::eq(b.as_ptr(), p))
    }
}

/// A recycling pool of byte buffers backing [`Bytes`] allocations on the
/// writer staging/aggregation path.
pub struct BufPool {
    shared: Arc<PoolShared>,
}

impl BufPool {
    /// A fresh, private pool (tests; the executors use [`BufPool::global`]).
    pub fn new() -> BufPool {
        BufPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-wide pool shared by both executors.
    pub fn global() -> &'static BufPool {
        static POOL: OnceLock<BufPool> = OnceLock::new();
        POOL.get_or_init(BufPool::new)
    }

    /// Number of free buffers currently held (test observability).
    pub fn free_buffers(&self) -> usize {
        self.shared.free.lock().expect("buffer pool lock").len()
    }

    fn lease(&self, min_capacity: usize) -> Vec<u8> {
        let mut v = {
            let mut g = self.shared.free.lock().expect("buffer pool lock");
            // Prefer a buffer that already fits to avoid regrowing.
            match g.iter().position(|b| b.capacity() >= min_capacity) {
                Some(i) => g.swap_remove(i),
                None => g.pop().unwrap_or_default(),
            }
        };
        v.clear();
        v.reserve(min_capacity);
        v
    }

    fn seal(&self, v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            inner: Arc::new(Inner {
                data: v,
                pool: Some(Arc::downgrade(&self.shared)),
            }),
            off: 0,
            len,
        }
    }

    /// Copy `src` into a pooled buffer (counted as copied bytes).
    pub fn copy_from_slice(&self, src: &[u8]) -> Bytes {
        counters::add_bytes_copied(src.len() as u64);
        let mut v = self.lease(src.len());
        v.extend_from_slice(src);
        self.seal(v)
    }

    /// Fill a pooled buffer of `len` bytes with `f(index)` — used for
    /// synthetic plan data, where the bytes are generated, not copied.
    pub fn from_fn(&self, len: usize, f: impl Fn(usize) -> u8) -> Bytes {
        let mut v = self.lease(len);
        v.extend((0..len).map(f));
        self.seal(v)
    }
}

impl Default for BufPool {
    fn default() -> BufPool {
        BufPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_zero_copy_round_trip() {
        let before = counters::snapshot();
        let v: Vec<u8> = (0..200u8).collect();
        let ptr = v.as_ptr();
        let b = Bytes::from_vec(v);
        assert_eq!(b.len(), 200);
        assert_eq!(&b[..5], &[0, 1, 2, 3, 4]);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique full-range into_vec moves");
        // No counted copies happened on this thread's path. (Other tests
        // may run concurrently, so only check our own allocation moved.)
        let _ = before;
    }

    #[test]
    fn slices_share_storage_and_compare() {
        let b = Bytes::from_vec((0..100u8).collect());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(&s[..], &(10..20u8).collect::<Vec<_>>()[..]);
        let s2 = s.slice(2..=4);
        assert_eq!(&s2[..], &[12, 13, 14]);
        assert_eq!(s.slice(..), s);
        let c = s.clone();
        assert_eq!(c, s);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_vec(vec![0; 4]);
        let _ = b.slice(2..8);
    }

    #[test]
    fn pooled_buffers_recycle_on_last_drop() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(&[7u8; 128]);
        let s = b.slice(5..100);
        assert_eq!(pool.free_buffers(), 0, "still referenced");
        drop(b);
        assert_eq!(pool.free_buffers(), 0, "slice still referenced");
        drop(s);
        assert_eq!(pool.free_buffers(), 1, "returned on final drop");
        // The next lease reuses the buffer.
        let c = pool.copy_from_slice(&[1u8; 64]);
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(&c[..3], &[1, 1, 1]);
    }

    #[test]
    fn copy_from_slice_is_counted() {
        let before = counters::snapshot();
        let pool = BufPool::new();
        let _b = pool.copy_from_slice(&[0u8; 4096]);
        let d = counters::snapshot().delta_since(&before);
        assert!(d.bytes_copied >= 4096, "copies must be accounted");
    }

    #[test]
    fn from_fn_generates_without_copy_accounting() {
        let pool = BufPool::new();
        let b = pool.from_fn(16, |i| (i * 3) as u8);
        assert_eq!(b[5], 15);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn into_vec_copies_when_shared_or_pooled() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(&[9u8; 32]);
        let v = b.clone().into_vec(); // shared + pooled: must copy
        assert_eq!(v, vec![9u8; 32]);
        drop(b);
        assert_eq!(pool.free_buffers(), 1, "pooled storage stays pooled");
    }

    #[test]
    fn empty_bytes() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e.slice(0..0).len(), 0);
        assert_eq!(Bytes::default(), e);
    }

    #[test]
    fn double_recycle_predicate_spots_aliased_buffer() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(&[3u8; 64]);
        let ptr = b.as_ref().as_ptr();
        drop(b); // storage returns to the free list
        let g = pool.shared.free.lock().expect("buffer pool lock");
        assert!(
            PoolShared::contains_ptr(&g, ptr),
            "recycled buffer must be found by pointer identity"
        );
        assert!(!PoolShared::contains_ptr(&g, [0u8; 1].as_ptr()));
    }
}
