//! Checkpoint campaign management: the operational layer a production run
//! needs around single-step checkpoints.
//!
//! The paper's §II motivates application-level checkpointing with rollback
//! ("roll back to the most recently saved state"); doing that safely needs
//! more than writing files:
//!
//! * **atomic completion** — a step is only restartable once *every* file
//!   landed; a crash mid-checkpoint must not leave a half-step that a
//!   restart could mistake for a good one. We publish a `*.commit` marker
//!   (with per-file sizes and header CRCs) after all writes complete.
//! * **rotation** — keep the last `k` complete steps, deleting older ones
//!   *only after* a newer step committed.
//! * **latest-step discovery** — a restarting job scans the directory and
//!   picks the newest committed step, verifying it before trusting it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::commit;
use crate::exec::{execute, ExecConfig, ExecError, ExecReport};
use crate::failover::FailoverPolicy;
use crate::fault::FaultPlan;
use crate::format::{crc32, decode_header, footer_len, materialize_payloads};
use crate::layout::DataLayout;
use crate::restart::{read_checkpoint, RestartError, RestoredData};
use crate::strategy::{CheckpointPlan, CheckpointSpec, Strategy, Tuning};

/// Errors from campaign operations.
#[derive(Debug)]
pub enum ManagerError {
    /// Planning failed.
    Plan(crate::strategy::PlanError),
    /// Execution failed.
    Exec(ExecError),
    /// Filesystem trouble.
    Io(io::Error),
    /// Restart/verification failed.
    Restart(RestartError),
    /// No committed checkpoint exists.
    NothingToRestore,
    /// The commit marker disagrees with the files on disk.
    CommitMismatch(String),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::Plan(e) => write!(f, "plan: {e}"),
            ManagerError::Exec(e) => write!(f, "exec: {e}"),
            ManagerError::Io(e) => write!(f, "io: {e}"),
            ManagerError::Restart(e) => write!(f, "restart: {e}"),
            ManagerError::NothingToRestore => write!(f, "no committed checkpoint found"),
            ManagerError::CommitMismatch(s) => write!(f, "commit marker mismatch: {s}"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<io::Error> for ManagerError {
    fn from(e: io::Error) -> Self {
        ManagerError::Io(e)
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Checkpoint directory.
    pub dir: PathBuf,
    /// Strategy for every step.
    pub strategy: Strategy,
    /// Tuning for every step.
    pub tuning: Tuning,
    /// Number of committed steps to retain (≥1).
    pub keep: usize,
    /// Application name stored in headers.
    pub app: String,
    /// fsync files before commit (durable but slower).
    pub fsync: bool,
    /// Fault injection for every step's execution (tests and failure
    /// drills; [`FaultPlan::none`] in production).
    pub faults: FaultPlan,
    /// Writer failover: when a writer dies or hangs mid-step, a
    /// surviving writer takes over its extent and the step completes
    /// *degraded* instead of aborting. On by default; the deadlines are
    /// derived from the executor's receive timeout. Disable to get the
    /// pre-failover abort-and-fall-back behavior.
    pub failover: bool,
}

impl ManagerConfig {
    /// Defaults: rbIO with ng = nranks/8 (at least 1), keep 2 steps.
    pub fn new(dir: impl AsRef<Path>, strategy: Strategy) -> Self {
        ManagerConfig {
            dir: dir.as_ref().to_path_buf(),
            strategy,
            tuning: Tuning::default(),
            keep: 2,
            app: "nekcem".to_string(),
            fsync: false,
            faults: FaultPlan::none(),
            failover: true,
        }
    }
}

/// How restorable a committed generation is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenerationState {
    /// Every extent landed through its primary writer.
    Complete,
    /// Every extent landed, but at least one through a failover
    /// successor — fully restorable, flagged for operators.
    Degraded,
    /// Verification failed: missing/truncated/corrupt extents. Not
    /// restorable; `restore_latest` falls back past it.
    Torn,
}

/// A checkpoint campaign: write steps, rotate, restore the latest.
#[derive(Debug)]
pub struct CheckpointManager {
    cfg: ManagerConfig,
    layout: DataLayout,
}

fn step_prefix(step: u64) -> String {
    format!("step{step:010}")
}

fn commit_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("{}.commit", step_prefix(step)))
}

fn manifest_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("{}.manifest", step_prefix(step)))
}

/// Remove `path`, treating "already gone" as success: during generation
/// scans and GC another process (or an earlier crashed GC) may legally
/// have deleted an entry between listing and removal. Returns whether
/// this call did the deleting; any error other than `NotFound` is real
/// (permissions, EISDIR, I/O) and propagates.
fn remove_if_exists(path: &Path) -> io::Result<bool> {
    match fs::remove_file(path) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// A `read_dir` entry error for something that vanished mid-iteration.
fn entry_vanished(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::NotFound
}

impl CheckpointManager {
    /// A manager for `layout` under `cfg.dir` (created if needed).
    pub fn new(layout: DataLayout, cfg: ManagerConfig) -> Result<Self, ManagerError> {
        fs::create_dir_all(&cfg.dir)?;
        assert!(cfg.keep >= 1, "must keep at least one step");
        Ok(CheckpointManager { cfg, layout })
    }

    /// The layout being checkpointed.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    fn plan_for(&self, step: u64) -> Result<CheckpointPlan, ManagerError> {
        CheckpointSpec::new(self.layout.clone(), step_prefix(step))
            .strategy(self.cfg.strategy)
            .tuning(self.cfg.tuning)
            .step(step)
            .plan()
            .map_err(ManagerError::Plan)
    }

    /// Write checkpoint `step` with field data from `fill`, commit it
    /// atomically, then rotate old steps. Returns the executor report.
    pub fn checkpoint(
        &self,
        step: u64,
        fill: impl FnMut(u32, usize, &mut [u8]),
    ) -> Result<ExecReport, ManagerError> {
        let plan = self.plan_for(step)?;
        let payloads = materialize_payloads(&plan, fill);
        let mut exec_cfg = ExecConfig::new(&self.cfg.dir);
        exec_cfg.fsync_on_close = self.cfg.fsync;
        exec_cfg.faults = self.cfg.faults.clone();
        if self.cfg.failover {
            exec_cfg.failover = FailoverPolicy::from_recv_timeout(exec_cfg.recv_timeout);
        }
        let report = execute(&plan.program, payloads, &exec_cfg).map_err(ManagerError::Exec)?;

        // Generation manifest: which writer actually landed each extent.
        // Written before the commit marker (an aborted step may leave a
        // manifest without a marker; the prefix GC reaps it), so any
        // committed generation can be classified Complete vs Degraded.
        let mut manifest = String::new();
        manifest.push_str(&format!("step {step}\nextents {}\n", plan.plan_files.len()));
        for (i, pf) in plan.plan_files.iter().enumerate() {
            let owner = plan
                .program
                .ops
                .iter()
                .position(|ops| {
                    ops.iter().any(
                        |op| matches!(op, rbio_plan::Op::Commit { file } if file.0 as usize == i),
                    )
                })
                .unwrap_or(0) as u32;
            match report.failovers.iter().find(|(orphan, _)| *orphan == owner) {
                Some((_, successor)) => {
                    manifest.push_str(&format!("{} {} failover:{}\n", pf.name, owner, successor));
                }
                None => manifest.push_str(&format!("{} {} primary\n", pf.name, owner)),
            }
        }
        let mtmp = manifest_path(&self.cfg.dir, step).with_extension("manifest.tmp");
        fs::write(&mtmp, &manifest)?;
        fs::rename(&mtmp, manifest_path(&self.cfg.dir, step))?;

        // Commit marker: per-file expected size + header CRC, then an
        // atomic rename so a crash never leaves a half-written marker.
        let mut body = String::new();
        body.push_str(&format!("step {step}\nfiles {}\n", plan.plan_files.len()));
        for (i, pf) in plan.plan_files.iter().enumerate() {
            let path = self.cfg.dir.join(&pf.name);
            let meta = fs::metadata(&path)?;
            // Committed files carry a checksum footer past the plan's
            // logical size.
            let expect = plan.program.files[i].size + footer_len(plan.layout.nfields());
            if meta.len() != expect {
                return Err(ManagerError::CommitMismatch(format!(
                    "{}: {} bytes on disk, plan wrote {}",
                    pf.name,
                    meta.len(),
                    expect
                )));
            }
            // CRC the header region only (data integrity is the header
            // CRC + size check; whole-file CRCs would double write time).
            let hdr_len = plan
                .payload_meta
                .iter()
                .find(|m| m.header_for_file == Some(i))
                .map(|m| m.header_len)
                .unwrap_or(0);
            let mut hdr = vec![0u8; hdr_len.min(meta.len()) as usize];
            use std::os::unix::fs::FileExt;
            fs::File::open(&path)?.read_exact_at(&mut hdr, 0)?;
            body.push_str(&format!("{} {} {:08x}\n", pf.name, meta.len(), crc32(&hdr)));
        }
        let tmp = commit_path(&self.cfg.dir, step).with_extension("commit.tmp");
        fs::write(&tmp, &body)?;
        fs::rename(&tmp, commit_path(&self.cfg.dir, step))?;

        self.rotate()?;
        Ok(report)
    }

    /// Committed steps present, ascending. Entries that vanish while the
    /// directory is being scanned (concurrent GC, another manager) are
    /// skipped with a warning instead of failing the whole scan; any
    /// other per-entry error propagates as a typed [`ManagerError::Io`].
    pub fn committed_steps(&self) -> Result<Vec<u64>, ManagerError> {
        let mut steps = Vec::new();
        for entry in fs::read_dir(&self.cfg.dir)? {
            let entry = match entry {
                Ok(e) => e,
                Err(e) if entry_vanished(&e) => {
                    eprintln!(
                        "rbio: warning: entry in {} vanished during generation scan (skipped)",
                        self.cfg.dir.display()
                    );
                    continue;
                }
                Err(e) => return Err(ManagerError::Io(e)),
            };
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(num) = name
                .strip_prefix("step")
                .and_then(|s| s.strip_suffix(".commit"))
            {
                if let Ok(step) = num.parse::<u64>() {
                    steps.push(step);
                }
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Delete everything but the newest `keep` committed steps (markers
    /// first, then files, so a partial delete still looks uncommitted).
    /// Tolerates entries deleted out from under it: a concurrent GC
    /// removing the same old generation is success, not an error.
    fn rotate(&self) -> Result<(), ManagerError> {
        let steps = self.committed_steps()?;
        if steps.len() <= self.cfg.keep {
            return Ok(());
        }
        for &old in &steps[..steps.len() - self.cfg.keep] {
            remove_if_exists(&commit_path(&self.cfg.dir, old))?;
            remove_if_exists(&manifest_path(&self.cfg.dir, old))?;
            let prefix = step_prefix(old);
            // List first, then delete: the snapshot keeps the removal
            // set stable even as entries disappear mid-iteration.
            let mut victims = Vec::new();
            for entry in fs::read_dir(&self.cfg.dir)? {
                let entry = match entry {
                    Ok(e) => e,
                    Err(e) if entry_vanished(&e) => continue,
                    Err(e) => return Err(ManagerError::Io(e)),
                };
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(&prefix)
                    && (name.ends_with(".rbio")
                        || name.ends_with(".rbio.tmp")
                        || name.ends_with(".manifest")
                        || name.ends_with(".manifest.tmp"))
                {
                    victims.push(entry.path());
                }
            }
            for victim in victims {
                remove_if_exists(&victim)?;
            }
        }
        Ok(())
    }

    /// Verify a committed step's marker against the files on disk.
    pub fn verify(&self, step: u64) -> Result<(), ManagerError> {
        let marker = fs::read_to_string(commit_path(&self.cfg.dir, step))
            .map_err(|_| ManagerError::NothingToRestore)?;
        for line in marker.lines().skip(2) {
            let mut parts = line.split_whitespace();
            let (Some(name), Some(size), Some(crc)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(ManagerError::CommitMismatch(format!(
                    "bad marker line: {line}"
                )));
            };
            let path = self.cfg.dir.join(name);
            let meta = fs::metadata(&path)
                .map_err(|e| ManagerError::CommitMismatch(format!("{name}: {e}")))?;
            if meta.len().to_string() != size {
                return Err(ManagerError::CommitMismatch(format!(
                    "{name}: size {} != recorded {size}",
                    meta.len()
                )));
            }
            let hdr_crc = {
                use std::os::unix::fs::FileExt;
                let f = fs::File::open(&path)?;
                let mut head = vec![0u8; 16.min(meta.len() as usize)];
                f.read_exact_at(&mut head, 0)?;
                if head.len() < 16 {
                    return Err(ManagerError::CommitMismatch(format!("{name}: too short")));
                }
                let hlen =
                    u64::from_le_bytes(head[8..16].try_into().expect("len 8")).min(meta.len());
                let mut hdr = vec![0u8; hlen as usize];
                f.read_exact_at(&mut hdr, 0)?;
                crc32(&hdr)
            };
            if format!("{hdr_crc:08x}") != crc {
                return Err(ManagerError::CommitMismatch(format!(
                    "{name}: header CRC changed"
                )));
            }
            // Data integrity: the commit footer's per-field checksums.
            let bytes = fs::read(&path)?;
            let header = decode_header(&bytes)
                .map_err(|e| ManagerError::CommitMismatch(format!("{name}: {e}")))?;
            if let Some(what) = commit::verify_committed(&bytes, header.expected_file_size()) {
                return Err(ManagerError::CommitMismatch(format!("{name}: {what}")));
            }
        }
        Ok(())
    }

    /// Classify a committed generation: [`GenerationState::Torn`] if its
    /// marker/files fail verification, otherwise Complete or Degraded
    /// per the manifest ("failover:" extents). Generations from before
    /// manifests existed verify as Complete.
    pub fn generation_state(&self, step: u64) -> GenerationState {
        if self.verify(step).is_err() {
            return GenerationState::Torn;
        }
        match fs::read_to_string(manifest_path(&self.cfg.dir, step)) {
            Ok(m) => {
                if m.lines().skip(2).any(|l| l.contains(" failover:")) {
                    GenerationState::Degraded
                } else {
                    GenerationState::Complete
                }
            }
            Err(_) => GenerationState::Complete,
        }
    }

    /// Restore the newest committed-and-verified step. Torn steps are
    /// skipped (newest first) so a damaged latest step falls back to the
    /// one before it; a degraded-but-recoverable step restores normally
    /// (its failover extents carry identical bytes) and is counted in
    /// the profile as a degraded restore.
    pub fn restore_latest(&self) -> Result<RestoredData, ManagerError> {
        let steps = self.committed_steps()?;
        for &step in steps.iter().rev() {
            let state = self.generation_state(step);
            if state == GenerationState::Torn {
                continue;
            }
            let plan = self.plan_for(step)?;
            match read_checkpoint(&self.cfg.dir, &plan) {
                Ok(data) => {
                    if state == GenerationState::Degraded {
                        rbio_profile::counters::add_degraded_generations(1);
                    }
                    return Ok(data);
                }
                Err(RestartError::Io(e)) => return Err(ManagerError::Io(e)),
                Err(_) => continue,
            }
        }
        Err(ManagerError::NothingToRestore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(name: &str, keep: usize) -> (CheckpointManager, PathBuf) {
        let dir = std::env::temp_dir().join(format!("rbio-mgr-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = keep;
        (CheckpointManager::new(layout, cfg).expect("manager"), dir)
    }

    fn fill_for(step: u64) -> impl FnMut(u32, usize, &mut [u8]) {
        move |rank, field, buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (step as usize + rank as usize * 3 + field * 7 + i) as u8;
            }
        }
    }

    #[test]
    fn checkpoint_commit_restore_cycle() {
        let (mgr, dir) = mk("cycle", 2);
        mgr.checkpoint(100, fill_for(100)).expect("ck 100");
        assert_eq!(mgr.committed_steps().unwrap(), vec![100]);
        mgr.verify(100).expect("verify");
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 100);
        assert_eq!(restored.field_data(2, 0)[0], (100 + 6) as u8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_only_last_k() {
        let (mgr, dir) = mk("rotate", 2);
        for step in [1u64, 2, 3, 4] {
            mgr.checkpoint(step, fill_for(step)).expect("ck");
        }
        assert_eq!(mgr.committed_steps().unwrap(), vec![3, 4]);
        // Files of rotated steps are gone.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !names.iter().any(|n| n.starts_with("step0000000001")),
            "{names:?}"
        );
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_latest_falls_back_to_previous() {
        let (mgr, dir) = mk("torn", 3);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        mgr.checkpoint(2, fill_for(2)).expect("ck 2");
        // Damage step 2's data after commit (bit rot / torn write).
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_string_lossy()
                    .starts_with("step0000000002")
                    && p.extension().is_some_and(|e| e == "rbio")
            })
            .expect("step-2 file");
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(3).unwrap();
        drop(f);
        assert!(mgr.verify(2).is_err());
        let restored = mgr.restore_latest().expect("fallback");
        assert_eq!(restored.step, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_step_is_invisible() {
        let (mgr, dir) = mk("uncommitted", 2);
        mgr.checkpoint(5, fill_for(5)).expect("ck 5");
        // Simulate a crash mid-step-6: files exist, marker does not.
        let layout = mgr.layout().clone();
        let plan = CheckpointSpec::new(layout, "step0000000006")
            .strategy(Strategy::rbio(2))
            .step(6)
            .plan()
            .expect("plan");
        let payloads = materialize_payloads(&plan, fill_for(6));
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).expect("write, no commit");
        assert_eq!(mgr.committed_steps().unwrap(), vec![5]);
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_mid_step_falls_back_to_previous_generation() {
        let (mgr, dir) = mk("kill", 2);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        let want = mgr.restore_latest().expect("gen 1");

        // Step 2 with a fault armed: writer rank 4 dies after its first
        // written byte — at its commit edge, after data, before rename.
        // Failover is explicitly off: this test pins the pre-failover
        // contract (the step aborts and restart falls back a generation).
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        cfg.failover = false;
        let mgr2 = CheckpointManager::new(mgr.layout().clone(), cfg).expect("manager");
        assert!(
            mgr2.checkpoint(2, fill_for(2)).is_err(),
            "fault must abort the step"
        );

        // The torn step never committed; no final file of step 2 may be
        // half-written (rank 4's stays a .tmp sibling).
        assert_eq!(mgr.committed_steps().unwrap(), vec![1]);
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            if name.starts_with("step0000000002") && name.ends_with(".rbio") {
                let bytes = std::fs::read(dir.join(&name)).unwrap();
                let h = decode_header(&bytes).expect("published file parses");
                assert!(
                    commit::verify_committed(&bytes, h.expected_file_size()).is_none(),
                    "{name}: published but not fully committed"
                );
            }
        }

        // Restart resumes from generation 1, byte-identically.
        let restored = mgr.restore_latest().expect("fallback");
        assert_eq!(restored.step, 1);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_with_failover_completes_degraded_and_restores_identically() {
        // Reference: the same step, same fill, no faults.
        let (ref_mgr, ref_dir) = mk("deg-ref", 2);
        ref_mgr.checkpoint(2, fill_for(2)).expect("reference ck");
        let want = ref_mgr.restore_latest().expect("reference restore");

        // Injected run: writer rank 4 is killed mid-extent; failover (on
        // by default) hands its extent to the surviving writer and the
        // step still commits.
        let dir = std::env::temp_dir().join(format!("rbio-mgr-deg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mgr = CheckpointManager::new(layout, cfg).expect("manager");
        let before = rbio_profile::counters::failover_snapshot();
        let report = mgr.checkpoint(2, fill_for(2)).expect("degraded ck");
        assert_eq!(report.failovers.len(), 1, "{:?}", report.failovers);
        assert_eq!(report.failovers[0].0, 4, "rank 4 is the orphan");

        // The generation is committed, verified, and classified
        // degraded via its manifest.
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        mgr.verify(2).expect("degraded generation verifies");
        assert_eq!(mgr.generation_state(2), GenerationState::Degraded);
        let manifest = std::fs::read_to_string(manifest_path(&dir, 2)).expect("manifest");
        assert!(manifest.contains(" failover:"), "{manifest}");

        // Restore is byte-identical to the uninjected reference and
        // counted as a degraded restore.
        let restored = mgr.restore_latest().expect("degraded restore");
        assert_eq!(restored.step, 2);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        let delta = rbio_profile::counters::failover_snapshot().delta_since(&before);
        assert!(delta.failovers >= 1, "{delta:?}");
        assert!(delta.degraded_generations >= 1, "{delta:?}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    #[test]
    fn restore_walks_past_torn_into_degraded_generation() {
        // Three generations: 1 complete, 2 degraded (failover), 3
        // committed then torn after the fact. Restore must skip 3 and
        // pick the degraded-but-recoverable 2, not fall through to 1.
        let dir = std::env::temp_dir().join(format!("rbio-mgr-walk-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 3;
        let mgr = CheckpointManager::new(layout.clone(), cfg.clone()).expect("manager");
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");

        let mut cfg2 = cfg.clone();
        cfg2.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        let mgr2 = CheckpointManager::new(layout, cfg2).expect("manager 2");
        let want = {
            let (ref_mgr, ref_dir) = mk("walk-ref", 2);
            ref_mgr.checkpoint(2, fill_for(2)).expect("reference ck");
            let w = ref_mgr.restore_latest().expect("reference restore");
            std::fs::remove_dir_all(&ref_dir).ok();
            w
        };
        mgr2.checkpoint(2, fill_for(2)).expect("ck 2 degraded");
        mgr.checkpoint(3, fill_for(3)).expect("ck 3");

        // Tear generation 3 post-commit.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_string_lossy()
                    .starts_with("step0000000003")
                    && p.extension().is_some_and(|e| e == "rbio")
            })
            .expect("step-3 file");
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(3).unwrap();
        drop(f);

        assert_eq!(mgr.generation_state(3), GenerationState::Torn);
        assert_eq!(mgr.generation_state(2), GenerationState::Degraded);
        assert_eq!(mgr.generation_state(1), GenerationState::Complete);

        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 2, "newest restorable generation wins");
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_if_exists_tolerates_missing_and_surfaces_real_errors() {
        let dir = std::env::temp_dir().join(format!("rbio-mgr-rie-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("gone");
        // A concurrently-deleted entry is success, not a panic or error.
        assert!(!remove_if_exists(&p).expect("missing file is fine"));
        std::fs::write(&p, b"x").unwrap();
        assert!(remove_if_exists(&p).expect("removes existing"));
        assert!(!p.exists());
        // A genuinely unreadable/undeletable entry still surfaces a
        // typed error (here: the target is a non-empty directory).
        let sub = dir.join("subdir");
        std::fs::create_dir(&sub).unwrap();
        std::fs::write(sub.join("f"), b"x").unwrap();
        assert!(remove_if_exists(&sub).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_tolerates_entries_deleted_by_concurrent_manager() {
        let (mgr, dir) = mk("race-gc", 1);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        mgr.checkpoint(2, fill_for(2)).expect("ck 2 + rotate");
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        // Simulate a second manager having partially GC'd an old
        // generation: the marker exists again but (some of) its data
        // files are already gone. Rotation must clean up what is left
        // and not fail on what is not.
        std::fs::write(commit_path(&dir, 1), "step 1\nfiles 0\n").unwrap();
        mgr.rotate().expect("rotate past half-deleted generation");
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        // Same with a data file left behind but its siblings vanished.
        std::fs::write(commit_path(&dir, 1), "step 1\nfiles 0\n").unwrap();
        std::fs::write(dir.join("step0000000001-orphan.rbio"), b"stale").unwrap();
        mgr.rotate().expect("rotate reaps the orphan");
        assert!(!dir.join("step0000000001-orphan.rbio").exists());
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_detects_post_commit_tampering() {
        let (mgr, dir) = mk("tamper", 2);
        mgr.checkpoint(9, fill_for(9)).expect("ck");
        // Corrupt a header byte.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "rbio"))
            .expect("file");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[20] ^= 0x5A;
        std::fs::write(&victim, bytes).unwrap();
        assert!(matches!(
            mgr.verify(9),
            Err(ManagerError::CommitMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
