//! Checkpoint campaign management: the operational layer a production run
//! needs around single-step checkpoints.
//!
//! The paper's §II motivates application-level checkpointing with rollback
//! ("roll back to the most recently saved state"); doing that safely needs
//! more than writing files:
//!
//! * **atomic completion** — a step is only restartable once *every* file
//!   landed; a crash mid-checkpoint must not leave a half-step that a
//!   restart could mistake for a good one. We publish a `*.commit` marker
//!   (with per-file sizes and header CRCs) after all writes complete.
//! * **rotation** — keep the last `k` complete steps, deleting older ones
//!   *only after* a newer step committed.
//! * **latest-step discovery** — a restarting job scans the directory and
//!   picks the newest committed step, verifying it before trusting it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::commit;
use crate::exec::{execute, ExecConfig, ExecError, ExecReport};
use crate::failover::FailoverPolicy;
use crate::fault::FaultPlan;
use crate::format::{crc32, decode_header, footer_len, materialize_payloads};
use crate::layout::DataLayout;
use crate::restart::{read_checkpoint, read_checkpoint_staged, RestartError, RestoredData};
use crate::sched::{self, Event, TierId};
use crate::strategy::{CheckpointPlan, CheckpointSpec, Strategy, Tuning};
use crate::tier::{DrainJob, SlabPool, TierConfig, TierEngine, TierError, TierStage};
use rbio_plan::Rank;

/// The fault-injection rank identity of the manager's own metadata
/// commits (manifest + marker). Distinct from every plan writer rank and
/// from [`crate::tier::DRAIN_RANK`], so tests can kill the campaign
/// layer's commit path specifically.
pub const MANAGER_RANK: Rank = Rank::MAX;

/// Errors from campaign operations.
#[derive(Debug)]
pub enum ManagerError {
    /// Planning failed.
    Plan(crate::strategy::PlanError),
    /// Execution failed.
    Exec(ExecError),
    /// Filesystem trouble.
    Io(io::Error),
    /// Restart/verification failed.
    Restart(RestartError),
    /// No committed checkpoint exists.
    NothingToRestore,
    /// The commit marker disagrees with the files on disk.
    CommitMismatch(String),
    /// The staging tier failed (slab full, drain failure, tier loss
    /// with no recoverable copy).
    Tier(TierError),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::Plan(e) => write!(f, "plan: {e}"),
            ManagerError::Exec(e) => write!(f, "exec: {e}"),
            ManagerError::Io(e) => write!(f, "io: {e}"),
            ManagerError::Restart(e) => write!(f, "restart: {e}"),
            ManagerError::NothingToRestore => write!(f, "no committed checkpoint found"),
            ManagerError::CommitMismatch(s) => write!(f, "commit marker mismatch: {s}"),
            ManagerError::Tier(e) => write!(f, "tier: {e}"),
        }
    }
}

impl std::error::Error for ManagerError {}

impl From<io::Error> for ManagerError {
    fn from(e: io::Error) -> Self {
        ManagerError::Io(e)
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Checkpoint directory.
    pub dir: PathBuf,
    /// Strategy for every step.
    pub strategy: Strategy,
    /// Tuning for every step.
    pub tuning: Tuning,
    /// Number of committed steps to retain (≥1).
    pub keep: usize,
    /// Application name stored in headers.
    pub app: String,
    /// fsync files before commit (durable but slower).
    pub fsync: bool,
    /// Fault injection for every step's execution (tests and failure
    /// drills; [`FaultPlan::none`] in production).
    pub faults: FaultPlan,
    /// Writer failover: when a writer dies or hangs mid-step, a
    /// surviving writer takes over its extent and the step completes
    /// *degraded* instead of aborting. On by default; the deadlines are
    /// derived from the executor's receive timeout. Disable to get the
    /// pre-failover abort-and-fall-back behavior.
    pub failover: bool,
    /// Node-local burst-buffer tier. With one configured, checkpoints
    /// stage into a pre-allocated local slab at memory speed and a
    /// background engine drains them to the PFS; [`CheckpointManager::
    /// wait_durable`] blocks until a step's PFS copy is committed.
    /// `None` writes straight to the PFS as before.
    pub tier: Option<TierConfig>,
}

impl ManagerConfig {
    /// Defaults: rbIO with ng = nranks/8 (at least 1), keep 2 steps.
    pub fn new(dir: impl AsRef<Path>, strategy: Strategy) -> Self {
        ManagerConfig {
            dir: dir.as_ref().to_path_buf(),
            strategy,
            tuning: Tuning::default(),
            keep: 2,
            app: "nekcem".to_string(),
            fsync: false,
            faults: FaultPlan::none(),
            failover: true,
            tier: None,
        }
    }

    /// Stage checkpoints through a node-local tier (see
    /// [`ManagerConfig::tier`]).
    pub fn tier(mut self, tier: TierConfig) -> Self {
        self.tier = Some(tier);
        self
    }
}

/// How restorable a committed generation is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenerationState {
    /// Every extent landed through its primary writer.
    Complete,
    /// Every extent landed, but at least one through a failover
    /// successor — fully restorable, flagged for operators.
    Degraded,
    /// Verification failed: missing/truncated/corrupt extents. Not
    /// restorable; `restore_latest` falls back past it.
    Torn,
}

/// A checkpoint campaign: write steps, rotate, restore the latest.
#[derive(Debug)]
pub struct CheckpointManager {
    cfg: ManagerConfig,
    layout: DataLayout,
    engine: Option<Arc<TierEngine>>,
}

fn step_prefix(step: u64) -> String {
    format!("step{step:010}")
}

fn commit_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("{}.commit", step_prefix(step)))
}

fn manifest_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("{}.manifest", step_prefix(step)))
}

/// Remove `path`, treating "already gone" as success: during generation
/// scans and GC another process (or an earlier crashed GC) may legally
/// have deleted an entry between listing and removal. Returns whether
/// this call did the deleting; any error other than `NotFound` is real
/// (permissions, EISDIR, I/O) and propagates.
fn remove_if_exists(path: &Path) -> io::Result<bool> {
    match fs::remove_file(path) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// A `read_dir` entry error for something that vanished mid-iteration.
fn entry_vanished(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::NotFound
}

/// Per-file commit-marker expectations: `(name, expected size on disk
/// including the checksum footer, header length to CRC)`.
type MarkerSpec = (String, u64, u64);

/// Build the commit-marker body by checking every published file against
/// its spec. Runs on the campaign thread (direct path) or the drain
/// thread (tiered path) once the files are on the PFS.
fn marker_body(dir: &Path, step: u64, specs: &[MarkerSpec]) -> Result<String, ManagerError> {
    let mut body = String::new();
    body.push_str(&format!("step {step}\nfiles {}\n", specs.len()));
    for (name, expect, hdr_len) in specs {
        let path = dir.join(name);
        let meta = fs::metadata(&path)?;
        if meta.len() != *expect {
            return Err(ManagerError::CommitMismatch(format!(
                "{name}: {} bytes on disk, plan wrote {expect}",
                meta.len(),
            )));
        }
        // CRC the header region only (data integrity is the header
        // CRC + size check; whole-file CRCs would double write time).
        let mut hdr = vec![0u8; (*hdr_len).min(meta.len()) as usize];
        use std::os::unix::fs::FileExt;
        fs::File::open(&path)?.read_exact_at(&mut hdr, 0)?;
        body.push_str(&format!("{name} {} {:08x}\n", meta.len(), crc32(&hdr)));
    }
    Ok(body)
}

/// Rewrite manifest ownership lines for extents whose PFS copy was
/// recovered from the burst tier after local-tier loss: ` primary`
/// becomes ` tierloss:burst`, classifying the generation Degraded.
fn amend_manifest_for_tier_loss(manifest: &str, recovered: &[String]) -> String {
    if recovered.is_empty() {
        return manifest.to_string();
    }
    let mut out = String::with_capacity(manifest.len() + 16 * recovered.len());
    for line in manifest.lines() {
        let name = line.split_whitespace().next().unwrap_or("");
        if recovered.iter().any(|r| r == name) {
            if let Some(prefix) = line.strip_suffix(" primary") {
                out.push_str(prefix);
                out.push_str(" tierloss:burst\n");
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Publish a generation: manifest first (an aborted publish may leave a
/// manifest without a marker; the prefix GC reaps it), then the commit
/// marker. Both go through the tmp + CRC footer + rename commit path so
/// a crash mid-publish never leaves a half-written metadata file that a
/// restart could trust.
fn publish_generation(
    dir: &Path,
    step: u64,
    manifest: &str,
    specs: &[MarkerSpec],
    recovered: &[String],
    fsync: bool,
    faults: &FaultPlan,
) -> io::Result<()> {
    let manifest = amend_manifest_for_tier_loss(manifest, recovered);
    commit::commit_text_with_faults(
        &manifest_path(dir, step),
        &manifest,
        fsync,
        faults,
        MANAGER_RANK,
    )?;
    let body = marker_body(dir, step, specs).map_err(|e| io::Error::other(e.to_string()))?;
    commit::commit_text_with_faults(&commit_path(dir, step), &body, fsync, faults, MANAGER_RANK)?;
    if fsync {
        // The durability promise the crash sweep holds restores to:
        // from here on, losing this generation is a contract breach.
        sched::emit(|| Event::GenDurable { step });
    }
    Ok(())
}

/// Remove every file in `dir` whose name ends with `suffix`, tolerating
/// concurrent deletion. Returns how many this call removed.
fn reap_suffix(dir: &Path, suffix: &str) -> Result<u64, ManagerError> {
    let mut victims = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = match entry {
            Ok(e) => e,
            Err(e) if entry_vanished(&e) => continue,
            Err(e) => return Err(ManagerError::Io(e)),
        };
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(suffix) {
            victims.push(entry.path());
        }
    }
    let mut removed = 0u64;
    for victim in victims {
        if remove_if_exists(&victim)? {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Garbage-collect orphans a crashed run can leave behind: `*.tmp`
/// siblings in the checkpoint directory (a writer died between open and
/// commit) and, when given, `*.slab` staging files in the tier's local
/// directory (slabs are only meaningful to the engine instance that
/// created them — a fresh manager can never drain a dead one's slab).
/// Every reaped file counts toward the `gc_orphans` profile counter.
fn gc_orphans(dir: &Path, slab_dir: Option<&Path>) -> Result<u64, ManagerError> {
    let mut removed = reap_suffix(dir, commit::TMP_SUFFIX)?;
    if let Some(sd) = slab_dir {
        removed += reap_suffix(sd, ".slab")?;
    }
    if removed > 0 {
        rbio_profile::counters::add_gc_orphans(removed);
    }
    Ok(removed)
}

impl CheckpointManager {
    /// A manager for `layout` under `cfg.dir` (created if needed).
    pub fn new(layout: DataLayout, cfg: ManagerConfig) -> Result<Self, ManagerError> {
        fs::create_dir_all(&cfg.dir)?;
        assert!(cfg.keep >= 1, "must keep at least one step");
        let engine = match &cfg.tier {
            Some(t) => {
                fs::create_dir_all(&t.local_dir)?;
                if let Some(b) = &t.burst_dir {
                    fs::create_dir_all(b)?;
                }
                Some(TierEngine::new(t.retain))
            }
            None => None,
        };
        // Startup GC: a crashed predecessor's half-written `.tmp`
        // siblings and its unreferenced staging slabs are dead weight —
        // no marker references them, and this engine cannot drain them.
        gc_orphans(&cfg.dir, cfg.tier.as_ref().map(|t| t.local_dir.as_path()))?;
        Ok(CheckpointManager {
            cfg,
            layout,
            engine,
        })
    }

    /// The drain engine, when a tier is configured — for failure drills
    /// ([`TierEngine::lose_local`]) and drain observation in tests.
    pub fn tier_engine(&self) -> Option<&Arc<TierEngine>> {
        self.engine.as_ref()
    }

    /// The layout being checkpointed.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    fn plan_for(&self, step: u64) -> Result<CheckpointPlan, ManagerError> {
        CheckpointSpec::new(self.layout.clone(), step_prefix(step))
            .strategy(self.cfg.strategy)
            .tuning(self.cfg.tuning)
            .step(step)
            .plan()
            .map_err(ManagerError::Plan)
    }

    /// Write checkpoint `step` with field data from `fill`, commit it
    /// atomically, then rotate old steps. Returns the executor report.
    pub fn checkpoint(
        &self,
        step: u64,
        fill: impl FnMut(u32, usize, &mut [u8]),
    ) -> Result<ExecReport, ManagerError> {
        let plan = self.plan_for(step)?;
        let payloads = materialize_payloads(&plan, fill);
        let mut exec_cfg = ExecConfig::new(&self.cfg.dir);
        exec_cfg.fsync_on_close = self.cfg.fsync;
        exec_cfg.faults = self.cfg.faults.clone();
        if self.cfg.failover {
            exec_cfg.failover = FailoverPolicy::from_recv_timeout(exec_cfg.recv_timeout);
        }
        // Tiered path: atomic files divert into a pre-allocated local
        // slab; the background engine drains them to the PFS later.
        let stage = match &self.cfg.tier {
            Some(t) => {
                let slab_path = t.local_dir.join(format!("{}.slab", step_prefix(step)));
                let pool = SlabPool::create(&slab_path, t.slab_capacity)?;
                let stage = Arc::new(TierStage::new(step, Arc::new(pool)));
                exec_cfg.stage = Some(Arc::clone(&stage));
                Some(stage)
            }
            None => None,
        };
        let report = match execute(&plan.program, payloads, &exec_cfg) {
            Ok(r) => r,
            Err(e) => {
                // Abort cleanly: reap the aborted step's half-written
                // `.tmp` files (and its staging slab) so a full device
                // or dead writer never latches partial state — the
                // prior committed generation stays the newest visible
                // one. Final-named files are never touched: anything
                // already committed for this step is unreferenced
                // without a marker and harmless.
                self.abort_step_cleanup(step);
                return Err(ManagerError::Exec(e));
            }
        };

        // Generation manifest: which writer actually landed each extent.
        // Written before the commit marker (an aborted step may leave a
        // manifest without a marker; the prefix GC reaps it), so any
        // committed generation can be classified Complete vs Degraded.
        let mut manifest = String::new();
        manifest.push_str(&format!("step {step}\nextents {}\n", plan.plan_files.len()));
        for (i, pf) in plan.plan_files.iter().enumerate() {
            let owner = plan
                .program
                .ops
                .iter()
                .position(|ops| {
                    ops.iter().any(
                        |op| matches!(op, rbio_plan::Op::Commit { file } if file.0 as usize == i),
                    )
                })
                .unwrap_or(0) as u32;
            match report.failovers.iter().find(|(orphan, _)| *orphan == owner) {
                Some((_, successor)) => {
                    manifest.push_str(&format!("{} {} failover:{}\n", pf.name, owner, successor));
                }
                None => manifest.push_str(&format!("{} {} primary\n", pf.name, owner)),
            }
        }
        // Per-file marker expectations: committed files carry a
        // checksum footer past the plan's logical size.
        let specs: Vec<MarkerSpec> = plan
            .plan_files
            .iter()
            .enumerate()
            .map(|(i, pf)| {
                let expect = plan.program.files[i].size + footer_len(plan.layout.nfields());
                let hdr_len = plan
                    .payload_meta
                    .iter()
                    .find(|m| m.header_for_file == Some(i))
                    .map(|m| m.header_len)
                    .unwrap_or(0);
                (pf.name.clone(), expect, hdr_len)
            })
            .collect();

        if let Some(stage) = stage {
            // Tiered path: the step is *perceived* complete here — bytes
            // are safe in the local slab — but only durable once the
            // drain engine lands every file on the PFS and publishes the
            // manifest + marker from the drain thread.
            let engine = self
                .engine
                .as_ref()
                .expect("engine exists when tier is set");
            let tier = self.cfg.tier.as_ref().expect("tier config");
            let dir = self.cfg.dir.clone();
            let fsync = self.cfg.fsync;
            let faults = self.cfg.faults.clone();
            engine.submit(DrainJob {
                step,
                stage: Arc::clone(&stage),
                pfs_dir: self.cfg.dir.clone(),
                burst_dir: tier.burst_dir.clone(),
                fsync: tier.fsync,
                publish: Box::new(move |outcome| {
                    publish_generation(
                        &dir,
                        step,
                        &manifest,
                        &specs,
                        &outcome.recovered_from_burst,
                        fsync,
                        &faults,
                    )
                }),
            });
            return Ok(report);
        }

        // Direct path: manifest then commit marker, both through the
        // tmp + CRC footer + rename commit path so a crash never leaves
        // a half-written metadata file that a restart could trust.
        publish_generation(
            &self.cfg.dir,
            step,
            &manifest,
            &specs,
            &[],
            self.cfg.fsync,
            &self.cfg.faults,
        )?;

        self.rotate()?;
        Ok(report)
    }

    /// Best-effort removal of an aborted step's `.tmp` siblings and its
    /// staging slab. Errors are swallowed — the abort itself is the
    /// news, and anything missed here is reaped by the next manager's
    /// startup GC.
    fn abort_step_cleanup(&self, step: u64) {
        let prefix = step_prefix(step);
        let mut removed = 0u64;
        if let Ok(entries) = fs::read_dir(&self.cfg.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(&prefix) && name.ends_with(commit::TMP_SUFFIX) {
                    removed += u64::from(remove_if_exists(&entry.path()).unwrap_or(false));
                }
            }
        }
        if let Some(t) = &self.cfg.tier {
            let slab = t.local_dir.join(format!("{prefix}.slab"));
            removed += u64::from(remove_if_exists(&slab).unwrap_or(false));
        }
        if removed > 0 {
            rbio_profile::counters::add_gc_orphans(removed);
        }
    }

    /// Block until `step` is durable on the PFS tier, then rotate old
    /// generations. Without a tier this is a no-op: the direct path is
    /// synchronously durable at [`CheckpointManager::checkpoint`]
    /// return. A generation that can never drain (local tier lost with
    /// no burst copy) surfaces here as [`ManagerError::Tier`]; older
    /// committed generations remain restorable.
    pub fn wait_durable(&self, step: u64) -> Result<(), ManagerError> {
        if let Some(engine) = &self.engine {
            engine.wait_durable(step).map_err(ManagerError::Tier)?;
            self.rotate()?;
        }
        Ok(())
    }

    /// Committed steps present, ascending. Entries that vanish while the
    /// directory is being scanned (concurrent GC, another manager) are
    /// skipped with a warning instead of failing the whole scan; any
    /// other per-entry error propagates as a typed [`ManagerError::Io`].
    pub fn committed_steps(&self) -> Result<Vec<u64>, ManagerError> {
        let mut steps = Vec::new();
        for entry in fs::read_dir(&self.cfg.dir)? {
            let entry = match entry {
                Ok(e) => e,
                Err(e) if entry_vanished(&e) => {
                    eprintln!(
                        "rbio: warning: entry in {} vanished during generation scan (skipped)",
                        self.cfg.dir.display()
                    );
                    continue;
                }
                Err(e) => return Err(ManagerError::Io(e)),
            };
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(num) = name
                .strip_prefix("step")
                .and_then(|s| s.strip_suffix(".commit"))
            {
                if let Ok(step) = num.parse::<u64>() {
                    steps.push(step);
                }
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// Delete everything but the newest `keep` committed steps (markers
    /// first, then files, so a partial delete still looks uncommitted).
    /// Tolerates entries deleted out from under it: a concurrent GC
    /// removing the same old generation is success, not an error.
    fn rotate(&self) -> Result<(), ManagerError> {
        let steps = self.committed_steps()?;
        if steps.len() <= self.cfg.keep {
            return Ok(());
        }
        for &old in &steps[..steps.len() - self.cfg.keep] {
            remove_if_exists(&commit_path(&self.cfg.dir, old))?;
            remove_if_exists(&manifest_path(&self.cfg.dir, old))?;
            let prefix = step_prefix(old);
            // List first, then delete: the snapshot keeps the removal
            // set stable even as entries disappear mid-iteration.
            let mut victims = Vec::new();
            for entry in fs::read_dir(&self.cfg.dir)? {
                let entry = match entry {
                    Ok(e) => e,
                    Err(e) if entry_vanished(&e) => continue,
                    Err(e) => return Err(ManagerError::Io(e)),
                };
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(&prefix)
                    && (name.ends_with(".rbio")
                        || name.ends_with(".rbio.tmp")
                        || name.ends_with(".manifest")
                        || name.ends_with(".manifest.tmp")
                        || name.ends_with(".commit.tmp"))
                {
                    victims.push(entry.path());
                }
            }
            for victim in victims {
                remove_if_exists(&victim)?;
            }
        }
        Ok(())
    }

    /// Verify a committed step's marker against the files on disk.
    pub fn verify(&self, step: u64) -> Result<(), ManagerError> {
        // Markers carry a CRC footer since the tiering era; plain-text
        // markers from older directories pass through unchanged. A
        // present-but-corrupt footer means a torn marker.
        let marker =
            commit::read_committed_text(&commit_path(&self.cfg.dir, step)).map_err(|e| match e
                .kind()
            {
                io::ErrorKind::InvalidData => {
                    ManagerError::CommitMismatch(format!("commit marker: {e}"))
                }
                _ => ManagerError::NothingToRestore,
            })?;
        for line in marker.lines().skip(2) {
            let mut parts = line.split_whitespace();
            let (Some(name), Some(size), Some(crc)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(ManagerError::CommitMismatch(format!(
                    "bad marker line: {line}"
                )));
            };
            let path = self.cfg.dir.join(name);
            let meta = fs::metadata(&path)
                .map_err(|e| ManagerError::CommitMismatch(format!("{name}: {e}")))?;
            if meta.len().to_string() != size {
                return Err(ManagerError::CommitMismatch(format!(
                    "{name}: size {} != recorded {size}",
                    meta.len()
                )));
            }
            let hdr_crc = {
                use std::os::unix::fs::FileExt;
                let f = fs::File::open(&path)?;
                let mut head = vec![0u8; 16.min(meta.len() as usize)];
                f.read_exact_at(&mut head, 0)?;
                if head.len() < 16 {
                    return Err(ManagerError::CommitMismatch(format!("{name}: too short")));
                }
                let hlen =
                    u64::from_le_bytes(head[8..16].try_into().expect("len 8")).min(meta.len());
                let mut hdr = vec![0u8; hlen as usize];
                f.read_exact_at(&mut hdr, 0)?;
                crc32(&hdr)
            };
            if format!("{hdr_crc:08x}") != crc {
                return Err(ManagerError::CommitMismatch(format!(
                    "{name}: header CRC changed"
                )));
            }
            // Data integrity: the commit footer's per-field checksums.
            let bytes = fs::read(&path)?;
            let header = decode_header(&bytes)
                .map_err(|e| ManagerError::CommitMismatch(format!("{name}: {e}")))?;
            if let Some(what) = commit::verify_committed(&bytes, header.expected_file_size()) {
                return Err(ManagerError::CommitMismatch(format!("{name}: {what}")));
            }
        }
        Ok(())
    }

    /// Classify a committed generation: [`GenerationState::Torn`] if its
    /// marker/files fail verification, otherwise Complete or Degraded
    /// per the manifest ("failover:" or "tierloss:" extents).
    /// Generations from before manifests existed verify as Complete.
    pub fn generation_state(&self, step: u64) -> GenerationState {
        if self.verify(step).is_err() {
            return GenerationState::Torn;
        }
        match commit::read_committed_text(&manifest_path(&self.cfg.dir, step)) {
            Ok(m) => {
                if m.lines()
                    .skip(2)
                    .any(|l| l.contains(" failover:") || l.contains(" tierloss:"))
                {
                    GenerationState::Degraded
                } else {
                    GenerationState::Complete
                }
            }
            Err(_) => GenerationState::Complete,
        }
    }

    /// Restore the newest committed-and-verified step. Torn steps are
    /// skipped (newest first) so a damaged latest step falls back to the
    /// one before it; a degraded-but-recoverable step restores normally
    /// (its failover extents carry identical bytes) and is counted in
    /// the profile as a degraded restore.
    /// With a tier configured, restore comes from the *nearest* tier
    /// holding a durable copy: the retained local slab (memory speed),
    /// then the burst directory, then the PFS.
    pub fn restore_latest(&self) -> Result<RestoredData, ManagerError> {
        // Restore-time GC: a restore means the previous run is over, so
        // its half-written `.tmp` orphans are reapable. Only without a
        // drain engine — a live engine may still be publishing through
        // `.tmp` siblings of its own.
        if self.engine.is_none() {
            gc_orphans(&self.cfg.dir, None)?;
        }
        // Nearest tier: the newest drained-and-retained local stage.
        // Only durable generations qualify — a stage whose drain failed
        // or is still in flight is not restart state yet.
        if let Some(engine) = &self.engine {
            if let Some(stage) = engine.newest_retained() {
                let step = stage.step();
                if engine.durable_steps().contains(&step) {
                    let plan = self.plan_for(step)?;
                    if let Ok(data) = read_checkpoint_staged(&plan, |name| stage.assemble(name)) {
                        rbio_profile::counters::add_tier_restores(1);
                        sched::emit(|| Event::TierRestore {
                            step,
                            tier: TierId::Local,
                        });
                        sched::emit(|| Event::RestoreDone { step });
                        return Ok(data);
                    }
                }
            }
        }
        let burst = self.cfg.tier.as_ref().and_then(|t| t.burst_dir.as_deref());
        let steps = self.committed_steps()?;
        for &step in steps.iter().rev() {
            let state = self.generation_state(step);
            if state == GenerationState::Torn {
                continue;
            }
            let plan = self.plan_for(step)?;
            // Burst copies are full committed files (footer and all), so
            // the normal verified read path applies; a missing or torn
            // burst copy falls through to the PFS.
            if let Some(bdir) = burst {
                if let Ok(data) = read_checkpoint(bdir, &plan) {
                    rbio_profile::counters::add_tier_restores(1);
                    sched::emit(|| Event::TierRestore {
                        step,
                        tier: TierId::Burst,
                    });
                    if state == GenerationState::Degraded {
                        rbio_profile::counters::add_degraded_generations(1);
                    }
                    sched::emit(|| Event::RestoreDone { step });
                    return Ok(data);
                }
            }
            match read_checkpoint(&self.cfg.dir, &plan) {
                Ok(data) => {
                    if self.engine.is_some() {
                        sched::emit(|| Event::TierRestore {
                            step,
                            tier: TierId::Pfs,
                        });
                    }
                    if state == GenerationState::Degraded {
                        rbio_profile::counters::add_degraded_generations(1);
                    }
                    sched::emit(|| Event::RestoreDone { step });
                    return Ok(data);
                }
                Err(RestartError::Io(e)) => return Err(ManagerError::Io(e)),
                Err(_) => continue,
            }
        }
        Err(ManagerError::NothingToRestore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(name: &str, keep: usize) -> (CheckpointManager, PathBuf) {
        let dir = std::env::temp_dir().join(format!("rbio-mgr-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = keep;
        (CheckpointManager::new(layout, cfg).expect("manager"), dir)
    }

    fn fill_for(step: u64) -> impl FnMut(u32, usize, &mut [u8]) {
        move |rank, field, buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (step as usize + rank as usize * 3 + field * 7 + i) as u8;
            }
        }
    }

    #[test]
    fn checkpoint_commit_restore_cycle() {
        let (mgr, dir) = mk("cycle", 2);
        mgr.checkpoint(100, fill_for(100)).expect("ck 100");
        assert_eq!(mgr.committed_steps().unwrap(), vec![100]);
        mgr.verify(100).expect("verify");
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 100);
        assert_eq!(restored.field_data(2, 0)[0], (100 + 6) as u8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_only_last_k() {
        let (mgr, dir) = mk("rotate", 2);
        for step in [1u64, 2, 3, 4] {
            mgr.checkpoint(step, fill_for(step)).expect("ck");
        }
        assert_eq!(mgr.committed_steps().unwrap(), vec![3, 4]);
        // Files of rotated steps are gone.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !names.iter().any(|n| n.starts_with("step0000000001")),
            "{names:?}"
        );
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_latest_falls_back_to_previous() {
        let (mgr, dir) = mk("torn", 3);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        mgr.checkpoint(2, fill_for(2)).expect("ck 2");
        // Damage step 2's data after commit (bit rot / torn write).
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_string_lossy()
                    .starts_with("step0000000002")
                    && p.extension().is_some_and(|e| e == "rbio")
            })
            .expect("step-2 file");
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(3).unwrap();
        drop(f);
        assert!(mgr.verify(2).is_err());
        let restored = mgr.restore_latest().expect("fallback");
        assert_eq!(restored.step, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_step_is_invisible() {
        let (mgr, dir) = mk("uncommitted", 2);
        mgr.checkpoint(5, fill_for(5)).expect("ck 5");
        // Simulate a crash mid-step-6: files exist, marker does not.
        let layout = mgr.layout().clone();
        let plan = CheckpointSpec::new(layout, "step0000000006")
            .strategy(Strategy::rbio(2))
            .step(6)
            .plan()
            .expect("plan");
        let payloads = materialize_payloads(&plan, fill_for(6));
        execute(&plan.program, payloads, &ExecConfig::new(&dir)).expect("write, no commit");
        assert_eq!(mgr.committed_steps().unwrap(), vec![5]);
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_mid_step_falls_back_to_previous_generation() {
        let (mgr, dir) = mk("kill", 2);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        let want = mgr.restore_latest().expect("gen 1");

        // Step 2 with a fault armed: writer rank 4 dies after its first
        // written byte — at its commit edge, after data, before rename.
        // Failover is explicitly off: this test pins the pre-failover
        // contract (the step aborts and restart falls back a generation).
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        cfg.failover = false;
        let mgr2 = CheckpointManager::new(mgr.layout().clone(), cfg).expect("manager");
        assert!(
            mgr2.checkpoint(2, fill_for(2)).is_err(),
            "fault must abort the step"
        );

        // The torn step never committed; no final file of step 2 may be
        // half-written (rank 4's stays a .tmp sibling).
        assert_eq!(mgr.committed_steps().unwrap(), vec![1]);
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            if name.starts_with("step0000000002") && name.ends_with(".rbio") {
                let bytes = std::fs::read(dir.join(&name)).unwrap();
                let h = decode_header(&bytes).expect("published file parses");
                assert!(
                    commit::verify_committed(&bytes, h.expected_file_size()).is_none(),
                    "{name}: published but not fully committed"
                );
            }
        }

        // Restart resumes from generation 1, byte-identically.
        let restored = mgr.restore_latest().expect("fallback");
        assert_eq!(restored.step, 1);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_with_failover_completes_degraded_and_restores_identically() {
        // Reference: the same step, same fill, no faults.
        let (ref_mgr, ref_dir) = mk("deg-ref", 2);
        ref_mgr.checkpoint(2, fill_for(2)).expect("reference ck");
        let want = ref_mgr.restore_latest().expect("reference restore");

        // Injected run: writer rank 4 is killed mid-extent; failover (on
        // by default) hands its extent to the surviving writer and the
        // step still commits.
        let dir = std::env::temp_dir().join(format!("rbio-mgr-deg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mgr = CheckpointManager::new(layout, cfg).expect("manager");
        let before = rbio_profile::counters::failover_snapshot();
        let report = mgr.checkpoint(2, fill_for(2)).expect("degraded ck");
        assert_eq!(report.failovers.len(), 1, "{:?}", report.failovers);
        assert_eq!(report.failovers[0].0, 4, "rank 4 is the orphan");

        // The generation is committed, verified, and classified
        // degraded via its manifest.
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        mgr.verify(2).expect("degraded generation verifies");
        assert_eq!(mgr.generation_state(2), GenerationState::Degraded);
        let manifest = commit::read_committed_text(&manifest_path(&dir, 2)).expect("manifest");
        assert!(manifest.contains(" failover:"), "{manifest}");

        // Restore is byte-identical to the uninjected reference and
        // counted as a degraded restore.
        let restored = mgr.restore_latest().expect("degraded restore");
        assert_eq!(restored.step, 2);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        let delta = rbio_profile::counters::failover_snapshot().delta_since(&before);
        assert!(delta.failovers >= 1, "{delta:?}");
        assert!(delta.degraded_generations >= 1, "{delta:?}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    #[test]
    fn restore_walks_past_torn_into_degraded_generation() {
        // Three generations: 1 complete, 2 degraded (failover), 3
        // committed then torn after the fact. Restore must skip 3 and
        // pick the degraded-but-recoverable 2, not fall through to 1.
        let dir = std::env::temp_dir().join(format!("rbio-mgr-walk-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 3;
        let mgr = CheckpointManager::new(layout.clone(), cfg.clone()).expect("manager");
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");

        let mut cfg2 = cfg.clone();
        cfg2.faults = FaultPlan::none().kill_writer_after_bytes(4, 1);
        let mgr2 = CheckpointManager::new(layout, cfg2).expect("manager 2");
        let want = {
            let (ref_mgr, ref_dir) = mk("walk-ref", 2);
            ref_mgr.checkpoint(2, fill_for(2)).expect("reference ck");
            let w = ref_mgr.restore_latest().expect("reference restore");
            std::fs::remove_dir_all(&ref_dir).ok();
            w
        };
        mgr2.checkpoint(2, fill_for(2)).expect("ck 2 degraded");
        mgr.checkpoint(3, fill_for(3)).expect("ck 3");

        // Tear generation 3 post-commit.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_string_lossy()
                    .starts_with("step0000000003")
                    && p.extension().is_some_and(|e| e == "rbio")
            })
            .expect("step-3 file");
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim)
            .unwrap();
        f.set_len(3).unwrap();
        drop(f);

        assert_eq!(mgr.generation_state(3), GenerationState::Torn);
        assert_eq!(mgr.generation_state(2), GenerationState::Degraded);
        assert_eq!(mgr.generation_state(1), GenerationState::Complete);

        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 2, "newest restorable generation wins");
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_if_exists_tolerates_missing_and_surfaces_real_errors() {
        let dir = std::env::temp_dir().join(format!("rbio-mgr-rie-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("gone");
        // A concurrently-deleted entry is success, not a panic or error.
        assert!(!remove_if_exists(&p).expect("missing file is fine"));
        std::fs::write(&p, b"x").unwrap();
        assert!(remove_if_exists(&p).expect("removes existing"));
        assert!(!p.exists());
        // A genuinely unreadable/undeletable entry still surfaces a
        // typed error (here: the target is a non-empty directory).
        let sub = dir.join("subdir");
        std::fs::create_dir(&sub).unwrap();
        std::fs::write(sub.join("f"), b"x").unwrap();
        assert!(remove_if_exists(&sub).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_tolerates_entries_deleted_by_concurrent_manager() {
        let (mgr, dir) = mk("race-gc", 1);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        mgr.checkpoint(2, fill_for(2)).expect("ck 2 + rotate");
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        // Simulate a second manager having partially GC'd an old
        // generation: the marker exists again but (some of) its data
        // files are already gone. Rotation must clean up what is left
        // and not fail on what is not.
        std::fs::write(commit_path(&dir, 1), "step 1\nfiles 0\n").unwrap();
        mgr.rotate().expect("rotate past half-deleted generation");
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        // Same with a data file left behind but its siblings vanished.
        std::fs::write(commit_path(&dir, 1), "step 1\nfiles 0\n").unwrap();
        std::fs::write(dir.join("step0000000001-orphan.rbio"), b"stale").unwrap();
        mgr.rotate().expect("rotate reaps the orphan");
        assert!(!dir.join("step0000000001-orphan.rbio").exists());
        assert_eq!(mgr.committed_steps().unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_and_restore_gc_reap_orphaned_tmps() {
        let (mgr, dir) = mk("gc-orphans", 2);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        drop(mgr);
        // A crashed predecessor left half-written commit tmps behind.
        std::fs::write(dir.join("step0000000002.00000.rbio.tmp"), b"half").unwrap();
        std::fs::write(dir.join("step0000000002.manifest.tmp"), b"half").unwrap();
        let before = rbio_profile::counters::scrub_snapshot();
        let mgr = CheckpointManager::new(
            DataLayout::uniform(8, &[("u", 1024), ("v", 256)]),
            ManagerConfig::new(&dir, Strategy::rbio(2)),
        )
        .expect("reopen");
        assert!(
            !dir.join("step0000000002.00000.rbio.tmp").exists(),
            "startup GC must reap orphaned tmps"
        );
        assert!(!dir.join("step0000000002.manifest.tmp").exists());
        let delta = rbio_profile::counters::scrub_snapshot().delta_since(&before);
        assert!(
            delta.gc_orphans >= 2,
            "gc_orphans counted {}",
            delta.gc_orphans
        );
        // Orphans appearing later are reaped at restore time too (no
        // tier engine is running, so the sweep is safe).
        std::fs::write(dir.join("step0000000003.00000.rbio.tmp"), b"half").unwrap();
        let restored = mgr.restore_latest().expect("restore");
        assert_eq!(restored.step, 1, "GC must not disturb committed data");
        assert!(
            !dir.join("step0000000003.00000.rbio.tmp").exists(),
            "restore-time GC must reap orphaned tmps"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manager_rank_kill_leaves_no_metadata_final_files() {
        // The manifest and marker are published through the fault layer
        // as MANAGER_RANK: killing that rank mid-write must abort the
        // step with neither final metadata name present (only .tmp
        // siblings), leaving the previous generation authoritative.
        let (mgr, dir) = mk("meta-kill", 2);
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        let mut cfg = ManagerConfig::new(&dir, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.faults = FaultPlan::none().kill_writer_after_bytes(MANAGER_RANK, 1);
        let mgr2 = CheckpointManager::new(mgr.layout().clone(), cfg).expect("manager");
        assert!(
            mgr2.checkpoint(2, fill_for(2)).is_err(),
            "metadata-writer kill must abort the step"
        );
        assert!(
            !manifest_path(&dir, 2).exists(),
            "killed manifest write must not publish a final manifest"
        );
        assert!(
            !commit_path(&dir, 2).exists(),
            "no marker may exist for the aborted step"
        );
        assert_eq!(mgr.committed_steps().unwrap(), vec![1]);
        let restored = mgr.restore_latest().expect("fallback");
        assert_eq!(restored.step, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_checkpoint_is_byte_identical_and_restores_from_local_tier() {
        // Direct-to-PFS reference run, same step and fill.
        let (ref_mgr, ref_dir) = mk("tier-ref", 2);
        ref_mgr.checkpoint(7, fill_for(7)).expect("reference ck");
        let want = ref_mgr.restore_latest().expect("reference restore");

        let base = std::env::temp_dir().join(format!("rbio-mgr-tier-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let (pfs, local) = (base.join("pfs"), base.join("local"));
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&pfs, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.tier = Some(crate::tier::TierConfig::new(&local).slab_capacity(1 << 20));
        let mgr = CheckpointManager::new(layout, cfg).expect("manager");
        mgr.checkpoint(7, fill_for(7)).expect("tiered ck");
        mgr.wait_durable(7).expect("drain to PFS");
        assert_eq!(mgr.committed_steps().unwrap(), vec![7]);
        mgr.verify(7).expect("drained generation verifies");
        assert_eq!(mgr.generation_state(7), GenerationState::Complete);

        // Drained PFS bytes are identical to the direct path's.
        let mut compared = 0;
        for entry in std::fs::read_dir(&pfs).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "rbio") {
                let name = p.file_name().unwrap().to_os_string();
                let direct = std::fs::read(ref_dir.join(&name)).expect("direct twin");
                assert_eq!(std::fs::read(&p).unwrap(), direct, "{name:?}");
                compared += 1;
            }
        }
        assert!(compared > 0, "no checkpoint files drained");

        // Restore comes from the retained local stage, byte-identical.
        let before = rbio_profile::counters::tier_snapshot();
        let restored = mgr.restore_latest().expect("tier restore");
        assert_eq!(restored.step, 7);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        let delta = rbio_profile::counters::tier_snapshot().delta_since(&before);
        assert!(delta.tier_restores >= 1, "{delta:?}");
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    #[test]
    fn tier_loss_mid_drain_degrades_generation_and_restores_identically() {
        let (ref_mgr, ref_dir) = mk("tloss-ref", 2);
        ref_mgr.checkpoint(3, fill_for(3)).expect("reference ck");
        let want = ref_mgr.restore_latest().expect("reference restore");

        let base = std::env::temp_dir().join(format!("rbio-mgr-tloss-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let (pfs, local, burst) = (base.join("pfs"), base.join("local"), base.join("burst"));
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&pfs, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.tier = Some(
            crate::tier::TierConfig::new(&local)
                .burst_dir(&burst)
                .slab_capacity(1 << 20),
        );
        let mgr = CheckpointManager::new(layout, cfg).expect("manager");
        // Lose the node-local tier exactly between the burst and PFS
        // hops of the drain: every file must be recovered from its
        // burst copy and the generation lands Degraded, not lost.
        mgr.tier_engine().unwrap().lose_local_between_hops();
        mgr.checkpoint(3, fill_for(3)).expect("staged ck");
        mgr.wait_durable(3).expect("recovered from burst tier");
        assert_eq!(mgr.generation_state(3), GenerationState::Degraded);
        let manifest = commit::read_committed_text(&manifest_path(&pfs, 3)).expect("manifest");
        assert!(manifest.contains(" tierloss:burst"), "{manifest}");

        // The local tier is gone; restore still succeeds byte-for-byte
        // from the surviving tiers.
        let restored = mgr.restore_latest().expect("degraded restore");
        assert_eq!(restored.step, 3);
        for r in 0..8u32 {
            for f in 0..2usize {
                assert_eq!(
                    restored.field_data(r, f),
                    want.field_data(r, f),
                    "rank {r} field {f}"
                );
            }
        }
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    #[test]
    fn tier_loss_without_burst_fails_step_but_older_generation_survives() {
        let base = std::env::temp_dir().join(format!("rbio-mgr-tfail-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let (pfs, local) = (base.join("pfs"), base.join("local"));
        let layout = DataLayout::uniform(8, &[("u", 1024), ("v", 256)]);
        let mut cfg = ManagerConfig::new(&pfs, Strategy::rbio(2));
        cfg.keep = 2;
        cfg.tier = Some(crate::tier::TierConfig::new(&local).slab_capacity(1 << 20));
        let mgr = CheckpointManager::new(layout, cfg).expect("manager");
        mgr.checkpoint(1, fill_for(1)).expect("ck 1");
        mgr.wait_durable(1).expect("gen 1 durable");

        mgr.tier_engine().unwrap().lose_local_between_hops();
        mgr.checkpoint(2, fill_for(2))
            .expect("staging itself succeeds");
        assert!(
            matches!(mgr.wait_durable(2), Err(ManagerError::Tier(_))),
            "no burst tier: the lost generation can never become durable"
        );
        assert_eq!(mgr.committed_steps().unwrap(), vec![1]);
        let restored = mgr.restore_latest().expect("older generation");
        assert_eq!(restored.step, 1);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn verify_detects_post_commit_tampering() {
        let (mgr, dir) = mk("tamper", 2);
        mgr.checkpoint(9, fill_for(9)).expect("ck");
        // Corrupt a header byte.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "rbio"))
            .expect("file");
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[20] ^= 0x5A;
        std::fs::write(&victim, bytes).unwrap();
        assert!(matches!(
            mgr.verify(9),
            Err(ManagerError::CommitMismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
