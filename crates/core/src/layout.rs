//! Checkpoint data layout: which fields exist and how many bytes each rank
//! contributes to each.
//!
//! NekCEM checkpoints six field arrays (Ex, Ey, Ez, Hx, Hy, Hz); other
//! applications have their own lists. The layout is the single source of
//! truth for every offset computation: a rank's in-memory payload packs its
//! field blocks back to back, and an output file packs, after the master
//! header, each field's blocks across its covered rank range in rank order
//! ("sorted mostly in the order of fields" — §III-B of the paper).

/// Per-rank byte counts for one field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldSizes {
    /// Every rank contributes the same number of bytes.
    Uniform(u64),
    /// Per-rank byte counts (length must equal the rank count).
    PerRank(Vec<u64>),
}

/// One checkpointed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name (stored in the file header; e.g. `"Ex"`).
    pub name: String,
    /// Per-rank sizes.
    pub sizes: FieldSizes,
}

/// The complete layout of one checkpoint step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    nranks: u32,
    fields: Vec<FieldSpec>,
}

impl DataLayout {
    /// A layout where every rank contributes the same bytes per field:
    /// `fields` is a list of `(name, bytes_per_rank)`.
    pub fn uniform(nranks: u32, fields: &[(&str, u64)]) -> Self {
        assert!(nranks > 0, "need at least one rank");
        DataLayout {
            nranks,
            fields: fields
                .iter()
                .map(|&(name, sz)| FieldSpec {
                    name: name.to_string(),
                    sizes: FieldSizes::Uniform(sz),
                })
                .collect(),
        }
    }

    /// A fully general layout.
    pub fn new(nranks: u32, fields: Vec<FieldSpec>) -> Self {
        assert!(nranks > 0, "need at least one rank");
        for f in &fields {
            if let FieldSizes::PerRank(v) = &f.sizes {
                assert_eq!(
                    v.len(),
                    nranks as usize,
                    "field {}: per-rank size list must have nranks entries",
                    f.name
                );
            }
        }
        DataLayout { nranks, fields }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.nranks
    }

    /// The fields, in file order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Number of fields.
    pub fn nfields(&self) -> usize {
        self.fields.len()
    }

    /// Bytes rank `rank` contributes to field `field`.
    pub fn field_bytes(&self, rank: u32, field: usize) -> u64 {
        debug_assert!(rank < self.nranks);
        match &self.fields[field].sizes {
            FieldSizes::Uniform(sz) => *sz,
            FieldSizes::PerRank(v) => v[rank as usize],
        }
    }

    /// Total payload bytes of `rank` (all fields).
    pub fn rank_payload_bytes(&self, rank: u32) -> u64 {
        (0..self.nfields()).map(|f| self.field_bytes(rank, f)).sum()
    }

    /// Offset of `field`'s block inside `rank`'s packed payload.
    pub fn payload_field_off(&self, rank: u32, field: usize) -> u64 {
        (0..field).map(|f| self.field_bytes(rank, f)).sum()
    }

    /// Total bytes of `field` across ranks `r0..r1`.
    pub fn field_total(&self, field: usize, r0: u32, r1: u32) -> u64 {
        match &self.fields[field].sizes {
            FieldSizes::Uniform(sz) => sz * u64::from(r1 - r0),
            FieldSizes::PerRank(v) => v[r0 as usize..r1 as usize].iter().sum(),
        }
    }

    /// Offset of `rank`'s block within `field`'s data region of a file
    /// covering ranks `r0..r1` (i.e. the prefix sum over `r0..rank`).
    pub fn field_rank_off(&self, field: usize, r0: u32, rank: u32) -> u64 {
        self.field_total(field, r0, rank)
    }

    /// Total data bytes (all fields) across ranks `r0..r1`.
    pub fn data_total(&self, r0: u32, r1: u32) -> u64 {
        (0..self.nfields())
            .map(|f| self.field_total(f, r0, r1))
            .sum()
    }

    /// Total checkpoint bytes across all ranks (excluding headers).
    pub fn total_bytes(&self) -> u64 {
        self.data_total(0, self.nranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> DataLayout {
        DataLayout::new(
            3,
            vec![
                FieldSpec {
                    name: "a".into(),
                    sizes: FieldSizes::Uniform(10),
                },
                FieldSpec {
                    name: "b".into(),
                    sizes: FieldSizes::PerRank(vec![1, 2, 3]),
                },
            ],
        )
    }

    #[test]
    fn uniform_layout_sizes() {
        let l = DataLayout::uniform(4, &[("Ex", 100), ("Ey", 50)]);
        assert_eq!(l.nranks(), 4);
        assert_eq!(l.nfields(), 2);
        assert_eq!(l.field_bytes(2, 0), 100);
        assert_eq!(l.rank_payload_bytes(0), 150);
        assert_eq!(l.payload_field_off(0, 1), 100);
        assert_eq!(l.field_total(1, 1, 3), 100);
        assert_eq!(l.total_bytes(), 600);
    }

    #[test]
    fn per_rank_sizes() {
        let l = mixed();
        assert_eq!(l.field_bytes(0, 1), 1);
        assert_eq!(l.field_bytes(2, 1), 3);
        assert_eq!(l.rank_payload_bytes(2), 13);
        assert_eq!(l.field_total(1, 0, 3), 6);
        assert_eq!(l.field_rank_off(1, 0, 2), 3);
        assert_eq!(l.field_rank_off(1, 1, 2), 2);
        assert_eq!(l.data_total(0, 3), 36);
    }

    #[test]
    #[should_panic(expected = "per-rank size list")]
    fn wrong_per_rank_len_panics() {
        DataLayout::new(
            2,
            vec![FieldSpec {
                name: "x".into(),
                sizes: FieldSizes::PerRank(vec![1]),
            }],
        );
    }

    #[test]
    fn zero_sized_fields_are_fine() {
        let l = DataLayout::uniform(2, &[("empty", 0), ("x", 5)]);
        assert_eq!(l.rank_payload_bytes(0), 5);
        assert_eq!(l.payload_field_off(0, 1), 0);
        assert_eq!(l.total_bytes(), 10);
    }
}
