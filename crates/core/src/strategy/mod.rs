//! Checkpoint strategies: 1PFPP, coIO and rbIO.
//!
//! A [`CheckpointSpec`] (layout + strategy + tuning) compiles into a
//! [`CheckpointPlan`] whose [`rbio_plan::Program`] can be executed by the
//! real threaded executor ([`crate::exec`]) or the simulated Blue Gene/P
//! (`rbio-machine`). The plan is validated on construction: message
//! matching, deadlock-freedom, and exact write coverage of every output
//! file.

mod coio;
mod pfpp;
mod rbio_strategy;

use rbio_plan::{validate, CoverageMode, Program, ProgramBuilder, ValidateError};

use crate::format;
use crate::layout::DataLayout;

/// How rbIO writers commit aggregated data (§IV-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbIoCommit {
    /// `nf = ng`: every writer owns one file and commits with independent
    /// `MPI_File_write_at` on `MPI_COMM_SELF`, buffering multiple fields
    /// per flush. The paper's best configuration.
    IndependentPerWriter,
    /// `nf = 1`: writers jointly commit one shared file with a collective
    /// write per field (application two-phase stacked on MPI-IO two-phase).
    CollectiveShared,
}

/// A checkpoint I/O strategy with its tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One POSIX file per processor (`nf = np`).
    OnePfpp,
    /// MPI-IO collective writes into `nf` files (split-collective groups of
    /// `np/nf` ranks); `aggregator_ratio` ranks share one I/O aggregator
    /// (the Blue Gene default is 32 in VN mode).
    CoIo {
        /// Number of output files.
        nf: u32,
        /// Ranks per aggregator within each group.
        aggregator_ratio: u32,
    },
    /// Reduced-blocking I/O: `ng` dedicated writers, each aggregating the
    /// other ranks of its group over nonblocking sends.
    RbIo {
        /// Number of writer ranks (= groups).
        ng: u32,
        /// Commit mode (`nf = ng` vs `nf = 1`).
        commit: RbIoCommit,
    },
}

impl Strategy {
    /// coIO with the Blue Gene default 32:1 aggregator ratio.
    pub fn coio(nf: u32) -> Strategy {
        Strategy::CoIo {
            nf,
            aggregator_ratio: 32,
        }
    }

    /// rbIO with independent per-writer files (`nf = ng`).
    pub fn rbio(ng: u32) -> Strategy {
        Strategy::RbIo {
            ng,
            commit: RbIoCommit::IndependentPerWriter,
        }
    }

    /// Short human-readable label used in reports (“1PFPP”, “coIO nf=8”, …).
    pub fn label(&self) -> String {
        match self {
            Strategy::OnePfpp => "1PFPP".to_string(),
            Strategy::CoIo { nf, .. } => format!("coIO nf={nf}"),
            Strategy::RbIo {
                ng,
                commit: RbIoCommit::IndependentPerWriter,
            } => {
                format!("rbIO ng={ng} nf=ng")
            }
            Strategy::RbIo {
                ng,
                commit: RbIoCommit::CollectiveShared,
            } => {
                format!("rbIO ng={ng} nf=1")
            }
        }
    }
}

/// Filesystem/exchange tunables shared by the strategies.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Filesystem block size used for domain alignment (GPFS: 4 MiB).
    pub fs_block_size: u64,
    /// Align collective file domains to block boundaries (§V-B).
    pub align_domains: bool,
    /// ROMIO collective buffer size (exchange round granularity).
    pub cb_buffer_size: u64,
    /// rbIO writer commit buffer: aggregated bytes per independent write.
    /// Also caps the size of a single 1PFPP `WriteAt` (large fields chunk).
    pub writer_buffer: u64,
    /// Coalesce all fields of a collective commit (coIO, rbIO `nf = 1`)
    /// into ONE batched collective write — a single exchange and a single
    /// barrier per file instead of one per field. `false` (default) keeps
    /// the paper's flush-per-field semantics ("all the processors commit
    /// data by fields"); `true` trades them for fewer synchronization
    /// points, feeding the pipelined writers one large handoff per step.
    pub coalesce_fields: bool,
    /// Cap on concurrently-committing independent rbIO writers, after
    /// Fig. 8's `nf ≈ 1024` sweet spot: creating many files at once
    /// degrades past that point, so when `ng` exceeds this the writers
    /// open/write/commit in waves of `nf_sweet`, chained by token
    /// messages. `None` (default) = unlimited (all writers concurrent).
    pub nf_sweet: Option<u32>,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            fs_block_size: 4 << 20,
            align_domains: true,
            cb_buffer_size: 16 << 20,
            writer_buffer: 16 << 20,
            coalesce_fields: false,
            nf_sweet: None,
        }
    }
}

/// Everything needed to build one checkpoint step's plan.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Data layout (ranks, fields, sizes).
    pub layout: DataLayout,
    /// Application name stored in file headers.
    pub app: String,
    /// Checkpoint step number.
    pub step: u64,
    /// Subdirectory/prefix for this step's files (e.g. `"step000100"`).
    pub prefix: String,
    /// Strategy and its parameters.
    pub strategy: Strategy,
    /// Tuning knobs.
    pub tuning: Tuning,
}

impl CheckpointSpec {
    /// A spec with defaults: 1PFPP, app `"nekcem"`, step 0, default tuning.
    pub fn new(layout: DataLayout, prefix: impl Into<String>) -> Self {
        CheckpointSpec {
            layout,
            app: "nekcem".to_string(),
            step: 0,
            prefix: prefix.into(),
            strategy: Strategy::OnePfpp,
            tuning: Tuning::default(),
        }
    }

    /// Set the strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the step number.
    pub fn step(mut self, step: u64) -> Self {
        self.step = step;
        self
    }

    /// Set the tuning knobs.
    pub fn tuning(mut self, t: Tuning) -> Self {
        self.tuning = t;
        self
    }

    /// Compile the spec into a validated plan.
    pub fn plan(&self) -> Result<CheckpointPlan, PlanError> {
        let np = self.layout.nranks();
        match self.strategy {
            Strategy::OnePfpp => {}
            Strategy::CoIo {
                nf,
                aggregator_ratio,
            } => {
                if nf == 0 || nf > np {
                    return Err(PlanError::BadParam(format!("coIO nf={nf} with np={np}")));
                }
                if aggregator_ratio == 0 {
                    return Err(PlanError::BadParam("aggregator_ratio=0".into()));
                }
            }
            Strategy::RbIo { ng, .. } => {
                if ng == 0 || ng > np {
                    return Err(PlanError::BadParam(format!("rbIO ng={ng} with np={np}")));
                }
            }
        }
        let mut b = PlanBuilder::new(self);
        match self.strategy {
            Strategy::OnePfpp => pfpp::build(&mut b),
            Strategy::CoIo {
                nf,
                aggregator_ratio,
            } => coio::build(&mut b, nf, aggregator_ratio),
            Strategy::RbIo { ng, commit } => rbio_strategy::build(&mut b, ng, commit),
        }
        let plan = b.finish();
        validate(&plan.program, CoverageMode::ExactWrite).map_err(PlanError::Invalid)?;
        Ok(plan)
    }
}

/// Plan construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A strategy parameter is out of range.
    BadParam(String),
    /// The generated plan failed validation (a bug in the builder).
    Invalid(ValidateError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadParam(s) => write!(f, "bad parameter: {s}"),
            PlanError::Invalid(e) => write!(f, "generated plan invalid: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One output file of a plan, with the rank range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFile {
    /// Path relative to the checkpoint directory.
    pub name: String,
    /// First covered rank.
    pub r0: u32,
    /// One past the last covered rank.
    pub r1: u32,
}

/// Per-rank payload metadata: what sits in front of the packed field blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankPayloadMeta {
    /// Index into [`CheckpointPlan::plan_files`] of the file whose master
    /// header this rank materializes at payload offset 0 (file owners only).
    pub header_for_file: Option<usize>,
    /// Length of that header (0 for non-owners).
    pub header_len: u64,
}

/// A compiled, validated checkpoint plan.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// The per-rank op programs.
    pub program: Program,
    /// The data layout the plan was built from.
    pub layout: DataLayout,
    /// Application name in file headers.
    pub app: String,
    /// Checkpoint step.
    pub step: u64,
    /// Output files (indices match `program.files`).
    pub plan_files: Vec<PlanFile>,
    /// Per-rank payload metadata.
    pub payload_meta: Vec<RankPayloadMeta>,
    /// The strategy that produced this plan.
    pub strategy: Strategy,
}

impl CheckpointPlan {
    /// Total bytes this checkpoint writes (headers + field data).
    pub fn total_file_bytes(&self) -> u64 {
        self.program.files.iter().map(|f| f.size).sum()
    }
}

/// Split `0..np` into `k` contiguous groups with sizes differing by at most
/// one. Returns `(start, end)` pairs.
pub(crate) fn split_groups(np: u32, k: u32) -> Vec<(u32, u32)> {
    debug_assert!(k >= 1 && k <= np);
    let base = np / k;
    let rem = np % k;
    let mut out = Vec::with_capacity(k as usize);
    let mut start = 0;
    for i in 0..k {
        let len = base + u32::from(i < rem);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, np);
    out
}

/// Shared state while a strategy assembles its plan.
pub(crate) struct PlanBuilder<'a> {
    pub spec: &'a CheckpointSpec,
    pub b: ProgramBuilder,
    pub plan_files: Vec<PlanFile>,
    pub payload_meta: Vec<RankPayloadMeta>,
}

impl<'a> PlanBuilder<'a> {
    fn new(spec: &'a CheckpointSpec) -> Self {
        let np = spec.layout.nranks();
        // Payload sizes start as bare field data; owners grow by header len
        // when a strategy assigns them a file.
        let payload: Vec<u64> = (0..np).map(|r| spec.layout.rank_payload_bytes(r)).collect();
        PlanBuilder {
            spec,
            b: ProgramBuilder::new(payload),
            plan_files: Vec::new(),
            payload_meta: vec![
                RankPayloadMeta {
                    header_for_file: None,
                    header_len: 0
                };
                np as usize
            ],
        }
    }

    /// Register an output file covering ranks `r0..r1`, owned (header-wise)
    /// by `owner`. Returns the plan file id.
    pub fn add_file(&mut self, r0: u32, r1: u32, owner: u32) -> rbio_plan::FileId {
        let spec = self.spec;
        let name = format!("{}.{:05}.rbio", spec.prefix, self.plan_files.len());
        let size = format::file_size(&spec.layout, &spec.app, r0, r1);
        // Checkpoint files publish atomically: writes land in a `.tmp`
        // sibling and the owner's `Op::Commit` renames it into place.
        let id = self.b.file_atomic(name.clone(), size);
        self.plan_files.push(PlanFile { name, r0, r1 });
        let hlen = format::header_len(&spec.layout, &spec.app, r0, r1);
        let meta = &mut self.payload_meta[owner as usize];
        assert!(
            meta.header_for_file.is_none(),
            "rank {owner} already owns a file header"
        );
        meta.header_for_file = Some(self.plan_files.len() - 1);
        meta.header_len = hlen;
        id
    }

    /// Header length of the file owned by `rank` (0 when it owns none) —
    /// i.e. the offset of the rank's first field block inside its payload.
    pub fn payload_base(&self, rank: u32) -> u64 {
        self.payload_meta[rank as usize].header_len
    }

    fn finish(self) -> CheckpointPlan {
        // Grow owner payloads by their header bytes.
        let np = self.spec.layout.nranks();
        let mut payload: Vec<u64> = (0..np)
            .map(|r| self.spec.layout.rank_payload_bytes(r))
            .collect();
        for (r, meta) in self.payload_meta.iter().enumerate() {
            payload[r] += meta.header_len;
        }
        // ProgramBuilder was created with bare sizes; rebuild with the final
        // ones (ops were pushed with offsets that already assume the header
        // prefix, so only the size table changes).
        let mut program = self.b.build();
        program.payload = payload;
        CheckpointPlan {
            program,
            layout: self.spec.layout.clone(),
            app: self.spec.app.clone(),
            step: self.spec.step,
            plan_files: self.plan_files,
            payload_meta: self.payload_meta,
            strategy: self.spec.strategy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_groups_balanced() {
        assert_eq!(split_groups(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(split_groups(8, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(split_groups(3, 3), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(split_groups(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::OnePfpp.label(), "1PFPP");
        assert_eq!(Strategy::coio(8).label(), "coIO nf=8");
        assert_eq!(Strategy::rbio(4).label(), "rbIO ng=4 nf=ng");
        assert_eq!(
            Strategy::RbIo {
                ng: 4,
                commit: RbIoCommit::CollectiveShared
            }
            .label(),
            "rbIO ng=4 nf=1"
        );
    }

    #[test]
    fn bad_params_rejected() {
        let layout = DataLayout::uniform(8, &[("x", 10)]);
        let spec = CheckpointSpec::new(layout.clone(), "t").strategy(Strategy::coio(0));
        assert!(matches!(spec.plan(), Err(PlanError::BadParam(_))));
        let spec = CheckpointSpec::new(layout.clone(), "t").strategy(Strategy::coio(9));
        assert!(matches!(spec.plan(), Err(PlanError::BadParam(_))));
        let spec = CheckpointSpec::new(layout.clone(), "t").strategy(Strategy::rbio(0));
        assert!(matches!(spec.plan(), Err(PlanError::BadParam(_))));
        let spec = CheckpointSpec::new(layout, "t").strategy(Strategy::CoIo {
            nf: 2,
            aggregator_ratio: 0,
        });
        assert!(matches!(spec.plan(), Err(PlanError::BadParam(_))));
    }
}
