//! 1PFPP: one POSIX file per processor.
//!
//! Every rank creates its own output file and writes its header and field
//! blocks directly (§IV-A). Simple and portable — and the baseline whose
//! metadata storm the paper's Fig. 9 shows collapsing at 16Ki files in one
//! directory.

use rbio_plan::{DataRef, Op};

use crate::format;
use crate::strategy::PlanBuilder;

pub(crate) fn build(pb: &mut PlanBuilder<'_>) {
    let layout = pb.spec.layout.clone();
    let app = pb.spec.app.clone();
    // Large fields chunk at the writer buffer size so a pipelined writer
    // can overlap the flush of one chunk with staging the next.
    let chunk = pb.spec.tuning.writer_buffer.max(1);
    for rank in 0..layout.nranks() {
        let file = pb.add_file(rank, rank + 1, rank);
        let hdr = pb.payload_base(rank);
        pb.b.push(rank, Op::Open { file, create: true });
        pb.b.push(
            rank,
            Op::WriteAt {
                file,
                offset: 0,
                src: DataRef::Own { off: 0, len: hdr },
            },
        );
        for f in 0..layout.nfields() {
            let len = layout.field_bytes(rank, f);
            if len == 0 {
                continue;
            }
            let base = format::field_data_off(&layout, &app, rank, rank + 1, f);
            let src_base = hdr + layout.payload_field_off(rank, f);
            let mut off = 0u64;
            while off < len {
                let piece = chunk.min(len - off);
                pb.b.push(
                    rank,
                    Op::WriteAt {
                        file,
                        offset: base + off,
                        src: DataRef::Own {
                            off: src_base + off,
                            len: piece,
                        },
                    },
                );
                off += piece;
            }
        }
        pb.b.push(rank, Op::Close { file });
        pb.b.push(rank, Op::Commit { file });
    }
}

#[cfg(test)]
mod tests {
    use crate::layout::DataLayout;
    use crate::strategy::{CheckpointSpec, Strategy};

    #[test]
    fn one_file_per_rank() {
        let layout = DataLayout::uniform(6, &[("Ex", 100), ("Ey", 50)]);
        let plan = CheckpointSpec::new(layout, "t")
            .strategy(Strategy::OnePfpp)
            .plan()
            .unwrap();
        assert_eq!(plan.plan_files.len(), 6);
        let stats = plan.program.stats();
        assert_eq!(stats.opens, 6);
        assert_eq!(stats.closes, 6);
        // Header + 2 fields per rank.
        assert_eq!(stats.writes, 18);
        assert_eq!(stats.sends, 0);
        assert_eq!(stats.barriers, 0);
        // Every rank owns its file's header.
        assert!(plan
            .payload_meta
            .iter()
            .all(|m| m.header_for_file.is_some()));
        assert_eq!(plan.program.writer_ranks().len(), 6);
    }

    #[test]
    fn zero_length_field_skipped() {
        let layout = DataLayout::uniform(2, &[("empty", 0), ("x", 10)]);
        let plan = CheckpointSpec::new(layout, "t").plan().unwrap();
        // Header + 1 nonempty field per rank.
        assert_eq!(plan.program.stats().writes, 4);
    }

    #[test]
    fn large_fields_chunk_at_writer_buffer() {
        use crate::strategy::Tuning;
        let layout = DataLayout::uniform(2, &[("big", 10_000)]);
        let plan = CheckpointSpec::new(layout, "t")
            .tuning(Tuning {
                writer_buffer: 4096,
                ..Tuning::default()
            })
            .plan()
            .unwrap();
        // Header + ceil(10000/4096) = 3 field chunks per rank.
        assert_eq!(plan.program.stats().writes, 2 * 4);
    }
}
