//! coIO: tuned MPI-IO collective writes (§IV-B).
//!
//! Ranks split into `nf` contiguous groups; each group collectively writes
//! one shared file, field by field ("in both cases of coIO, all the
//! processors commit data by fields"). Within a group the write expands
//! into the ROMIO two-phase exchange (`rbio-mpiio`) with one aggregator per
//! `aggregator_ratio` ranks, domains aligned to filesystem blocks.

use rbio_mpiio::domains::DomainConfig;
use rbio_mpiio::{plan_collective_write, CollectiveWrite, Contribution, SrcKind, TwoPhaseConfig};
use rbio_plan::{DataRef, Op};

use crate::format;
use crate::strategy::{split_groups, PlanBuilder};

pub(crate) fn build(pb: &mut PlanBuilder<'_>, nf: u32, aggregator_ratio: u32) {
    let layout = pb.spec.layout.clone();
    let app = pb.spec.app.clone();
    let tuning = pb.spec.tuning;
    let np = layout.nranks();

    for (g0, g1) in split_groups(np, nf) {
        let leader = g0;
        let file = pb.add_file(g0, g1, leader);
        let hdr = pb.payload_base(leader);
        let group: Vec<u32> = (g0..g1).collect();
        let comm = pb.b.comm(group.clone());

        // The leader creates the file and writes the master header; the
        // rest open after the create is visible.
        pb.b.push(leader, Op::Open { file, create: true });
        pb.b.push(
            leader,
            Op::WriteAt {
                file,
                offset: 0,
                src: DataRef::Own { off: 0, len: hdr },
            },
        );
        pb.b.push_all(group.iter().copied(), Op::Barrier { comm });
        for &r in &group[1..] {
            pb.b.push(
                r,
                Op::Open {
                    file,
                    create: false,
                },
            );
        }

        // Aggregators: every `aggregator_ratio`-th rank of the group (the
        // Blue Gene MPI-IO library spreads them one per node across psets;
        // with 4 ranks/node a stride of 32 lands on every 8th node).
        let aggregators: Vec<u32> = group
            .iter()
            .copied()
            .step_by(aggregator_ratio as usize)
            .collect();

        // Contributions of each field's collective write.
        let per_field: Vec<Vec<Contribution>> = (0..layout.nfields())
            .map(|f| {
                let field_base = format::field_data_off(&layout, &app, g0, g1, f);
                group
                    .iter()
                    .filter_map(|&r| {
                        let len = layout.field_bytes(r, f);
                        if len == 0 {
                            return None;
                        }
                        Some(Contribution {
                            rank: r,
                            file_off: field_base + layout.field_rank_off(f, g0, r),
                            src_off: pb.payload_base(r) + layout.payload_field_off(r, f),
                            len,
                            src: SrcKind::Own,
                        })
                    })
                    .collect()
            })
            .collect();
        let two_phase = |tag: u64| TwoPhaseConfig {
            domain: DomainConfig {
                block_size: tuning.fs_block_size,
                align: tuning.align_domains,
            },
            cb_buffer_size: tuning.cb_buffer_size,
            tag,
        };
        if tuning.coalesce_fields {
            // One batched collective covering every field: a single
            // exchange and a single barrier per file.
            let contributions: Vec<Contribution> = per_field.into_iter().flatten().collect();
            plan_collective_write(
                &mut pb.b,
                &CollectiveWrite {
                    file,
                    aggregators: aggregators.clone(),
                    contributions,
                    agg_staging_base: 0,
                },
                &two_phase(0),
            );
            pb.b.push_all(group.iter().copied(), Op::Barrier { comm });
        } else {
            // One collective write per field.
            for (f, contributions) in per_field.into_iter().enumerate() {
                plan_collective_write(
                    &mut pb.b,
                    &CollectiveWrite {
                        file,
                        aggregators: aggregators.clone(),
                        contributions,
                        agg_staging_base: 0,
                    },
                    &two_phase(f as u64),
                );
                // The collective returns synchronized: a field must be
                // committed before the next begins (paper §V-B).
                pb.b.push_all(group.iter().copied(), Op::Barrier { comm });
            }
        }
        for &r in &group {
            pb.b.push(r, Op::Close { file });
        }
        pb.b.push(leader, Op::Commit { file });
    }
}

#[cfg(test)]
mod tests {
    use crate::layout::DataLayout;
    use crate::strategy::{CheckpointSpec, Strategy, Tuning};
    use rbio_plan::Op;

    fn spec(np: u32, nf: u32, ratio: u32) -> CheckpointSpec {
        let layout = DataLayout::uniform(np, &[("Ex", 1000), ("Ey", 500)]);
        CheckpointSpec::new(layout, "t")
            .strategy(Strategy::CoIo {
                nf,
                aggregator_ratio: ratio,
            })
            .tuning(Tuning {
                fs_block_size: 4096,
                align_domains: true,
                cb_buffer_size: 8192,
                writer_buffer: 8192,
                ..Tuning::default()
            })
    }

    #[test]
    fn single_shared_file() {
        let plan = spec(16, 1, 4).plan().unwrap();
        assert_eq!(plan.plan_files.len(), 1);
        assert_eq!(plan.plan_files[0].r0, 0);
        assert_eq!(plan.plan_files[0].r1, 16);
        // Everybody opens the shared file.
        assert_eq!(plan.program.stats().opens, 16);
        // Only aggregators (stride 4 -> ranks 0,4,8,12) plus the header
        // writer (rank 0) touch the file with writes.
        let writers = plan.program.writer_ranks();
        assert_eq!(writers, vec![0, 4, 8, 12]);
    }

    #[test]
    fn split_collective_groups() {
        let plan = spec(16, 4, 2).plan().unwrap();
        assert_eq!(plan.plan_files.len(), 4);
        for (i, f) in plan.plan_files.iter().enumerate() {
            assert_eq!(f.r0, i as u32 * 4);
            assert_eq!(f.r1, i as u32 * 4 + 4);
        }
        // Group leaders own headers.
        let owners: Vec<u32> = plan
            .payload_meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.header_for_file.is_some())
            .map(|(r, _)| r as u32)
            .collect();
        assert_eq!(owners, vec![0, 4, 8, 12]);
    }

    #[test]
    fn barrier_per_field_plus_open_barrier() {
        let plan = spec(8, 1, 8).plan().unwrap();
        let barriers_rank0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        // 1 open barrier + 2 field barriers.
        assert_eq!(barriers_rank0, 3);
    }

    #[test]
    fn aggregator_ratio_bigger_than_group_means_leader_only() {
        let plan = spec(16, 4, 64).plan().unwrap();
        assert_eq!(plan.program.writer_ranks(), vec![0, 4, 8, 12]);
    }

    #[test]
    fn total_bytes_match_layout_plus_headers() {
        let plan = spec(16, 2, 4).plan().unwrap();
        let header_bytes: u64 = plan.payload_meta.iter().map(|m| m.header_len).sum();
        assert_eq!(
            plan.total_file_bytes(),
            plan.layout.total_bytes() + header_bytes
        );
    }

    #[test]
    fn coalesced_fields_single_barrier_and_same_bytes() {
        let mut s = spec(8, 1, 8);
        s.tuning.coalesce_fields = true;
        let plan = s.plan().unwrap();
        let barriers_rank0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        // 1 open barrier + 1 batched collective (vs 1 + 2 fields).
        assert_eq!(barriers_rank0, 2);
        assert_eq!(
            plan.total_file_bytes(),
            spec(8, 1, 8).plan().unwrap().total_file_bytes()
        );
    }

    #[test]
    fn uneven_groups_still_validate() {
        // 10 ranks into 3 files: groups of 4/3/3.
        let layout = DataLayout::uniform(10, &[("x", 777)]);
        let plan = CheckpointSpec::new(layout, "t")
            .strategy(Strategy::CoIo {
                nf: 3,
                aggregator_ratio: 2,
            })
            .plan()
            .unwrap();
        assert_eq!(plan.plan_files.len(), 3);
        assert_eq!(plan.plan_files[0].r1 - plan.plan_files[0].r0, 4);
    }
}
