//! rbIO: reduced-blocking I/O (§IV-C) — the paper's contribution.
//!
//! Ranks split into `ng` groups; the first rank of each group is the
//! dedicated *writer*, the rest are *workers*. Workers `Isend` each field
//! block to their writer and return immediately — their blocking time is
//! the handoff, not the disk. The writer aggregates the group's data into a
//! staging image (reordering blocks into file order) and commits:
//!
//! * [`RbIoCommit::IndependentPerWriter`] (`nf = ng`): one file per writer,
//!   written with independent `write_at` calls, *buffering multiple fields
//!   per flush* (`Tuning::writer_buffer`) — the reason this mode doubles the
//!   `nf = 1` bandwidth in Fig. 5;
//! * [`RbIoCommit::CollectiveShared`] (`nf = 1`): all writers collectively
//!   write one shared file, per field, through the MPI-IO two-phase path —
//!   demonstrating that application-level two-phase does not interfere with
//!   ROMIO's.

use rbio_mpiio::domains::DomainConfig;
use rbio_mpiio::{plan_collective_write, CollectiveWrite, Contribution, SrcKind, TwoPhaseConfig};
use rbio_plan::{DataRef, Op, Tag};

use crate::format;
use crate::strategy::{split_groups, PlanBuilder, RbIoCommit};

pub(crate) fn build(pb: &mut PlanBuilder<'_>, ng: u32, commit: RbIoCommit) {
    let layout = pb.spec.layout.clone();
    let app = pb.spec.app.clone();
    let tuning = pb.spec.tuning;
    let np = layout.nranks();
    let groups = split_groups(np, ng);
    let writers: Vec<u32> = groups.iter().map(|&(g0, _)| g0).collect();
    // Fig. 8: concurrent file creation has a sweet spot around nf ≈ 1024.
    // When ng exceeds `nf_sweet`, independent writers open/write/commit in
    // waves of that size, chained by 1-byte token messages: writer i holds
    // off until writer i - nf_sweet has published its file.
    let wave = tuning.nf_sweet.filter(|&k| k > 0 && k < ng);

    // The shared-file mode needs the global file registered first (owned by
    // the global leader, writer 0).
    let shared_file = match commit {
        RbIoCommit::CollectiveShared => Some(pb.add_file(0, np, 0)),
        RbIoCommit::IndependentPerWriter => None,
    };

    // Phase 1 on every group: workers hand their field blocks to the writer;
    // the writer assembles its group image in staging.
    //
    // Writer staging layout: [optional per-writer header][group image],
    // where the image packs field regions in order, each holding the
    // group's rank blocks in rank order — exactly the file body layout.
    let mut image_base = vec![0u64; ng as usize]; // header prefix per writer
    for (gi, &(g0, g1)) in groups.iter().enumerate() {
        let writer = g0;
        let per_writer_file = match commit {
            RbIoCommit::IndependentPerWriter => Some(pb.add_file(g0, g1, writer)),
            RbIoCommit::CollectiveShared => None,
        };
        let hdr = pb.payload_base(writer);
        let prefix = if per_writer_file.is_some() { hdr } else { 0 };
        image_base[gi] = prefix;
        let image_off = |f: usize| -> u64 { (0..f).map(|g| layout.field_total(g, g0, g1)).sum() };
        let image_len: u64 = (0..layout.nfields())
            .map(|f| layout.field_total(f, g0, g1))
            .sum();
        // Scratch slot after the image: workers' packages land here before
        // the writer reorders them ("the writer aggregates the data from
        // all workers in its group, reorders data blocks" — §IV-C).
        let scratch_off = prefix + image_len;
        let scratch_len = (g0 + 1..g1)
            .map(|r| layout.rank_payload_bytes(r))
            .max()
            .unwrap_or(0)
            // Wave tokens land in the scratch slot too (1 byte).
            .max(u64::from(wave.is_some()));
        pb.b.reserve_staging(writer, scratch_off + scratch_len);

        // Workers: ONE nonblocking send of the whole packed payload. Their
        // program ends here — that is the whole point of reduced-blocking
        // I/O, and the single-package handoff is what the paper's perceived
        // bandwidth (Table I) measures.
        for r in g0 + 1..g1 {
            let total = layout.rank_payload_bytes(r);
            if total == 0 {
                continue;
            }
            pb.b.push(
                r,
                Op::Send {
                    dst: writer,
                    tag: Tag(0),
                    src: DataRef::Own { off: 0, len: total },
                },
            );
        }

        // Writer: stage the header (independent mode) and its own blocks,
        // then receive each worker's package and reorder its field blocks
        // into file order.
        if per_writer_file.is_some() && hdr > 0 {
            pb.b.push(
                writer,
                Op::Pack {
                    src: Some(DataRef::Own { off: 0, len: hdr }),
                    staging_off: 0,
                    bytes: hdr,
                },
            );
        }
        for f in 0..layout.nfields() {
            let own_len = layout.field_bytes(writer, f);
            if own_len > 0 {
                pb.b.push(
                    writer,
                    Op::Pack {
                        src: Some(DataRef::Own {
                            off: hdr + layout.payload_field_off(writer, f),
                            len: own_len,
                        }),
                        staging_off: prefix + image_off(f),
                        bytes: own_len,
                    },
                );
            }
        }
        for r in g0 + 1..g1 {
            let total = layout.rank_payload_bytes(r);
            if total == 0 {
                continue;
            }
            pb.b.push(
                writer,
                Op::Recv {
                    src: r,
                    tag: Tag(0),
                    bytes: total,
                    staging_off: scratch_off,
                },
            );
            for f in 0..layout.nfields() {
                let len = layout.field_bytes(r, f);
                if len == 0 {
                    continue;
                }
                pb.b.push(
                    writer,
                    Op::Pack {
                        src: Some(DataRef::Staging {
                            off: scratch_off + layout.payload_field_off(r, f),
                            len,
                        }),
                        staging_off: prefix + image_off(f) + layout.field_rank_off(f, g0, r),
                        bytes: len,
                    },
                );
            }
        }

        // Phase 2, independent mode: open own file and flush the staging
        // image in writer_buffer-sized chunks (fields coalesce into large
        // sequential writes — the buffering win of nf = ng).
        if let Some(file) = per_writer_file {
            let file_size = format::file_size(&layout, &app, g0, g1);
            debug_assert_eq!(file_size, prefix + image_len);
            if let Some(k) = wave {
                // Not in the first wave: wait for the writer k groups
                // earlier to finish its commit before creating our file.
                if gi as u32 >= k {
                    pb.b.push(
                        writer,
                        Op::Recv {
                            src: writers[gi - k as usize],
                            tag: Tag(1),
                            bytes: 1,
                            staging_off: scratch_off,
                        },
                    );
                }
            }
            pb.b.push(writer, Op::Open { file, create: true });
            let chunk = tuning.writer_buffer.max(1);
            let mut off = 0u64;
            while off < file_size {
                let len = chunk.min(file_size - off);
                pb.b.push(
                    writer,
                    Op::WriteAt {
                        file,
                        offset: off,
                        src: DataRef::Staging { off, len },
                    },
                );
                off += len;
            }
            pb.b.push(writer, Op::Close { file });
            pb.b.push(writer, Op::Commit { file });
            if let Some(k) = wave {
                // Release the writer k groups later into the next wave.
                let next = gi + k as usize;
                if next < writers.len() {
                    pb.b.push(
                        writer,
                        Op::Send {
                            dst: writers[next],
                            tag: Tag(1),
                            src: DataRef::Synthetic { len: 1 },
                        },
                    );
                }
            }
        }
    }

    // Phase 2, shared mode: writers collectively write the single file,
    // field by field (each field must hit the disk before the next — the
    // flush-per-field cost the paper measures for nf = 1).
    if let Some(file) = shared_file {
        let leader = writers[0];
        let hdr = pb.payload_base(leader);
        let comm = pb.b.comm(writers.clone());
        pb.b.push(leader, Op::Open { file, create: true });
        pb.b.push(
            leader,
            Op::WriteAt {
                file,
                offset: 0,
                src: DataRef::Own { off: 0, len: hdr },
            },
        );
        pb.b.push_all(writers.iter().copied(), Op::Barrier { comm });
        for &w in &writers[1..] {
            pb.b.push(
                w,
                Op::Open {
                    file,
                    create: false,
                },
            );
        }
        // Round buffers live after each writer's group image in staging.
        let image_total: Vec<u64> = groups
            .iter()
            .map(|&(g0, g1)| {
                (0..layout.nfields())
                    .map(|f| layout.field_total(f, g0, g1))
                    .sum()
            })
            .collect();
        let agg_staging_base = image_total.iter().copied().max().unwrap_or(0);
        let per_field: Vec<Vec<Contribution>> = (0..layout.nfields())
            .map(|f| {
                let field_base = format::field_data_off(&layout, &app, 0, np, f);
                groups
                    .iter()
                    .enumerate()
                    .filter_map(|(gi, &(g0, g1))| {
                        let len = layout.field_total(f, g0, g1);
                        if len == 0 {
                            return None;
                        }
                        let image_off: u64 = (0..f).map(|g| layout.field_total(g, g0, g1)).sum();
                        Some(Contribution {
                            rank: writers[gi],
                            file_off: field_base + layout.field_rank_off(f, 0, g0),
                            src_off: image_off,
                            len,
                            src: SrcKind::Staging,
                        })
                    })
                    .collect()
            })
            .collect();
        let two_phase = |tag: u64| TwoPhaseConfig {
            domain: DomainConfig {
                block_size: tuning.fs_block_size,
                align: tuning.align_domains,
            },
            // Tags: worker->writer used 0..nfields; offset past them.
            cb_buffer_size: tuning.cb_buffer_size,
            tag,
        };
        if tuning.coalesce_fields {
            // All fields batched into one collective: one exchange, one
            // barrier, one large handoff for the pipelined writers.
            let contributions: Vec<Contribution> = per_field.into_iter().flatten().collect();
            plan_collective_write(
                &mut pb.b,
                &CollectiveWrite {
                    file,
                    aggregators: writers.clone(),
                    contributions,
                    agg_staging_base,
                },
                &two_phase(layout.nfields() as u64),
            );
            pb.b.push_all(writers.iter().copied(), Op::Barrier { comm });
        } else {
            for (f, contributions) in per_field.into_iter().enumerate() {
                plan_collective_write(
                    &mut pb.b,
                    &CollectiveWrite {
                        file,
                        aggregators: writers.clone(),
                        contributions,
                        agg_staging_base,
                    },
                    &two_phase((layout.nfields() + f) as u64),
                );
                pb.b.push_all(writers.iter().copied(), Op::Barrier { comm });
            }
        }
        for &w in &writers {
            pb.b.push(w, Op::Close { file });
        }
        // The global leader owns the shared file and publishes it. A rename
        // while peers still hold (now-closed or soon-closed) descriptors is
        // fine on POSIX: their fds stay valid, only the name moves.
        pb.b.push(leader, Op::Commit { file });
    }
}

#[cfg(test)]
mod tests {
    use crate::layout::DataLayout;
    use crate::strategy::{CheckpointSpec, RbIoCommit, Strategy, Tuning};
    use rbio_plan::Op;

    fn layout(np: u32) -> DataLayout {
        DataLayout::uniform(np, &[("Ex", 1000), ("Ey", 1000), ("Hz", 500)])
    }

    fn tuning() -> Tuning {
        Tuning {
            fs_block_size: 4096,
            align_domains: true,
            cb_buffer_size: 4096,
            writer_buffer: 2048,
            ..Tuning::default()
        }
    }

    #[test]
    fn independent_mode_one_file_per_writer() {
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(tuning())
            .plan()
            .unwrap();
        assert_eq!(plan.plan_files.len(), 4);
        assert_eq!(plan.program.writer_ranks(), vec![0, 4, 8, 12]);
        // Workers only send: no opens, no barriers on worker ranks.
        for r in [1u32, 2, 3, 5, 6, 7] {
            let ops = &plan.program.ops[r as usize];
            assert!(
                ops.iter().all(|o| matches!(o, Op::Send { .. })),
                "rank {r}: {ops:?}"
            );
            assert_eq!(ops.len(), 1); // one package send per worker
        }
        assert_eq!(plan.program.stats().barriers, 0);
    }

    #[test]
    fn writer_buffering_coalesces_fields() {
        // Group payload = 4 ranks x 2500 B = 10000 B + header; with a 1 MiB
        // buffer the writer should need very few writes (here: 1).
        let mut t = tuning();
        t.writer_buffer = 1 << 20;
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(t)
            .plan()
            .unwrap();
        let writes_rank0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::WriteAt { .. }))
            .count();
        assert_eq!(writes_rank0, 1);

        // With a tiny buffer, many chunked writes.
        let mut t = tuning();
        t.writer_buffer = 1000;
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(t)
            .plan()
            .unwrap();
        let writes_rank0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::WriteAt { .. }))
            .count();
        assert!(writes_rank0 >= 10, "got {writes_rank0}");
    }

    #[test]
    fn collective_shared_single_file() {
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::RbIo {
                ng: 4,
                commit: RbIoCommit::CollectiveShared,
            })
            .tuning(tuning())
            .plan()
            .unwrap();
        assert_eq!(plan.plan_files.len(), 1);
        assert_eq!((plan.plan_files[0].r0, plan.plan_files[0].r1), (0, 16));
        // Only writers touch the file.
        assert_eq!(plan.program.stats().opens, 4);
        // Per-field barriers among writers: 1 open + 3 fields.
        let barriers_w0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        assert_eq!(barriers_w0, 4);
        // Workers still only send.
        assert!(plan.program.ops[1]
            .iter()
            .all(|o| matches!(o, Op::Send { .. })));
    }

    #[test]
    fn degenerate_all_writers() {
        // ng = np: every rank its own writer; no messages at all.
        let plan = CheckpointSpec::new(layout(8), "t")
            .strategy(Strategy::rbio(8))
            .tuning(tuning())
            .plan()
            .unwrap();
        assert_eq!(plan.program.stats().sends, 0);
        assert_eq!(plan.plan_files.len(), 8);
    }

    #[test]
    fn single_group_whole_job() {
        let plan = CheckpointSpec::new(layout(8), "t")
            .strategy(Strategy::rbio(1))
            .tuning(tuning())
            .plan()
            .unwrap();
        assert_eq!(plan.plan_files.len(), 1);
        // 7 workers, one package each.
        assert_eq!(plan.program.stats().sends, 7);
    }

    #[test]
    fn per_rank_sizes_supported() {
        use crate::layout::{FieldSizes, FieldSpec};
        let sizes: Vec<u64> = (0..12).map(|r| 100 + r * 17).collect();
        let l = DataLayout::new(
            12,
            vec![
                FieldSpec {
                    name: "v".into(),
                    sizes: FieldSizes::PerRank(sizes),
                },
                FieldSpec {
                    name: "u".into(),
                    sizes: FieldSizes::Uniform(64),
                },
            ],
        );
        for strat in [
            Strategy::rbio(3),
            Strategy::RbIo {
                ng: 3,
                commit: RbIoCommit::CollectiveShared,
            },
        ] {
            let plan = CheckpointSpec::new(l.clone(), "t")
                .strategy(strat)
                .tuning(tuning())
                .plan()
                .unwrap();
            assert!(plan.total_file_bytes() > l.total_bytes());
        }
    }

    #[test]
    fn nf_sweet_schedules_writers_in_waves() {
        let mut t = tuning();
        t.nf_sweet = Some(2);
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(t)
            .plan()
            .unwrap();
        // Writers 0,4 go first; 8,12 each wait on a token; 0,4 each send
        // one. Workers are untouched.
        let tokens_sent = |r: u32| {
            plan.program.ops[r as usize]
                .iter()
                .filter(|o| matches!(o, Op::Send { src, .. } if src.len() == 1))
                .count()
        };
        let tokens_recv = |r: u32| {
            plan.program.ops[r as usize]
                .iter()
                .filter(|o| matches!(o, Op::Recv { bytes: 1, .. }))
                .count()
        };
        assert_eq!(
            (1, 1, 0, 0),
            (
                tokens_sent(0),
                tokens_sent(4),
                tokens_sent(8),
                tokens_sent(12)
            )
        );
        assert_eq!(
            (0, 0, 1, 1),
            (
                tokens_recv(0),
                tokens_recv(4),
                tokens_recv(8),
                tokens_recv(12)
            )
        );
        // The token wait precedes the writer's Open.
        let ops8 = &plan.program.ops[8];
        let recv_idx = ops8
            .iter()
            .position(|o| matches!(o, Op::Recv { bytes: 1, .. }))
            .unwrap();
        let open_idx = ops8
            .iter()
            .position(|o| matches!(o, Op::Open { .. }))
            .unwrap();
        assert!(recv_idx < open_idx);
    }

    #[test]
    fn nf_sweet_at_or_above_ng_is_a_no_op() {
        let mut t = tuning();
        t.nf_sweet = Some(4);
        let with = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(t)
            .plan()
            .unwrap();
        let without = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::rbio(4))
            .tuning(tuning())
            .plan()
            .unwrap();
        assert_eq!(with.program.ops, without.program.ops);
    }

    #[test]
    fn coalesced_shared_commit_has_one_field_barrier() {
        let mut t = tuning();
        t.coalesce_fields = true;
        let plan = CheckpointSpec::new(layout(16), "t")
            .strategy(Strategy::RbIo {
                ng: 4,
                commit: RbIoCommit::CollectiveShared,
            })
            .tuning(t)
            .plan()
            .unwrap();
        // 1 open barrier + 1 batched-collective barrier (vs 1 + 3 fields).
        let barriers_w0 = plan.program.ops[0]
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        assert_eq!(barriers_w0, 2);
        assert_eq!(plan.plan_files.len(), 1);
    }
}
