//! Writer failover: absorb dead, hung, and straggling writers instead of
//! aborting the whole checkpoint.
//!
//! In rbIO every group of `np/ng` workers funnels its payload through one
//! dedicated writer, so PR 1's abort-instead-of-hang posture makes a
//! single wedged writer take down the entire generation. This module adds
//! the coordination state for the alternative: each writer is tracked
//! through the health state machine
//!
//! ```text
//! healthy → straggling → dead → fenced
//! ```
//!
//! and when a writer is declared dead its group's extent becomes an
//! *orphan* that is handed to a designated **successor** — the next
//! surviving writer in `ng` order — which re-stages and rewrites the
//! orphaned extent from the shared payloads and commits it exactly once.
//! The dead writer is **fenced** the moment it is declared dead, so a
//! late-reviving writer (a hang that turns out not to be a death) can
//! never double-commit its file: its commit attempt is refused at the
//! commit edge.
//!
//! The [`FailoverDirector`] is the shared arbiter: declarations, claims,
//! and commit admission all go through one mutex-protected state so the
//! *exactly-once takeover* invariant is a CAS, not a convention. The
//! schedule-exploration harness (`rbio-check` program family p5) drives
//! this logic under a controlled scheduler and checks exactly-once
//! takeover and fenced-writer-never-commits as model invariants.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use rbio_profile::counters;

use crate::sched::{self, Event};

/// Test-only revert switch: when set, [`FailoverDirector::allow_commit`]
/// stops refusing fenced writers, reintroducing the double-commit hazard
/// the fence exists to prevent. Used by `rbio-check` regressions to prove
/// the p5 sweep catches the bug class; never set in production.
pub static REVERT_PR5_FENCE: AtomicBool = AtomicBool::new(false);

/// A writer's health as seen by the failover director.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterHealth {
    /// Making progress within the straggler deadline.
    Healthy,
    /// Progress stalled past the straggler deadline but not long enough
    /// to be declared dead; candidates for hedged re-submits.
    Straggling,
    /// Declared dead: its extent is orphaned and will be taken over.
    /// A dead writer is immediately fenced.
    Dead,
}

/// When to classify a writer as straggling or dead, derived from the
/// executors' existing `recv_timeout` plumbing.
#[derive(Debug, Clone, Copy)]
pub struct FailoverPolicy {
    /// Master switch: disabled means the PR 1 behavior (abort on writer
    /// failure) everywhere.
    pub enabled: bool,
    /// Progress stall after which a writer counts as straggling (hedged
    /// re-submits become eligible in the flush pipeline).
    pub straggler_after: Duration,
    /// Progress stall after which a writer is declared dead and fenced.
    pub dead_after: Duration,
}

impl FailoverPolicy {
    /// Failover off: writer failures abort the run (PR 1 semantics).
    pub fn disabled() -> Self {
        FailoverPolicy {
            enabled: false,
            straggler_after: Duration::from_millis(500),
            dead_after: Duration::from_secs(1),
        }
    }

    /// Deadlines derived from a receive timeout: a writer that stalls a
    /// quarter of the timeout is straggling, half of it is dead. Both
    /// are comfortably inside `recv_timeout`, so failover engages before
    /// peers start timing out on the dead writer.
    pub fn from_recv_timeout(recv_timeout: Duration) -> Self {
        FailoverPolicy {
            enabled: true,
            straggler_after: recv_timeout / 4,
            dead_after: recv_timeout / 2,
        }
    }

    /// Classify a progress stall of `stalled` under this policy.
    pub fn classify_stall(&self, stalled: Duration) -> WriterHealth {
        if stalled >= self.dead_after {
            WriterHealth::Dead
        } else if stalled >= self.straggler_after {
            WriterHealth::Straggling
        } else {
            WriterHealth::Healthy
        }
    }
}

/// One orphaned extent: a dead writer's group output awaiting takeover.
#[derive(Debug, Clone)]
struct Orphan {
    /// The dead writer whose ops are being replayed.
    rank: u32,
    /// Designated successor (next surviving writer in `ng` order).
    successor: u32,
    /// Taken by the successor's epilogue loop (exactly-once claim).
    claimed: bool,
    /// Files of this orphan whose commit was entered (exactly-once per
    /// extent; a writer may own several files).
    committed_files: Vec<u32>,
    /// The takeover finished (extent rewritten and committed).
    completed: bool,
}

#[derive(Debug, Default)]
struct DirectorState {
    /// Writer ranks in `ng` order (successor designation walks this).
    writers: Vec<u32>,
    /// Health per writer rank.
    health: HashMap<u32, WriterHealth>,
    /// Writers that finished their own ops.
    done: Vec<u32>,
    /// Orphaned extents, in death order.
    orphans: Vec<Orphan>,
}

impl DirectorState {
    fn is_dead(&self, rank: u32) -> bool {
        self.health.get(&rank) == Some(&WriterHealth::Dead)
    }

    /// The next surviving writer after `dead` in cyclic `ng` order.
    fn successor_of(&self, dead: u32) -> Option<u32> {
        let i = self.writers.iter().position(|&w| w == dead)?;
        let n = self.writers.len();
        (1..n)
            .map(|k| self.writers[(i + k) % n])
            .find(|&w| !self.is_dead(w))
    }
}

/// Shared failover arbiter for one execution: health declarations,
/// successor designation, exactly-once takeover claims, and commit
/// fencing. One instance per [`crate::exec::execute`] call.
#[derive(Debug)]
pub struct FailoverDirector {
    policy: FailoverPolicy,
    state: Mutex<DirectorState>,
    /// Signalled on every state change so epilogue loops can park.
    changed: Condvar,
}

impl FailoverDirector {
    /// A director for the given writer ranks (in `ng` order).
    pub fn new(policy: FailoverPolicy, writer_ranks: Vec<u32>) -> Self {
        let health = writer_ranks
            .iter()
            .map(|&w| (w, WriterHealth::Healthy))
            .collect();
        FailoverDirector {
            policy,
            state: Mutex::new(DirectorState {
                writers: writer_ranks,
                health,
                ..DirectorState::default()
            }),
            changed: Condvar::new(),
        }
    }

    /// The policy this director enforces.
    pub fn policy(&self) -> &FailoverPolicy {
        &self.policy
    }

    /// Whether failover is on at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DirectorState> {
        self.state.lock().expect("failover director lock")
    }

    /// Mark `rank` as straggling (progress stalled past the straggler
    /// deadline but short of death). Purely observational.
    pub fn report_straggling(&self, rank: u32) {
        let mut g = self.lock();
        if g.health.get(&rank) == Some(&WriterHealth::Healthy) {
            g.health.insert(rank, WriterHealth::Straggling);
            sched::emit(|| Event::WriterStraggling { rank });
        }
    }

    /// Declare `rank` dead and fence it. Designates a successor for its
    /// extent and for any orphan it had claimed but not completed.
    /// Returns `false` when failover cannot engage — disabled, `rank` is
    /// not a tracked writer, or no surviving writer remains — in which
    /// case the caller must abort exactly as before this subsystem
    /// existed.
    pub fn report_dead(&self, rank: u32) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let mut g = self.lock();
        if !g.writers.contains(&rank) {
            return false;
        }
        if g.is_dead(rank) {
            // Already declared (e.g. monitor and self-report racing):
            // the first declaration arranged everything.
            return true;
        }
        g.health.insert(rank, WriterHealth::Dead);
        let Some(successor) = g.successor_of(rank) else {
            // No survivor to take over: undo and let the caller abort.
            g.health.insert(rank, WriterHealth::Healthy);
            return false;
        };
        sched::emit(|| Event::WriterDead { rank });
        g.orphans.push(Orphan {
            rank,
            successor,
            claimed: false,
            committed_files: Vec::new(),
            completed: false,
        });
        // Re-home any orphan routed to (or mid-takeover on) the newly
        // dead writer: cascading failures re-designate down the ring.
        let mut rehome = Vec::new();
        for o in g.orphans.iter_mut() {
            if o.successor == rank && !o.completed {
                o.claimed = false;
                o.committed_files.clear();
                rehome.push(o.rank);
            }
        }
        for orphan_rank in rehome {
            match g.successor_of(orphan_rank) {
                Some(s) => {
                    for o in g.orphans.iter_mut() {
                        if o.rank == orphan_rank {
                            o.successor = s;
                        }
                    }
                }
                None => {
                    g.health.insert(rank, WriterHealth::Healthy);
                    g.orphans.retain(|o| o.rank != rank);
                    return false;
                }
            }
        }
        self.changed.notify_all();
        true
    }

    /// Whether `rank` has been declared dead (and is therefore fenced).
    pub fn is_fenced(&self, rank: u32) -> bool {
        self.lock().is_dead(rank)
    }

    /// Whether `rank` is in the tracked writer set.
    pub fn is_writer(&self, rank: u32) -> bool {
        self.lock().writers.contains(&rank)
    }

    /// Whether `rank` has finished its own ops.
    pub fn is_done(&self, rank: u32) -> bool {
        self.lock().done.contains(&rank)
    }

    /// The tracked writer ranks, in `ng` order.
    pub fn writers(&self) -> Vec<u32> {
        self.lock().writers.clone()
    }

    /// Commit admission: a fenced writer may not commit. Refusals bump
    /// the `fenced_commits_refused` counter. The test-only
    /// [`REVERT_PR5_FENCE`] switch disables the refusal to demonstrate
    /// the double-commit hazard to the p5 sweep.
    pub fn allow_commit(&self, rank: u32) -> bool {
        if !self.lock().is_dead(rank) {
            return true;
        }
        if REVERT_PR5_FENCE.load(Ordering::Relaxed) {
            return true;
        }
        counters::add_fenced_commits_refused(1);
        sched::emit(|| Event::FenceRefused { rank });
        false
    }

    /// Claim the next orphan designated to `successor` (exactly-once:
    /// a given orphan is handed out a single time unless its claimant
    /// later dies). Bumps the `failovers` counter per claim.
    pub fn claim_orphan(&self, successor: u32) -> Option<u32> {
        let mut g = self.lock();
        let o = g
            .orphans
            .iter_mut()
            .find(|o| o.successor == successor && !o.claimed && !o.completed)?;
        o.claimed = true;
        let orphan = o.rank;
        counters::add_failovers(1);
        sched::emit(|| Event::TakeoverClaim { orphan, successor });
        Some(orphan)
    }

    /// Enter the commit of the orphan's file `file`: `true` exactly once
    /// per (orphan, file) — the CAS behind exactly-once takeover commits.
    pub fn begin_commit(&self, orphan: u32, file: u32) -> bool {
        let mut g = self.lock();
        match g
            .orphans
            .iter_mut()
            .find(|o| o.rank == orphan && !o.committed_files.contains(&file))
        {
            Some(o) => {
                o.committed_files.push(file);
                true
            }
            None => false,
        }
    }

    /// Record the takeover of `orphan` finished.
    pub fn orphan_completed(&self, orphan: u32) {
        let mut g = self.lock();
        for o in g.orphans.iter_mut() {
            if o.rank == orphan {
                o.completed = true;
            }
        }
        self.changed.notify_all();
    }

    /// Record writer `rank` finished its own ops (it now only serves
    /// takeovers in its epilogue).
    pub fn mark_writer_done(&self, rank: u32) {
        let mut g = self.lock();
        if !g.done.contains(&rank) {
            g.done.push(rank);
        }
        self.changed.notify_all();
    }

    /// Whether the failover phase is over: every writer is done or dead
    /// and every orphan extent has been rewritten. Epilogue loops exit
    /// when this turns true.
    pub fn quiesced(&self) -> bool {
        let g = self.lock();
        g.writers
            .iter()
            .all(|&w| g.is_dead(w) || g.done.contains(&w))
            && g.orphans.iter().all(|o| o.completed)
    }

    /// Park until the state changes or `timeout` passes (production
    /// epilogue loops; controlled runs spin on yield points instead).
    pub fn wait_changed(&self, timeout: Duration) {
        let g = self.lock();
        let _ = self
            .changed
            .wait_timeout(g, timeout)
            .expect("failover director lock");
    }

    /// Completed takeovers as `(orphan, successor)` pairs, in death
    /// order — the manager turns this into the generation manifest.
    pub fn completed_takeovers(&self) -> Vec<(u32, u32)> {
        self.lock()
            .orphans
            .iter()
            .filter(|o| o.completed)
            .map(|o| (o.rank, o.successor))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn director(writers: &[u32]) -> FailoverDirector {
        FailoverDirector::new(
            FailoverPolicy::from_recv_timeout(Duration::from_secs(2)),
            writers.to_vec(),
        )
    }

    #[test]
    fn classify_stall_walks_the_state_machine() {
        let p = FailoverPolicy::from_recv_timeout(Duration::from_secs(2));
        assert_eq!(p.classify_stall(Duration::ZERO), WriterHealth::Healthy);
        assert_eq!(
            p.classify_stall(Duration::from_millis(600)),
            WriterHealth::Straggling
        );
        assert_eq!(p.classify_stall(Duration::from_secs(1)), WriterHealth::Dead);
    }

    #[test]
    fn successor_is_next_surviving_writer_in_ng_order() {
        let d = director(&[1, 3, 5, 7]);
        assert!(d.report_dead(3));
        assert_eq!(d.claim_orphan(5), Some(3));
        // 5 dies too before completing: 3's extent re-homes to 7, and
        // 5's own extent is orphaned to 7 as well.
        assert!(d.report_dead(5));
        assert_eq!(d.claim_orphan(7), Some(3));
        assert_eq!(d.claim_orphan(7), Some(5));
        assert_eq!(d.claim_orphan(7), None);
    }

    #[test]
    fn no_survivor_means_no_failover() {
        let d = director(&[2]);
        assert!(!d.report_dead(2), "sole writer has no successor");
        assert!(!d.is_fenced(2), "declaration rolled back");
        let d2 = director(&[0, 4]);
        assert!(d2.report_dead(0));
        assert!(!d2.report_dead(4), "last survivor must not be declared");
    }

    #[test]
    fn claims_and_commits_are_exactly_once() {
        let d = director(&[0, 4]);
        assert!(d.report_dead(0));
        assert_eq!(d.claim_orphan(4), Some(0));
        assert_eq!(d.claim_orphan(4), None, "claim is exactly-once");
        assert!(d.begin_commit(0, 7));
        assert!(!d.begin_commit(0, 7), "commit CAS is exactly-once per file");
        assert!(d.begin_commit(0, 8), "a second file commits independently");
        d.orphan_completed(0);
        assert_eq!(d.completed_takeovers(), vec![(0, 4)]);
    }

    #[test]
    fn fenced_writer_commit_is_refused_and_counted() {
        let before = counters::failover_snapshot();
        let d = director(&[0, 4]);
        assert!(d.allow_commit(0), "healthy writer commits freely");
        assert!(d.report_dead(0));
        assert!(d.is_fenced(0));
        assert!(!d.allow_commit(0), "fenced writer is refused");
        assert!(d.allow_commit(4));
        let delta = counters::failover_snapshot().delta_since(&before);
        assert!(delta.fenced_commits_refused >= 1);
    }

    #[test]
    fn quiesces_when_writers_done_and_orphans_complete() {
        let d = director(&[0, 4]);
        assert!(!d.quiesced());
        d.mark_writer_done(0);
        d.mark_writer_done(4);
        assert!(d.quiesced());
        assert!(d.report_dead(0));
        // 0 is dead now, but its orphan is outstanding.
        assert!(!d.quiesced());
        assert_eq!(d.claim_orphan(4), Some(0));
        d.orphan_completed(0);
        assert!(d.quiesced());
    }

    #[test]
    fn disabled_policy_never_engages() {
        let d = FailoverDirector::new(FailoverPolicy::disabled(), vec![0, 4]);
        assert!(!d.report_dead(0));
        assert!(d.allow_commit(0));
    }
}
