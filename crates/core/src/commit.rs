//! Crash-consistent checkpoint publication, shared by both executors.
//!
//! Atomic plan files are written to a `.tmp` sibling of their final name.
//! When the owning rank has finished its writes (after its `Close`), the
//! `Op::Commit` step seals the temporary file — appends a [`format`]
//! checksum footer with a CRC32C per field region — optionally fsyncs, and
//! publishes it with a single `rename(2)`. A crash at *any* point therefore
//! leaves either no final file or a complete, checksummed one; a partially
//! written checkpoint is never observable under its final name.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::format::{self, FooterRegion};

/// Suffix appended to a final path to form its temporary sibling.
pub const TMP_SUFFIX: &str = ".tmp";

/// The `.tmp` sibling of `final_path` that writers target before commit.
pub fn tmp_path(final_path: &Path) -> PathBuf {
    let mut name = final_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(TMP_SUFFIX);
    final_path.with_file_name(name)
}

/// Seal `tmp` and atomically publish it as `final_path`.
///
/// `expected_size` is the plan's logical file size (header + data); the
/// temporary file must be exactly that long, or the commit fails with
/// `InvalidData` — a short file means some writer's data never landed.
///
/// The footer's regions come from the file's own master header when it
/// parses (one region per field, plus one for the header itself); a file
/// without a parseable header (non-checkpoint payloads) gets a single
/// whole-file region. Either way every byte of the logical file is covered
/// by exactly one checksum.
pub fn commit_file(
    tmp: &Path,
    final_path: &Path,
    expected_size: u64,
    fsync: bool,
) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(tmp)?;
    let actual = f.metadata()?.len();
    if actual != expected_size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "commit of {}: tmp file is {actual} bytes, plan expects {expected_size}",
                final_path.display()
            ),
        ));
    }
    let mut bytes = Vec::with_capacity(actual as usize);
    f.read_to_end(&mut bytes)?;
    let regions = footer_regions(&bytes, expected_size);
    let footer = format::encode_footer(&regions);
    f.seek(SeekFrom::Start(expected_size))?;
    f.write_all(&footer)?;
    if fsync {
        f.sync_all()?;
    }
    drop(f);
    std::fs::rename(tmp, final_path)?;
    if fsync {
        // Persist the rename itself: fsync the containing directory.
        if let Some(dir) = final_path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// Per-field checksum regions when the header parses and matches the
/// logical size (the header protects itself with its own CRC32), else one
/// whole-file region. Matches
/// [`format::FileHeader::expected_committed_size`]: `nregions == nfields`.
fn footer_regions(bytes: &[u8], expected_size: u64) -> Vec<FooterRegion> {
    if let Ok(header) = format::decode_header(bytes) {
        if header.expected_file_size() == expected_size && !header.fields.is_empty() {
            return header
                .fields
                .iter()
                .map(|f| region(bytes, f.data_off, f.sizes.iter().sum()))
                .collect();
        }
    }
    vec![region(bytes, 0, expected_size)]
}

fn region(bytes: &[u8], off: u64, len: u64) -> FooterRegion {
    let slice = &bytes[off as usize..(off + len) as usize];
    FooterRegion {
        off,
        len,
        crc32c: format::crc32c(slice),
    }
}

/// Files below this logical size verify their regions serially; larger
/// ones fan the per-region CRC computation out across worker threads
/// (restart verification is CPU-bound once the file is in page cache).
const PARALLEL_VERIFY_MIN: u64 = 4 << 20;

/// Verify the commit footer of a fully read file against `expected_size`
/// (the logical, pre-footer size). Returns a description of the first
/// problem (under parallel verification, the lowest-indexed failing
/// region), or `None` when every region checks out.
pub fn verify_committed(bytes: &[u8], expected_size: u64) -> Option<String> {
    if (bytes.len() as u64) < expected_size {
        return Some(format!(
            "file is {} bytes, logical size is {expected_size}",
            bytes.len()
        ));
    }
    let footer = &bytes[expected_size as usize..];
    if footer.len() < 8 {
        return Some("commit footer missing (file never committed?)".into());
    }
    let nregions = u32::from_le_bytes(footer[4..8].try_into().expect("len 4")) as usize;
    let flen = format::footer_len(nregions) as usize;
    if footer.len() != flen {
        return Some(format!(
            "commit footer is {} bytes, expected {flen}",
            footer.len()
        ));
    }
    let regions = match format::decode_footer(footer) {
        Ok(r) => r,
        Err(e) => return Some(format!("commit footer invalid: {e}")),
    };
    // Bounds first (cheap, serial) so the checksum passes below can slice
    // without further checks.
    for (i, r) in regions.iter().enumerate() {
        let Some(end) = r.off.checked_add(r.len) else {
            return Some(format!("region {i} overflows"));
        };
        if end > expected_size {
            return Some(format!(
                "region {i} [{}..{end}) exceeds logical size {expected_size}",
                r.off
            ));
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(regions.len())
        .min(8);
    if expected_size < PARALLEL_VERIFY_MIN || workers <= 1 {
        return regions
            .iter()
            .enumerate()
            .find_map(|(i, r)| check_region(bytes, i, r));
    }
    // Work-stealing fan-out: workers claim region indices from a shared
    // counter, so one huge region cannot serialize the rest behind it.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let firsts: Vec<Option<(usize, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut first: Option<(usize, String)> = None;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= regions.len() {
                            return first;
                        }
                        if let Some(why) = check_region(bytes, i, &regions[i]) {
                            if first.as_ref().is_none_or(|(j, _)| i < *j) {
                                first = Some((i, why));
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verify worker must not panic"))
            .collect()
    });
    firsts
        .into_iter()
        .flatten()
        .min_by_key(|(i, _)| *i)
        .map(|(_, why)| why)
}

/// Checksum one bounds-checked footer region.
fn check_region(bytes: &[u8], i: usize, r: &FooterRegion) -> Option<String> {
    let end = r.off + r.len;
    let got = format::crc32c(&bytes[r.off as usize..end as usize]);
    (got != r.crc32c).then(|| {
        format!(
            "region {i} [{}..{end}) checksum mismatch: stored {:#010x}, computed {got:#010x}",
            r.off, r.crc32c
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmp_path_is_sibling() {
        let p = Path::new("/ck/step0000000001/app.00000.rbio");
        assert_eq!(
            tmp_path(p),
            PathBuf::from("/ck/step0000000001/app.00000.rbio.tmp")
        );
    }

    #[test]
    fn commit_appends_footer_and_renames() {
        let dir = tempdir("commit_basic");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        std::fs::write(&tmp, &payload).unwrap();
        commit_file(&tmp, &fin, 200, false).unwrap();
        assert!(!tmp.exists(), "tmp must be gone after commit");
        let bytes = std::fs::read(&fin).unwrap();
        assert_eq!(bytes.len() as u64, 200 + format::footer_len(1));
        assert_eq!(&bytes[..200], &payload[..]);
        assert!(verify_committed(&bytes, 200).is_none());
    }

    #[test]
    fn short_tmp_file_refuses_to_commit() {
        let dir = tempdir("commit_short");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        std::fs::write(&tmp, [0u8; 10]).unwrap();
        let err = commit_file(&tmp, &fin, 200, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!fin.exists());
        assert!(tmp.exists(), "failed commit must leave the tmp file");
    }

    #[test]
    fn verify_catches_data_flip() {
        let dir = tempdir("commit_flip");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        std::fs::write(&tmp, [7u8; 64]).unwrap();
        commit_file(&tmp, &fin, 64, false).unwrap();
        let mut bytes = std::fs::read(&fin).unwrap();
        bytes[13] ^= 0x01;
        let why = verify_committed(&bytes, 64).expect("must detect flip");
        assert!(why.contains("checksum mismatch"), "{why}");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio_commit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
