//! Crash-consistent checkpoint publication, shared by both executors.
//!
//! Atomic plan files are written to a `.tmp` sibling of their final name.
//! When the owning rank has finished its writes (after its `Close`), the
//! `Op::Commit` step seals the temporary file — appends a [`format`]
//! checksum footer with a CRC32C per field region — optionally fsyncs, and
//! publishes it with a single `rename(2)`. A crash at *any* point therefore
//! leaves either no final file or a complete, checksummed one; a partially
//! written checkpoint is never observable under its final name.
//!
//! Verification is hostile-input safe: a corrupt or adversarial footer
//! (absurd region offsets, truncated tables, oversize counts) yields a
//! typed [`VerifyError`] — never a panic or a silent wrap on 32-bit.

use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use std::sync::atomic::{AtomicBool, Ordering};

use rbio_plan::Rank;

use crate::crash;
use crate::fault::{self, FaultPlan};
use crate::format::{self, FooterRegion};

/// Test-only regression switch: skip the directory fsync after the
/// commit rename — the exact durability bug PR 1's commit protocol
/// exists to prevent (a crash can then lose the *publication* of a
/// fully written file). The crash-image sweep in [`crate::crash`] must
/// catch this as a restored-step regression; see the torture tests.
/// Must never be set outside tests.
#[doc(hidden)]
pub static REVERT_PR1_COMMIT_FSYNC: AtomicBool = AtomicBool::new(false);

/// Suffix appended to a final path to form its temporary sibling.
pub const TMP_SUFFIX: &str = ".tmp";

/// The `.tmp` sibling of `final_path` that writers target before commit.
pub fn tmp_path(final_path: &Path) -> PathBuf {
    let mut name = final_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(TMP_SUFFIX);
    final_path.with_file_name(name)
}

/// Seal `tmp` and atomically publish it as `final_path`.
///
/// `expected_size` is the plan's logical file size (header + data); the
/// temporary file must be exactly that long, or the commit fails with
/// `InvalidData` — a short file means some writer's data never landed.
///
/// The footer's regions come from the file's own master header when it
/// parses (one region per field, plus one for the header itself); a file
/// without a parseable header (non-checkpoint payloads) gets a single
/// whole-file region. Either way every byte of the logical file is covered
/// by exactly one checksum.
pub fn commit_file(
    tmp: &Path,
    final_path: &Path,
    expected_size: u64,
    fsync: bool,
) -> io::Result<()> {
    commit_file_with_faults(tmp, final_path, expected_size, fsync, &FaultPlan::none(), 0)
}

/// [`commit_file`] with a fault-injection plan consulted at the
/// directory-fsync edge (the rename-durability barrier). Both executors
/// and the background flush pipeline route commits through here so an
/// injected dir-fsync failure surfaces exactly like a real one: as an
/// error, never as a silently "successful" commit.
pub fn commit_file_with_faults(
    tmp: &Path,
    final_path: &Path,
    expected_size: u64,
    fsync: bool,
    faults: &FaultPlan,
    rank: Rank,
) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(tmp)?;
    let actual = f.metadata()?.len();
    if actual != expected_size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "commit of {}: tmp file is {actual} bytes, plan expects {expected_size}",
                final_path.display()
            ),
        ));
    }
    let mut bytes = Vec::with_capacity(actual as usize);
    f.read_to_end(&mut bytes)?;
    let regions = footer_regions(&bytes, expected_size)?;
    let footer = format::encode_footer(&regions);
    f.seek(SeekFrom::Start(expected_size))?;
    f.write_all(&footer)?;
    crash::record_write_file(&f, expected_size, &footer);
    if fsync {
        // Sticky fsync-failure semantics (the fsyncgate rule): consult
        // the plan first, and latch a *real* failure, so no later fsync
        // on this rank can ever report the data clean.
        if let Some(e) = faults.on_fsync(rank) {
            return Err(e);
        }
        f.sync_all()
            .inspect_err(|_| faults.latch_fsync_failure(rank))?;
        crash::record_fsync_file(&f);
    }
    drop(f);
    std::fs::rename(tmp, final_path)?;
    crash::record_rename(tmp, final_path);
    if fsync && !REVERT_PR1_COMMIT_FSYNC.load(Ordering::Relaxed) {
        // Persist the rename itself: fsync the containing directory. A
        // failure here means the publication may not survive a crash, so
        // it must surface — swallowing it turns a broken durability
        // barrier into a silent success.
        let dir = match final_path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        let d = std::fs::File::open(dir)?;
        if let Some(e) = faults.on_dir_fsync(rank) {
            return Err(e);
        }
        d.sync_all()?;
        crash::record_dir_fsync(dir);
    }
    Ok(())
}

/// Per-field checksum regions when the header parses and matches the
/// logical size (the header protects itself with its own CRC32), else one
/// whole-file region. Matches
/// [`format::FileHeader::expected_committed_size`]: `nregions == nfields`.
/// Fails (rather than panics) when a parsed header describes regions
/// outside the file.
fn footer_regions(bytes: &[u8], expected_size: u64) -> io::Result<Vec<FooterRegion>> {
    if let Ok(header) = format::decode_header(bytes) {
        if header.expected_file_size() == expected_size && !header.fields.is_empty() {
            return header
                .fields
                .iter()
                .map(|f| region(bytes, f.data_off, f.sizes.iter().sum()))
                .collect();
        }
    }
    region(bytes, 0, expected_size).map(|r| vec![r])
}

fn region(bytes: &[u8], off: u64, len: u64) -> io::Result<FooterRegion> {
    let slice = checked_slice(bytes, off, len).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checksum region [{off}, +{len}) lies outside the {}-byte file",
                bytes.len()
            ),
        )
    })?;
    Ok(FooterRegion {
        off,
        len,
        crc32c: format::crc32c(slice),
    })
}

/// `&bytes[off..off + len]` with every conversion and addition checked:
/// `None` on u64 overflow, usize truncation (32-bit), or out-of-bounds —
/// the caller decides whether that is an error or a torn file.
fn checked_slice(bytes: &[u8], off: u64, len: u64) -> Option<&[u8]> {
    let end = off.checked_add(len)?;
    let off = usize::try_from(off).ok()?;
    let end = usize::try_from(end).ok()?;
    bytes.get(off..end)
}

/// Files below this logical size verify their regions serially; larger
/// ones fan the per-region CRC computation out across worker threads
/// (restart verification is CPU-bound once the file is in page cache).
const PARALLEL_VERIFY_MIN: u64 = 4 << 20;

/// Why a committed file failed verification. Every variant is a recoverable
/// "treat as torn" outcome; hostile footers map here instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The file is shorter than its logical size.
    Truncated {
        /// Bytes actually present.
        actual: u64,
        /// The plan's logical size.
        expected: u64,
    },
    /// No footer present after the logical size.
    MissingFooter,
    /// The footer's length does not match its own region count.
    FooterLength {
        /// Footer bytes present.
        actual: u64,
        /// Length implied by the region count.
        expected: u64,
    },
    /// The footer failed to decode (bad magic, bad trailer CRC, …).
    FooterInvalid(String),
    /// A footer region lies outside the logical file (offset overflow,
    /// 32-bit truncation, or out-of-bounds end).
    RegionOutOfBounds {
        /// Index of the offending region.
        index: usize,
        /// Its claimed offset.
        off: u64,
        /// Its claimed length.
        len: u64,
    },
    /// A region's stored CRC does not match the data.
    ChecksumMismatch {
        /// Index of the offending region.
        index: usize,
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the data.
        computed: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Truncated { actual, expected } => {
                write!(f, "file is {actual} bytes, logical size is {expected}")
            }
            VerifyError::MissingFooter => {
                write!(f, "commit footer missing (file never committed?)")
            }
            VerifyError::FooterLength { actual, expected } => {
                write!(f, "commit footer is {actual} bytes, expected {expected}")
            }
            VerifyError::FooterInvalid(e) => write!(f, "commit footer invalid: {e}"),
            VerifyError::RegionOutOfBounds { index, off, len } => {
                write!(f, "region {index} [{off}, +{len}) out of bounds")
            }
            VerifyError::ChecksumMismatch {
                index,
                stored,
                computed,
            } => write!(
                f,
                "region {index} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify the commit footer of a fully read file against `expected_size`
/// (the logical, pre-footer size). Returns a description of the first
/// problem (under parallel verification, the lowest-indexed failing
/// region), or `None` when every region checks out.
pub fn verify_committed(bytes: &[u8], expected_size: u64) -> Option<String> {
    verify_committed_typed(bytes, expected_size)
        .err()
        .map(|e| e.to_string())
}

/// [`verify_committed`] with a typed error, for callers that distinguish
/// torn-file classes. All arithmetic is checked: a hostile footer (offsets
/// near `u64::MAX`, absurd region counts, truncated tables) returns an
/// error instead of panicking or truncating on 32-bit targets.
pub fn verify_committed_typed(bytes: &[u8], expected_size: u64) -> Result<(), VerifyError> {
    if (bytes.len() as u64) < expected_size {
        return Err(VerifyError::Truncated {
            actual: bytes.len() as u64,
            expected: expected_size,
        });
    }
    // Safe after the length check above, but stay checked anyway.
    let logical = usize::try_from(expected_size).map_err(|_| VerifyError::Truncated {
        actual: bytes.len() as u64,
        expected: expected_size,
    })?;
    let footer = &bytes[logical..];
    if footer.len() < 8 {
        return Err(VerifyError::MissingFooter);
    }
    let nregions = u32::from_le_bytes(footer[4..8].try_into().expect("len 4")) as usize;
    // Compare in u64: `footer_len` of a hostile 4-billion-region count
    // must not be truncated through usize on 32-bit.
    let flen = format::footer_len(nregions);
    if footer.len() as u64 != flen {
        return Err(VerifyError::FooterLength {
            actual: footer.len() as u64,
            expected: flen,
        });
    }
    let regions =
        format::decode_footer(footer).map_err(|e| VerifyError::FooterInvalid(e.to_string()))?;
    // Bounds first (cheap, serial) so the checksum passes below can slice
    // without further checks.
    for (i, r) in regions.iter().enumerate() {
        let end = r.off.checked_add(r.len);
        let in_bounds =
            end.is_some_and(|e| e <= expected_size) && checked_slice(bytes, r.off, r.len).is_some();
        if !in_bounds {
            return Err(VerifyError::RegionOutOfBounds {
                index: i,
                off: r.off,
                len: r.len,
            });
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(regions.len())
        .min(8);
    if expected_size < PARALLEL_VERIFY_MIN || workers <= 1 {
        return match regions
            .iter()
            .enumerate()
            .find_map(|(i, r)| check_region(bytes, i, r))
        {
            Some(e) => Err(e),
            None => Ok(()),
        };
    }
    // Work-stealing fan-out: workers claim region indices from a shared
    // counter, so one huge region cannot serialize the rest behind it.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let firsts: Vec<Option<(usize, VerifyError)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut first: Option<(usize, VerifyError)> = None;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= regions.len() {
                            return first;
                        }
                        if let Some(why) = check_region(bytes, i, &regions[i]) {
                            if first.as_ref().is_none_or(|(j, _)| i < *j) {
                                first = Some((i, why));
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verify worker must not panic"))
            .collect()
    });
    match firsts.into_iter().flatten().min_by_key(|(i, _)| *i) {
        Some((_, why)) => Err(why),
        None => Ok(()),
    }
}

/// Checksum one bounds-checked footer region.
fn check_region(bytes: &[u8], i: usize, r: &FooterRegion) -> Option<VerifyError> {
    let Some(slice) = checked_slice(bytes, r.off, r.len) else {
        // Bounds were pre-checked; unreachable in practice, but stay safe.
        return Some(VerifyError::RegionOutOfBounds {
            index: i,
            off: r.off,
            len: r.len,
        });
    };
    let got = format::crc32c(slice);
    (got != r.crc32c).then_some(VerifyError::ChecksumMismatch {
        index: i,
        stored: r.crc32c,
        computed: got,
    })
}

/// Publish a small text artifact (a manifest, a commit marker) through the
/// same tmp + CRC footer + rename path as checkpoint data, so a crash
/// mid-write can never leave a final name holding a torn body that still
/// parses. The body write goes through the fault layer as `rank`, so
/// kill-after-bytes plans can crash the metadata writer mid-file exactly
/// like a data writer.
pub fn commit_text_with_faults(
    final_path: &Path,
    body: &str,
    fsync: bool,
    faults: &FaultPlan,
    rank: Rank,
) -> io::Result<()> {
    let tmp = tmp_path(final_path);
    let f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .read(true)
        .write(true)
        .open(&tmp)?;
    fault::write_at_with_retry(
        &f,
        rank,
        0,
        body.as_bytes(),
        faults,
        0,
        std::time::Duration::from_micros(50),
    )
    .map_err(|e| match e {
        fault::WriteError::Killed => io::Error::other(format!("rank {rank} killed mid-write")),
        fault::WriteError::Io(e) => e,
        fault::WriteError::DeadlineExceeded { waited } => io::Error::new(
            io::ErrorKind::TimedOut,
            format!("metadata write retries exhausted after {waited:?}"),
        ),
        fault::WriteError::ShortWrite { written, expected } => io::Error::new(
            io::ErrorKind::WriteZero,
            format!("metadata write stalled at {written}/{expected} bytes"),
        ),
    })?;
    drop(f);
    if faults.on_commit(rank) {
        // Die after the body write, before the rename: the final name
        // must never appear.
        return Err(io::Error::other(format!("rank {rank} killed at commit")));
    }
    commit_file_with_faults(&tmp, final_path, body.len() as u64, fsync, faults, rank)
}

/// [`commit_text_with_faults`] without fault injection.
pub fn commit_text(final_path: &Path, body: &str, fsync: bool) -> io::Result<()> {
    commit_text_with_faults(final_path, body, fsync, &FaultPlan::none(), 0)
}

/// Read a text artifact published by [`commit_text`]: verifies the CRC
/// footer and strips it. Bodies written before the footer era (no `RBFT`
/// trailer) are returned as-is, so old checkpoint directories stay
/// readable. A present-but-corrupt footer is an `InvalidData` error — the
/// caller treats the artifact as torn.
pub fn read_committed_text(path: &Path) -> io::Result<String> {
    let bytes = std::fs::read(path)?;
    let flen = format::footer_len(1) as usize;
    let text = |v: Vec<u8>| {
        String::from_utf8(v)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "metadata file is not UTF-8"))
    };
    if bytes.len() >= flen {
        let logical = bytes.len() - flen;
        if bytes[logical..logical + 4] == format::FOOTER_MAGIC.to_le_bytes() {
            if let Err(e) = verify_committed_typed(&bytes, logical as u64) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
            let mut body = bytes;
            body.truncate(logical);
            return text(body);
        }
    }
    text(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmp_path_is_sibling() {
        let p = Path::new("/ck/step0000000001/app.00000.rbio");
        assert_eq!(
            tmp_path(p),
            PathBuf::from("/ck/step0000000001/app.00000.rbio.tmp")
        );
    }

    #[test]
    fn commit_appends_footer_and_renames() {
        let dir = tempdir("commit_basic");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        let payload: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        std::fs::write(&tmp, &payload).unwrap();
        commit_file(&tmp, &fin, 200, false).unwrap();
        assert!(!tmp.exists(), "tmp must be gone after commit");
        let bytes = std::fs::read(&fin).unwrap();
        assert_eq!(bytes.len() as u64, 200 + format::footer_len(1));
        assert_eq!(&bytes[..200], &payload[..]);
        assert!(verify_committed(&bytes, 200).is_none());
    }

    #[test]
    fn short_tmp_file_refuses_to_commit() {
        let dir = tempdir("commit_short");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        std::fs::write(&tmp, [0u8; 10]).unwrap();
        let err = commit_file(&tmp, &fin, 200, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!fin.exists());
        assert!(tmp.exists(), "failed commit must leave the tmp file");
    }

    #[test]
    fn verify_catches_data_flip() {
        let dir = tempdir("commit_flip");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        std::fs::write(&tmp, [7u8; 64]).unwrap();
        commit_file(&tmp, &fin, 64, false).unwrap();
        let mut bytes = std::fs::read(&fin).unwrap();
        bytes[13] ^= 0x01;
        let why = verify_committed(&bytes, 64).expect("must detect flip");
        assert!(why.contains("checksum mismatch"), "{why}");
    }

    #[test]
    fn dir_fsync_failure_is_propagated() {
        let dir = tempdir("commit_dirfsync");
        let tmp = dir.join("f.bin.tmp");
        let fin = dir.join("f.bin");
        std::fs::write(&tmp, [3u8; 32]).unwrap();
        let faults = FaultPlan::none().fail_dir_fsync(4);
        let err = commit_file_with_faults(&tmp, &fin, 32, true, &faults, 4)
            .expect_err("a failed rename-durability barrier must surface");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(err.to_string().contains("directory fsync"), "{err}");
        // The fault is one-shot: a retried commit of fresh data succeeds.
        std::fs::write(&tmp, [3u8; 32]).unwrap();
        std::fs::remove_file(&fin).ok();
        commit_file_with_faults(&tmp, &fin, 32, true, &faults, 4).unwrap();
    }

    #[test]
    fn hostile_footers_yield_typed_errors_not_panics() {
        // A region whose offset + length overflows u64.
        let body = vec![0u8; 16];
        let mut file = body.clone();
        file.extend_from_slice(&format::encode_footer(&[FooterRegion {
            off: u64::MAX - 4,
            len: 8,
            crc32c: 0,
        }]));
        match verify_committed_typed(&file, 16) {
            Err(VerifyError::RegionOutOfBounds { index: 0, .. }) => {}
            other => panic!("expected RegionOutOfBounds, got {other:?}"),
        }
        // A region past the logical size.
        let mut file = body.clone();
        file.extend_from_slice(&format::encode_footer(&[FooterRegion {
            off: 8,
            len: 9,
            crc32c: 0,
        }]));
        assert!(matches!(
            verify_committed_typed(&file, 16),
            Err(VerifyError::RegionOutOfBounds { .. })
        ));
        // An absurd region count whose implied footer length would wrap a
        // 32-bit usize: must be a length mismatch, not a panic.
        let mut file = body.clone();
        file.extend_from_slice(&format::FOOTER_MAGIC.to_le_bytes());
        file.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            verify_committed_typed(&file, 16),
            Err(VerifyError::FooterLength { .. })
        ));
        // Footer shorter than the magic + count prelude.
        let mut file = body.clone();
        file.extend_from_slice(&[0u8; 3]);
        assert!(matches!(
            verify_committed_typed(&file, 16),
            Err(VerifyError::MissingFooter)
        ));
        // Truncated entirely.
        assert!(matches!(
            verify_committed_typed(&body, 64),
            Err(VerifyError::Truncated { .. })
        ));
    }

    #[test]
    fn committed_text_roundtrips_and_detects_torn_bodies() {
        let dir = tempdir("commit_text");
        let p = dir.join("step0000000001.manifest");
        let body = "step 1\nextents 2\na.rbio 0 primary\nb.rbio 1 primary\n";
        commit_text(&p, body, false).unwrap();
        assert_eq!(read_committed_text(&p).unwrap(), body);
        // Flip a byte inside the body: the footer CRC must catch it.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = read_committed_text(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Legacy plain-text bodies (no footer) still read.
        let legacy = dir.join("legacy.manifest");
        std::fs::write(&legacy, body).unwrap();
        assert_eq!(read_committed_text(&legacy).unwrap(), body);
    }

    #[test]
    fn killed_text_commit_leaves_no_final_file() {
        let dir = tempdir("commit_text_kill");
        let p = dir.join("step0000000001.manifest");
        let faults = FaultPlan::none().kill_writer_after_bytes(99, 4);
        let err = commit_text_with_faults(&p, "step 1\nextents 0\n", false, &faults, 99)
            .expect_err("killed mid-manifest-write");
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(!p.exists(), "final manifest must never appear");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio_commit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
