//! Real plan executor: one thread per rank, crossbeam channels for
//! messages, actual files on disk.
//!
//! This is the back-end a downstream application uses to checkpoint for
//! real (at in-process scale), and what the test suite uses to prove that
//! every strategy's plan moves every byte to its correct file offset. The
//! simulated Blue Gene/P executor in `rbio-machine` interprets the *same*
//! plans in virtual time.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};

use rbio_plan::{DataRef, Op, Program};
use rbio_profile::counters;

use crate::backend::BackendKind;
use crate::buf::{BufPool, Bytes, CopyMode};
use crate::commit;
use crate::crash;
use crate::failover::{FailoverDirector, FailoverPolicy, WriterHealth};
use crate::fault::{self, FaultPlan};
use crate::format::synthetic_byte;
use crate::pipeline::{FlushJob, FlushPool, PipelineError, WriterHandle, WriterTuning};
use crate::sched::{self, Point};

/// Test-only regression switch: re-introduces the PR 3 fault-drop bug
/// (`Send` op not advanced past after an injected drop, so the op
/// re-executes and the message is delivered on the second pass because
/// the drop budget was already consumed). Used by `rbio-check` pinned
/// regression schedules; must never be set outside tests.
#[doc(hidden)]
pub static REVERT_PR3_FAULT_DROP: AtomicBool = AtomicBool::new(false);

/// Futile receive polls a controlled run allows before the typed recv
/// timeout surfaces — the deterministic analogue of `recv_timeout`.
pub(crate) const CHECK_RECV_POLL_BUDGET: u32 = 2000;

/// Futile send polls (full bounded mailbox) a controlled run allows
/// before the typed send timeout surfaces — the deterministic analogue
/// of the wall-clock send deadline.
pub(crate) const CHECK_SEND_POLL_BUDGET: u32 = 2000;

/// Default per-rank mailbox capacity (messages). Bounded so a burst or a
/// stalled receiver exerts backpressure on senders instead of growing
/// the heap without bound; override via [`ExecConfig::chan_capacity`].
pub const DEFAULT_CHAN_CAPACITY: usize = 256;

/// Default cap on one coalesced vectored write, bytes. Overridable per
/// run via [`ExecConfig::coalesce_caps`] (the autotuner exports tuned
/// values through `rbio-tune`'s plan JSON).
pub const DEFAULT_COALESCE_BYTES: u64 = 8 << 20;
/// Default cap on chunks per coalesced write (well under any `IOV_MAX`).
pub const DEFAULT_COALESCE_OPS: usize = 64;

/// Byte length a `DataRef` describes.
pub(crate) fn src_len(r: &DataRef) -> u64 {
    match *r {
        DataRef::Own { len, .. } | DataRef::Staging { len, .. } | DataRef::Synthetic { len } => len,
    }
}

/// The source of a `WriteAt` op (callers guarantee the variant).
pub(crate) fn write_src(op: &Op) -> &DataRef {
    match op {
        Op::WriteAt { src, .. } => src,
        _ => unreachable!("write run contains only WriteAt ops"),
    }
}

/// Length of the maximal coalescible run of `WriteAt` ops starting at
/// `ops[i]`: same file, byte-contiguous offsets, bounded size. Shared by
/// both executors so their batching (and thus their syscall pattern) is
/// identical.
pub(crate) fn write_run_len(
    ops: &[Op],
    i: usize,
    file: u32,
    offset: u64,
    max_bytes: u64,
    max_ops: usize,
) -> usize {
    let mut end = i + 1;
    let mut next = offset + src_len(write_src(&ops[i]));
    let mut total = src_len(write_src(&ops[i]));
    while end < ops.len() && end - i < max_ops.max(1) && total < max_bytes.max(1) {
        match &ops[end] {
            Op::WriteAt {
                file: f2,
                offset: o2,
                src: s2,
            } if f2.0 == file && *o2 == next => {
                next += src_len(s2);
                total += src_len(s2);
                end += 1;
            }
            _ => break,
        }
    }
    end
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Directory all plan file names are resolved against.
    pub base_dir: PathBuf,
    /// Call `fsync` before closing files (slower, durable), and fsync the
    /// commit footer + rename when publishing atomic files.
    pub fsync_on_close: bool,
    /// Sleep for `Compute` ops' durations (off by default: tests and
    /// benches usually want the I/O path only).
    pub honor_compute: bool,
    /// Faults to inject (inert by default).
    pub faults: FaultPlan,
    /// Retries per `WriteAt` on a transient error before giving up.
    pub write_retries: u32,
    /// Initial backoff between retries (doubles each attempt).
    pub retry_backoff: Duration,
    /// How long a `Recv` waits with no matching message before failing
    /// (a lost handoff must surface as a typed error, not a hang).
    pub recv_timeout: Duration,
    /// Outstanding background flush jobs per writer. `1` (the default)
    /// is the fully serial path; `≥ 2` defers `WriteAt`/`Close`/`Commit`
    /// to the shared [`FlushPool`] so field *k+1* aggregation overlaps
    /// field *k*'s disk write (2 = double buffering). Output is
    /// byte-identical at any depth: data is snapshotted at issue, jobs
    /// run FIFO per writer, and the pipeline drains at plan barriers,
    /// reads, and end of program.
    pub pipeline_depth: u32,
    /// When set, background jobs sleep a seed-derived pseudo-random
    /// duration before running — a deterministic way for equivalence
    /// tests to sweep cross-rank interleavings.
    pub pipeline_jitter: Option<u64>,
    /// How payload bytes travel to disk. [`CopyMode::ZeroCopy`] (the
    /// default) moves refcounted [`Bytes`] slices and coalesces
    /// contiguous writes; [`CopyMode::DeepCopy`] deep-copies at every
    /// hop — the legacy datapath, kept as the baseline for equivalence
    /// tests and the bytes-copied benchmark.
    pub copy_mode: CopyMode,
    /// Writer failover policy. Disabled by default: a dead writer aborts
    /// the run, exactly as before. When enabled (and the plan supports
    /// takeover — per-writer files, no writer barriers), a dead or hung
    /// writer's extent is re-staged and written by the next surviving
    /// writer, and the generation completes in degraded mode.
    pub failover: FailoverPolicy,
    /// When set, atomic plan files divert into this node-local tier
    /// stage instead of the filesystem: `Open` becomes a no-op,
    /// `WriteAt` appends to the slab at memory speed, and `Commit`
    /// seals the staged file for the background drain engine
    /// (see [`crate::tier`]). Non-atomic files still hit the PFS.
    pub stage: Option<Arc<crate::tier::TierStage>>,
    /// I/O backend driving the background flush pipeline's writes
    /// (ignored at `pipeline_depth` 1, where the serial path issues its
    /// own blocking writes). [`BackendKind::Default`] honors
    /// `RBIO_IO_BACKEND`.
    pub io_backend: BackendKind,
    /// Cap on one coalesced vectored write, bytes (min 1).
    pub coalesce_max_bytes: u64,
    /// Cap on chunks per coalesced vectored write (min 1).
    pub coalesce_max_ops: usize,
    /// Per-rank message mailbox capacity (min 1). Mailboxes are bounded
    /// `sync_channel`s: a sender facing a full mailbox blocks (bounded
    /// resident bytes) and surfaces the typed `TimedOut` error after
    /// `recv_timeout` rather than growing the queue without limit.
    pub chan_capacity: usize,
}

impl ExecConfig {
    /// Config writing under `base_dir`, no fsync, compute ops skipped.
    pub fn new(base_dir: impl AsRef<Path>) -> Self {
        ExecConfig {
            base_dir: base_dir.as_ref().to_path_buf(),
            fsync_on_close: false,
            honor_compute: false,
            faults: FaultPlan::none(),
            write_retries: 3,
            retry_backoff: Duration::from_micros(500),
            recv_timeout: Duration::from_secs(2),
            pipeline_depth: 1,
            pipeline_jitter: None,
            copy_mode: CopyMode::ZeroCopy,
            failover: FailoverPolicy::disabled(),
            stage: None,
            io_backend: BackendKind::Default,
            coalesce_max_bytes: DEFAULT_COALESCE_BYTES,
            coalesce_max_ops: DEFAULT_COALESCE_OPS,
            chan_capacity: DEFAULT_CHAN_CAPACITY,
        }
    }

    /// Replace the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the writer pipeline depth (1 = serial, 2 = double buffering).
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Set the background-job jitter seed for interleaving sweeps.
    pub fn pipeline_jitter(mut self, seed: u64) -> Self {
        self.pipeline_jitter = Some(seed);
        self
    }

    /// Select the datapath copy discipline.
    pub fn copy_mode(mut self, mode: CopyMode) -> Self {
        self.copy_mode = mode;
        self
    }

    /// Replace the writer failover policy.
    pub fn failover(mut self, policy: FailoverPolicy) -> Self {
        self.failover = policy;
        self
    }

    /// Stage atomic files into the node-local tier instead of the PFS.
    pub fn stage(mut self, stage: Arc<crate::tier::TierStage>) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Select the pipeline's I/O backend.
    pub fn io_backend(mut self, kind: BackendKind) -> Self {
        self.io_backend = kind;
        self
    }

    /// Cap coalesced vectored writes at `max_bytes` bytes and `max_ops`
    /// chunks (both clamped to at least 1).
    pub fn coalesce_caps(mut self, max_bytes: u64, max_ops: usize) -> Self {
        self.coalesce_max_bytes = max_bytes.max(1);
        self.coalesce_max_ops = max_ops.max(1);
        self
    }

    /// Set the per-rank message mailbox capacity (clamped to at least 1).
    pub fn chan_capacity(mut self, cap: usize) -> Self {
        self.chan_capacity = cap.max(1);
        self
    }
}

/// Execution outcome.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Per-rank wall time from the synchronized start to that rank's last
    /// op retiring — the "I/O time distribution" of the paper's Figs. 9–11.
    pub rank_times: Vec<Duration>,
    /// Total wall time (slowest rank).
    pub wall_time: Duration,
    /// Total bytes written to files (headers included).
    pub bytes_written: u64,
    /// Total bytes sent through channels.
    pub bytes_sent: u64,
    /// Write attempts repeated after a transient error, across all ranks.
    pub retries: u64,
    /// Completed writer takeovers as `(dead_writer, successor)` pairs, in
    /// failover order. Empty on a healthy run (or with failover disabled).
    pub failovers: Vec<(u32, u32)>,
}

impl ExecReport {
    /// Aggregate write bandwidth in bytes/second, the paper's definition:
    /// total bytes over the slowest rank's wall time.
    pub fn bandwidth(&self) -> f64 {
        let s = self.wall_time.as_secs_f64();
        if s > 0.0 {
            self.bytes_written as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// Executor failure.
#[derive(Debug)]
pub enum ExecError {
    /// Plan/payload mismatch detected before starting.
    Setup(String),
    /// An I/O error on some rank.
    Io {
        /// Rank that failed.
        rank: u32,
        /// Underlying error.
        source: io::Error,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Setup(s) => write!(f, "executor setup: {s}"),
            ExecError::Io { rank, source } => write!(f, "rank {rank}: {source}"),
        }
    }
}

impl std::error::Error for ExecError {}

type Msg = (u32, u64, Bytes); // (src, tag, data)

/// How a bounded send ended. `Disconnected` (receiver endpoint dropped)
/// is not an error by itself — callers decide based on failover fencing
/// whether a gone receiver is expected or fatal.
enum SendOutcome {
    Sent,
    Disconnected,
}

/// An abort-induced error: the rank stopped because a *peer* failed, not
/// because of its own fault. `execute` prefers reporting the root cause.
fn abort_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "aborted: a peer rank failed")
}

fn killed_error(rank: u32) -> io::Error {
    io::Error::other(format!("fault injection: rank {rank} killed"))
}

/// Was this error produced by [`killed_error`] (an injected rank death)?
/// Only killed ranks are eligible for failover absorption — genuine I/O
/// errors and timeouts still abort the run.
fn is_killed_error(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Other && e.to_string().contains("fault injection")
}

fn pipe_error(e: PipelineError) -> io::Error {
    match e {
        PipelineError::Killed { rank } => killed_error(rank),
        PipelineError::Io(source) => source,
    }
}

/// A barrier whose waiters poll a shared abort flag, so one rank dying
/// mid-plan (injected fault or real I/O error) releases everyone with an
/// error instead of wedging the whole executor. `std::sync::Barrier` has
/// no such escape hatch.
struct AbortBarrier {
    n: usize,
    state: Mutex<(u64, usize)>, // (generation, arrived)
    cvar: Condvar,
}

impl AbortBarrier {
    fn new(n: usize) -> Self {
        AbortBarrier {
            n,
            state: Mutex::new((0, 0)),
            cvar: Condvar::new(),
        }
    }

    fn wait(&self, abort: &AtomicBool, timeout: Duration) -> io::Result<()> {
        let mut g = self.state.lock().expect("barrier lock");
        g.1 += 1;
        if g.1 == self.n {
            g.0 += 1;
            g.1 = 0;
            self.cvar.notify_all();
            return Ok(());
        }
        let generation = g.0;
        // One deadline for the whole wait, derived from the configured
        // timeout. Waiters sleep on the condvar until the generation
        // advances or a failing peer wakes them via `wake()` — no fixed
        // poll interval. A barrier stuck past the deadline means a peer
        // is lost without having raised the abort flag; surface that as
        // a typed timeout instead of wedging.
        let deadline = Instant::now() + timeout;
        while g.0 == generation {
            if abort.load(Ordering::Acquire) {
                return Err(abort_error());
            }
            if sched::registered() {
                // Controlled run: blocking on the condvar would wedge
                // the single run token — poll via the scheduler.
                drop(g);
                sched::yield_now(Point::BarrierWait);
                g = self.state.lock().expect("barrier lock");
            } else {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("barrier timeout: peers missing after {timeout:?}"),
                    ));
                }
                g = self.cvar.wait_timeout(g, left).expect("barrier lock").0;
            }
        }
        Ok(())
    }

    /// Wake all waiters so they re-check the abort flag. Called by a
    /// failing rank after it raises `abort`.
    fn wake(&self) {
        self.cvar.notify_all();
    }
}

struct RankCtx<'a> {
    rank: u32,
    program: &'a Program,
    payload: &'a Bytes,
    /// Every rank's payload — a takeover re-derives the orphan's extent
    /// (and the sends feeding it) from these shared buffers.
    all_payloads: &'a [Bytes],
    staging: Vec<u8>,
    rx: Receiver<Msg>,
    stash: HashMap<(u32, u64), std::collections::VecDeque<Bytes>>,
    senders: &'a [SyncSender<Msg>],
    barriers: &'a [AbortBarrier],
    files: HashMap<u32, Arc<File>>,
    cfg: &'a ExecConfig,
    abort: &'a AtomicBool,
    retries: &'a AtomicU64,
    /// Background flush pipeline (`pipeline_depth >= 2` only).
    pipe: Option<WriterHandle>,
    /// Failover director, present when the policy is enabled and the plan
    /// supports takeover.
    director: Option<&'a FailoverDirector>,
    /// This rank's liveness heartbeat, bumped at every op boundary and
    /// receive poll; the monitor thread declares a writer dead when it
    /// goes stale past the policy deadline.
    beat: Arc<AtomicU64>,
}

impl RankCtx<'_> {
    /// Materialize `r` as an owned, immutable [`Bytes`] snapshot — what a
    /// `Send` or a deferred (pipelined) write needs. Under `ZeroCopy` a
    /// payload reference is an O(1) refcounted slice (payloads are never
    /// mutated during a run); only staging references copy, because
    /// staging is reused by later `Pack`/`Recv` ops. Under `DeepCopy`
    /// everything copies, as the seed datapath did. Every memcpy either
    /// way is charged to [`counters::add_bytes_copied`].
    fn resolve_owned(&self, r: &DataRef, file_off_hint: u64) -> Bytes {
        match self.cfg.copy_mode {
            CopyMode::DeepCopy => match *r {
                DataRef::Own { off, len } => {
                    counters::add_bytes_copied(len);
                    Bytes::from_vec(self.payload[off as usize..(off + len) as usize].to_vec())
                }
                DataRef::Staging { off, len } => {
                    counters::add_bytes_copied(len);
                    Bytes::from_vec(self.staging[off as usize..(off + len) as usize].to_vec())
                }
                DataRef::Synthetic { len } => Bytes::from_vec(
                    (0..len)
                        .map(|i| synthetic_byte(file_off_hint + i))
                        .collect(),
                ),
            },
            CopyMode::ZeroCopy => match *r {
                DataRef::Own { off, len } => self.payload.slice(off as usize..(off + len) as usize),
                DataRef::Staging { off, len } => BufPool::global()
                    .copy_from_slice(&self.staging[off as usize..(off + len) as usize]),
                DataRef::Synthetic { len } => BufPool::global()
                    .from_fn(len as usize, |i| synthetic_byte(file_off_hint + i as u64)),
            },
        }
    }

    fn run(&mut self) -> io::Result<()> {
        // Copy out the `&'a Program` reference so indexed op access does
        // not hold a borrow of `self` across `&mut self` calls.
        let program = self.program;
        let ops = &program.ops[self.rank as usize];
        let mut i = 0;
        while i < ops.len() {
            sched::yield_now(Point::Progress);
            self.beat.fetch_add(1, Ordering::Relaxed);
            let op = &ops[i];
            match op {
                Op::Compute { nanos } => {
                    if self.cfg.honor_compute {
                        std::thread::sleep(Duration::from_nanos(*nanos));
                    }
                }
                Op::Pack {
                    src,
                    staging_off,
                    bytes,
                } => {
                    if let Some(s) = src {
                        match *s {
                            DataRef::Staging { off, len } => {
                                counters::add_bytes_copied(len);
                                self.staging.copy_within(
                                    off as usize..(off + len) as usize,
                                    *staging_off as usize,
                                );
                            }
                            _ => {
                                let data = self.resolve_owned(s, 0);
                                counters::add_bytes_copied(*bytes);
                                self.staging[*staging_off as usize
                                    ..*staging_off as usize + *bytes as usize]
                                    .copy_from_slice(&data);
                            }
                        }
                    }
                }
                Op::Send { dst, tag, src } => {
                    let data = self.resolve_owned(src, 0);
                    if self.cfg.faults.on_send(self.rank, *dst) {
                        sched::emit(|| sched::Event::SendAttempt {
                            rank: self.rank,
                            dst: *dst,
                            op_index: i,
                            dropped: true,
                        });
                        // Injected message loss: the receiver times out.
                        // Advancing `i` here is the PR 3 fix — without it
                        // the op re-executes and, the drop budget being
                        // spent, delivers the "lost" message after all.
                        if !REVERT_PR3_FAULT_DROP.load(Ordering::Relaxed) {
                            i += 1;
                        }
                        continue;
                    }
                    sched::emit(|| sched::Event::SendAttempt {
                        rank: self.rank,
                        dst: *dst,
                        op_index: i,
                        dropped: false,
                    });
                    if self.director.is_some_and(|d| d.is_fenced(*dst)) {
                        // The destination writer is dead: its successor
                        // re-derives this payload from the shared buffers
                        // during takeover, so there is nothing to deliver.
                    } else if matches!(
                        self.send_bounded(*dst, self.rank, tag.0, data)?,
                        SendOutcome::Disconnected
                    ) {
                        if self.director.is_some_and(|d| d.is_fenced(*dst)) {
                            // The writer died between the check and the
                            // send — same rerouting applies.
                        } else {
                            // The receiver is gone — it failed and dropped
                            // its endpoint; surface as an abort-induced
                            // error.
                            return Err(abort_error());
                        }
                    }
                }
                Op::Recv {
                    src,
                    tag,
                    bytes,
                    staging_off,
                } => {
                    let data = self.recv_matching(*src, tag.0)?;
                    if data.len() as u64 != *bytes {
                        return Err(io::Error::other(format!(
                            "recv size mismatch: want {bytes}, got {}",
                            data.len()
                        )));
                    }
                    // The one aggregation copy the plan IR mandates: the
                    // received chunk lands in this writer's staging image.
                    counters::add_bytes_copied(data.len() as u64);
                    self.staging[*staging_off as usize..*staging_off as usize + data.len()]
                        .copy_from_slice(&data);
                }
                Op::Barrier { comm } => {
                    // Barriers carry cross-rank happens-before edges (e.g.
                    // "all collective writes land before the owner
                    // commits"), so the pipeline must be empty on entry.
                    self.drain_pipe()?;
                    sched::emit(|| sched::Event::BarrierEnter { rank: self.rank });
                    self.barriers[comm.0 as usize].wait(self.abort, self.cfg.recv_timeout)?;
                }
                Op::Open { file, create } => {
                    if self.staged_for(file.0).is_some() {
                        // Tier-staged file: no filesystem object exists
                        // until the drain engine publishes it.
                        i += 1;
                        continue;
                    }
                    let path = self.file_path(file.0);
                    let f = if *create {
                        if let Some(parent) = path.parent() {
                            std::fs::create_dir_all(parent)?;
                        }
                        OpenOptions::new()
                            .create(true)
                            .truncate(true)
                            .write(true)
                            .read(true)
                            .open(&path)?
                    } else {
                        OpenOptions::new().write(true).read(true).open(&path)?
                    };
                    self.files.insert(file.0, Arc::new(f));
                }
                Op::WriteAt {
                    file,
                    offset,
                    src: _,
                } if self.staged_for(file.0).is_some() => {
                    i = self.stage_write_run(ops, i, file.0, *offset)?;
                    continue;
                }
                Op::WriteAt {
                    file,
                    offset,
                    src: _,
                } => {
                    i = self.handle_write_run(ops, i, file.0, *offset)?;
                    continue;
                }
                Op::ReadAt {
                    file,
                    offset,
                    len,
                    staging_off,
                } => {
                    // Read-after-write: pending flushes must land first.
                    self.drain_pipe()?;
                    let f = self.files.get(&file.0).expect("validated: opened");
                    let dst = &mut self.staging
                        [*staging_off as usize..*staging_off as usize + *len as usize];
                    f.read_exact_at(dst, *offset)?;
                }
                Op::Close { file } => {
                    if let Some(f) = self.files.remove(&file.0) {
                        if self.pipe.is_some() {
                            self.submit(FlushJob::Close {
                                file: f,
                                fsync: self.cfg.fsync_on_close,
                            })?;
                        } else if self.cfg.fsync_on_close {
                            if let Some(e) = self.cfg.faults.on_fsync(self.rank) {
                                return Err(e);
                            }
                            f.sync_all()
                                .inspect_err(|_| self.cfg.faults.latch_fsync_failure(self.rank))?;
                            crash::record_fsync_file(&f);
                        }
                    }
                }
                Op::Commit { file } => {
                    // The fence: a writer that was declared dead (and whose
                    // extent a successor now owns) must never publish, even
                    // if it revives after a hang. The refusal is absorbed —
                    // the zombie simply skips the rename and retires.
                    let fenced = self.director.is_some_and(|d| !d.allow_commit(self.rank));
                    if !fenced {
                        let spec = &self.program.files[file.0 as usize];
                        if let Some(stage) = self.staged_for(file.0) {
                            // Tier-staged: sealing is the whole commit;
                            // the drain engine publishes to the PFS (with
                            // footer + rename) in the background.
                            stage.seal_file(&spec.name, spec.size);
                            i += 1;
                            continue;
                        }
                        let final_path = self.cfg.base_dir.join(&spec.name);
                        let tmp = commit::tmp_path(&final_path);
                        if self.pipe.is_some() {
                            // The commit fault check and the rename both run
                            // inside the job, after this writer's data writes
                            // (FIFO) — commit stays the last op on the owner.
                            self.submit(FlushJob::Commit {
                                tmp,
                                final_path,
                                size: spec.size,
                                fsync: self.cfg.fsync_on_close,
                            })?;
                        } else {
                            if self.cfg.faults.on_commit(self.rank) {
                                // The rank dies after its data writes but
                                // before the rename: the final name must
                                // never appear.
                                return Err(killed_error(self.rank));
                            }
                            commit::commit_file_with_faults(
                                &tmp,
                                &final_path,
                                spec.size,
                                self.cfg.fsync_on_close,
                                &self.cfg.faults,
                                self.rank,
                            )?;
                            sched::emit(|| sched::Event::ExtentCommit {
                                owner: self.rank,
                                by: self.rank,
                                path_hash: sched::path_fingerprint(&final_path),
                            });
                        }
                    }
                }
            }
            i += 1;
        }
        self.drain_pipe()?;
        Ok(())
    }

    /// Execute the coalescible run of `WriteAt` ops starting at `ops[i]`;
    /// returns the index of the first op not consumed.
    ///
    /// Coalescing turns byte-contiguous same-file writes into one
    /// vectored write. It is skipped when faults are armed — the
    /// [`FaultPlan`] counts logical writes and its semantics are
    /// specified against plan ops, one write per op — and under
    /// `DeepCopy`, which preserves the legacy one-op-one-write shape.
    fn handle_write_run(
        &mut self,
        ops: &[Op],
        i: usize,
        file: u32,
        offset: u64,
    ) -> io::Result<usize> {
        self.maybe_hang();
        let coalesce = self.cfg.copy_mode == CopyMode::ZeroCopy && !self.cfg.faults.is_armed();
        let end = if coalesce {
            write_run_len(
                ops,
                i,
                file,
                offset,
                self.cfg.coalesce_max_bytes,
                self.cfg.coalesce_max_ops,
            )
        } else {
            i + 1
        };
        let total: u64 = ops[i..end].iter().map(|o| src_len(write_src(o))).sum();
        counters::add_checkpoint_bytes(total);

        if self.pipe.is_some() {
            // Deferred flush: snapshot each source as owned `Bytes` so the
            // background write never races with later staging reuse.
            let f = Arc::clone(self.files.get(&file).expect("validated: opened"));
            if end == i + 1 {
                let data = self.resolve_owned(write_src(&ops[i]), offset);
                self.submit(FlushJob::Write {
                    file: f,
                    offset,
                    data,
                })?;
            } else {
                let mut bufs = Vec::with_capacity(end - i);
                let mut off = offset;
                for o in &ops[i..end] {
                    let s = write_src(o);
                    bufs.push(self.resolve_owned(s, off));
                    off += src_len(s);
                }
                self.submit(FlushJob::WriteV {
                    file: f,
                    offset,
                    bufs,
                })?;
            }
            return Ok(end);
        }

        if end == i + 1 {
            // Serial single write: the write completes before the op
            // retires, so ZeroCopy writes straight from the borrowed
            // source — no snapshot at all.
            match (self.cfg.copy_mode, write_src(&ops[i])) {
                (CopyMode::ZeroCopy, &DataRef::Own { off, len }) => {
                    let data = &self.payload[off as usize..(off + len) as usize];
                    self.write_with_retry(file, offset, data)?;
                }
                (CopyMode::ZeroCopy, &DataRef::Staging { off, len }) => {
                    let data = &self.staging[off as usize..(off + len) as usize];
                    self.write_with_retry(file, offset, data)?;
                }
                (_, src) => {
                    let data = self.resolve_owned(src, offset);
                    self.write_with_retry(file, offset, &data)?;
                }
            }
            return Ok(end);
        }

        // Serial coalesced run: gather borrowed slices (plus generated
        // synthetic chunks) and issue one vectored write.
        enum Chunk {
            Payload(usize, usize),
            Staging(usize, usize),
            Owned(Bytes),
        }
        let mut chunks = Vec::with_capacity(end - i);
        let mut off = offset;
        for o in &ops[i..end] {
            match *write_src(o) {
                DataRef::Own { off: po, len } => {
                    chunks.push(Chunk::Payload(po as usize, len as usize))
                }
                DataRef::Staging { off: so, len } => {
                    chunks.push(Chunk::Staging(so as usize, len as usize))
                }
                DataRef::Synthetic { len } => chunks.push(Chunk::Owned(
                    BufPool::global().from_fn(len as usize, |k| synthetic_byte(off + k as u64)),
                )),
            }
            off += src_len(write_src(o));
        }
        let slices: Vec<&[u8]> = chunks
            .iter()
            .map(|c| match c {
                Chunk::Payload(o, l) => &self.payload[*o..*o + *l],
                Chunk::Staging(o, l) => &self.staging[*o..*o + *l],
                Chunk::Owned(b) => b.as_ref(),
            })
            .collect();
        let f = self.files.get(&file).expect("validated: opened");
        match fault::write_vectored_at(
            f,
            self.rank,
            offset,
            &slices,
            &self.cfg.faults,
            self.cfg.write_retries,
            self.cfg.retry_backoff,
        ) {
            Ok(attempts) => {
                self.retries
                    .fetch_add(u64::from(attempts), Ordering::Relaxed);
                Ok(end)
            }
            Err(fault::WriteError::Killed) => Err(killed_error(self.rank)),
            Err(fault::WriteError::Io(e)) => Err(e),
            Err(fault::WriteError::DeadlineExceeded { waited }) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("write retries exhausted their deadline after {waited:?}"),
            )),
            Err(fault::WriteError::ShortWrite { written, expected }) => Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("short write stalled at {written}/{expected} bytes"),
            )),
        }
    }

    /// The tier stage `file` diverts into: staging must be configured
    /// and the file atomic (non-atomic files always go to the PFS,
    /// since only committed files are drain-publishable).
    fn staged_for(&self, file: u32) -> Option<&Arc<crate::tier::TierStage>> {
        let stage = self.cfg.stage.as_ref()?;
        self.program.files[file as usize].atomic.then_some(stage)
    }

    /// Divert the coalescible run of `WriteAt` ops starting at `ops[i]`
    /// into the node-local tier stage; returns the first unconsumed
    /// index. The slab append is the whole foreground cost — memory
    /// speed. It deliberately skips the per-write fault hooks: the
    /// staged path's failure mode is losing the tier
    /// ([`crate::tier::TierEngine::lose_local`]), not a torn write.
    fn stage_write_run(
        &mut self,
        ops: &[Op],
        i: usize,
        file: u32,
        offset: u64,
    ) -> io::Result<usize> {
        self.maybe_hang();
        let end = write_run_len(
            ops,
            i,
            file,
            offset,
            self.cfg.coalesce_max_bytes,
            self.cfg.coalesce_max_ops,
        );
        let total: u64 = ops[i..end].iter().map(|o| src_len(write_src(o))).sum();
        counters::add_checkpoint_bytes(total);
        let stage = Arc::clone(self.staged_for(file).expect("caller checked staged"));
        let name = self.program.files[file as usize].name.clone();
        let mut off = offset;
        for o in &ops[i..end] {
            let res = match *write_src(o) {
                DataRef::Own { off: po, len } => {
                    stage.append(&name, off, &self.payload[po as usize..(po + len) as usize])
                }
                DataRef::Staging { off: so, len } => {
                    stage.append(&name, off, &self.staging[so as usize..(so + len) as usize])
                }
                DataRef::Synthetic { len } => {
                    let data: Vec<u8> = (0..len).map(|k| synthetic_byte(off + k)).collect();
                    stage.append(&name, off, &data)
                }
            };
            res.map_err(io::Error::other)?;
            off += src_len(write_src(o));
        }
        Ok(end)
    }

    /// Consult the one-shot hang fault for this rank, if armed. A hang
    /// models a wedged writer: in production the thread genuinely sleeps
    /// and the monitor watches its heartbeat go stale; under a controlled
    /// scheduler wall-clock stalls would wreck determinism, so the rank
    /// announces the monitor's verdict for the injected duration itself
    /// and then yields so peers interleave. Either way the rank *revives*
    /// afterwards and runs on as a zombie — the fence at `Commit` is what
    /// keeps it from publishing.
    fn maybe_hang(&mut self) {
        let Some(d) = self.cfg.faults.take_hang(self.rank) else {
            return;
        };
        if sched::registered() {
            if let Some(dir) = self.director {
                match dir.policy().classify_stall(d) {
                    WriterHealth::Dead => {
                        let _ = dir.report_dead(self.rank);
                    }
                    WriterHealth::Straggling => dir.report_straggling(self.rank),
                    WriterHealth::Healthy => {}
                }
            }
            for _ in 0..4 {
                sched::yield_now(Point::Progress);
            }
        } else {
            std::thread::sleep(d);
        }
    }

    fn submit(&self, job: FlushJob) -> io::Result<()> {
        self.pipe
            .as_ref()
            .expect("pipelined path")
            .submit(job)
            .map_err(pipe_error)
    }

    fn drain_pipe(&self) -> io::Result<()> {
        if let Some(p) = &self.pipe {
            let retried = p.drain().map_err(pipe_error)?;
            self.retries.fetch_add(retried, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Path a rank's file ops target: atomic files live under their `.tmp`
    /// sibling until the owner's `Commit` renames them into place.
    fn file_path(&self, file: u32) -> PathBuf {
        let spec = &self.program.files[file as usize];
        let path = self.cfg.base_dir.join(&spec.name);
        if spec.atomic {
            commit::tmp_path(&path)
        } else {
            path
        }
    }

    fn write_with_retry(&self, file: u32, offset: u64, data: &[u8]) -> io::Result<()> {
        let f = self.files.get(&file).expect("validated: opened");
        match fault::write_at_with_retry(
            f,
            self.rank,
            offset,
            data,
            &self.cfg.faults,
            self.cfg.write_retries,
            self.cfg.retry_backoff,
        ) {
            Ok(attempts) => {
                self.retries
                    .fetch_add(u64::from(attempts), Ordering::Relaxed);
                Ok(())
            }
            Err(fault::WriteError::Killed) => Err(killed_error(self.rank)),
            Err(fault::WriteError::Io(e)) => Err(e),
            Err(fault::WriteError::DeadlineExceeded { waited }) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("write retries exhausted their deadline after {waited:?}"),
            )),
            Err(fault::WriteError::ShortWrite { written, expected }) => Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("short write stalled at {written}/{expected} bytes"),
            )),
        }
    }

    fn recv_matching(&mut self, src: u32, tag: u64) -> io::Result<Bytes> {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(d) = q.pop_front() {
                return Ok(d);
            }
        }
        if sched::registered() {
            return self.recv_matching_controlled(src, tag);
        }
        let deadline = Instant::now() + self.cfg.recv_timeout;
        loop {
            // A rank blocked in a receive is alive, just waiting.
            self.beat.fetch_add(1, Ordering::Relaxed);
            if self.abort.load(Ordering::Acquire) {
                return Err(abort_error());
            }
            let slice =
                Duration::from_millis(25).min(deadline.saturating_duration_since(Instant::now()));
            match self.rx.recv_timeout(slice) {
                Ok((s, t, d)) => {
                    if s == src && t == tag {
                        return Ok(d);
                    }
                    self.stash.entry((s, t)).or_default().push_back(d);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::other("message channel closed"));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "recv timeout: no message from rank {src} tag {tag} \
                                 within {:?} (lost handoff?)",
                                self.cfg.recv_timeout
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Controlled-run receive: wall-clock timeouts would make schedules
    /// nondeterministic, so a fixed futile-poll budget plays the role of
    /// `recv_timeout`. Budget exhaustion is the *expected* outcome for
    /// dropped-message fault programs and surfaces the same typed
    /// `TimedOut` error as the production path.
    fn recv_matching_controlled(&mut self, src: u32, tag: u64) -> io::Result<Bytes> {
        let mut budget = CHECK_RECV_POLL_BUDGET;
        loop {
            if self.abort.load(Ordering::Acquire) {
                return Err(abort_error());
            }
            match self.rx.try_recv() {
                Ok((s, t, d)) => {
                    if s == src && t == tag {
                        return Ok(d);
                    }
                    self.stash.entry((s, t)).or_default().push_back(d);
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    return Err(io::Error::other("message channel closed"));
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if budget == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "recv timeout: no message from rank {src} tag {tag} \
                                 within {CHECK_RECV_POLL_BUDGET} controlled polls \
                                 (lost handoff?)"
                            ),
                        ));
                    }
                    budget -= 1;
                    sched::yield_now(Point::RecvEmpty);
                }
            }
        }
    }

    /// Deadline-bounded send into `dst`'s bounded mailbox. A full
    /// mailbox blocks the sender (that bounded wait *is* the
    /// backpressure this PR's bugfix pins — resident queue bytes can
    /// never exceed `chan_capacity` messages) until the receiver drains
    /// a slot, the run aborts, or the deadline passes, in which case the
    /// same typed `TimedOut` error as a receive timeout surfaces.
    fn send_bounded(
        &self,
        dst: u32,
        src_rank: u32,
        tag: u64,
        data: Bytes,
    ) -> io::Result<SendOutcome> {
        let mut msg = (src_rank, tag, data);
        match self.senders[dst as usize].try_send(msg) {
            Ok(()) => return Ok(SendOutcome::Sent),
            Err(TrySendError::Disconnected(_)) => return Ok(SendOutcome::Disconnected),
            Err(TrySendError::Full(m)) => msg = m,
        }
        counters::add_send_backpressure_blocks(1);
        if sched::registered() {
            // Controlled run: a futile-poll budget replaces the
            // wall-clock deadline (see `recv_matching_controlled`).
            let mut budget = CHECK_SEND_POLL_BUDGET;
            loop {
                if self.abort.load(Ordering::Acquire) {
                    return Err(abort_error());
                }
                match self.senders[dst as usize].try_send(msg) {
                    Ok(()) => return Ok(SendOutcome::Sent),
                    Err(TrySendError::Disconnected(_)) => return Ok(SendOutcome::Disconnected),
                    Err(TrySendError::Full(m)) => {
                        if budget == 0 {
                            counters::add_send_backpressure_timeouts(1);
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!(
                                    "send timeout: rank {dst}'s mailbox stayed full for \
                                     {CHECK_SEND_POLL_BUDGET} controlled polls (stalled receiver?)"
                                ),
                            ));
                        }
                        budget -= 1;
                        msg = m;
                        sched::yield_now(Point::SendFull);
                    }
                }
            }
        }
        let deadline = Instant::now() + self.cfg.recv_timeout;
        loop {
            // A rank blocked in a send is alive, just backpressured.
            self.beat.fetch_add(1, Ordering::Relaxed);
            if self.abort.load(Ordering::Acquire) {
                return Err(abort_error());
            }
            match self.senders[dst as usize].try_send(msg) {
                Ok(()) => return Ok(SendOutcome::Sent),
                Err(TrySendError::Disconnected(_)) => return Ok(SendOutcome::Disconnected),
                Err(TrySendError::Full(m)) => {
                    if Instant::now() >= deadline {
                        counters::add_send_backpressure_timeouts(1);
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "send timeout: rank {dst}'s mailbox stayed full for {:?} \
                                 (stalled receiver?)",
                                self.cfg.recv_timeout
                            ),
                        ));
                    }
                    msg = m;
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// Re-execute the orphaned writer's op list on this (surviving) rank.
    ///
    /// Failover is pull-based: instead of replaying the messages the dead
    /// writer consumed, the successor re-derives every byte from the
    /// shared payload buffers — each `Recv` is resolved by scanning the
    /// sender's op list for the matching (FIFO per `(src, tag)`) `Send`
    /// and reading its `DataRef` straight out of that rank's payload.
    /// This is why takeover is only offered for plans whose inbound sends
    /// are payload- or synthetic-sourced (see [`failover_supported`]).
    ///
    /// Writes go through the serial fault-checked path under the
    /// *successor's* rank identity, so cascading failures stay
    /// injectable. The final `Commit` is guarded by the director's
    /// per-extent CAS: exactly one rank ever publishes it.
    fn run_takeover(&mut self, orphan: u32, dir: &FailoverDirector) -> io::Result<()> {
        let program = self.program;
        let ops = &program.ops[orphan as usize];
        let payloads = self.all_payloads;
        let mut staging = vec![0u8; program.staging[orphan as usize] as usize];
        let mut files: HashMap<u32, File> = HashMap::new();
        // FIFO scan positions into each sender's op list, per (src, tag).
        let mut scan: HashMap<(u32, u64), usize> = HashMap::new();

        fn bytes_of(payload: &Bytes, staging: &[u8], r: &DataRef, off_hint: u64) -> Vec<u8> {
            match *r {
                DataRef::Own { off, len } => payload[off as usize..(off + len) as usize].to_vec(),
                DataRef::Staging { off, len } => {
                    staging[off as usize..(off + len) as usize].to_vec()
                }
                DataRef::Synthetic { len } => {
                    (0..len).map(|i| synthetic_byte(off_hint + i)).collect()
                }
            }
        }

        for op in ops {
            sched::yield_now(Point::Progress);
            self.beat.fetch_add(1, Ordering::Relaxed);
            if self.abort.load(Ordering::Acquire) {
                return Err(abort_error());
            }
            match op {
                Op::Compute { .. } => {}
                Op::Pack {
                    src,
                    staging_off,
                    bytes,
                } => {
                    if let Some(s) = src {
                        match *s {
                            DataRef::Staging { off, len } => {
                                counters::add_bytes_copied(len);
                                staging.copy_within(
                                    off as usize..(off + len) as usize,
                                    *staging_off as usize,
                                );
                            }
                            _ => {
                                let d = bytes_of(&payloads[orphan as usize], &staging, s, 0);
                                counters::add_bytes_copied(*bytes);
                                staging[*staging_off as usize
                                    ..*staging_off as usize + *bytes as usize]
                                    .copy_from_slice(&d);
                            }
                        }
                    }
                }
                Op::Send { dst, tag, src } => {
                    // Forward on the orphan's behalf (wave-chain tokens
                    // etc.). `Msg` carries the source rank, so the
                    // receiver matches it as if the orphan had sent it; a
                    // duplicate of a pre-death send parks harmlessly in
                    // the receiver's stash.
                    let d = bytes_of(&payloads[orphan as usize], &staging, src, 0);
                    if !dir.is_fenced(*dst)
                        && matches!(
                            self.send_bounded(*dst, orphan, tag.0, Bytes::from_vec(d))?,
                            SendOutcome::Disconnected
                        )
                        && !dir.is_fenced(*dst)
                    {
                        return Err(abort_error());
                    }
                }
                Op::Recv {
                    src,
                    tag,
                    bytes,
                    staging_off,
                } => {
                    let pos = scan.entry((*src, tag.0)).or_insert(0);
                    let sops = &program.ops[*src as usize];
                    let mut found = None;
                    while *pos < sops.len() {
                        let j = *pos;
                        *pos += 1;
                        if let Op::Send {
                            dst,
                            tag: t2,
                            src: s2,
                        } = &sops[j]
                        {
                            if *dst == orphan && t2.0 == tag.0 {
                                found = Some(*s2);
                                break;
                            }
                        }
                    }
                    let Some(sref) = found else {
                        return Err(io::Error::other(format!(
                            "takeover of rank {orphan}: no matching send from rank {src} \
                             tag {} in the plan",
                            tag.0
                        )));
                    };
                    if matches!(sref, DataRef::Staging { .. }) {
                        return Err(io::Error::other(format!(
                            "takeover of rank {orphan}: send from rank {src} is \
                             staging-sourced (unsupported plan shape)"
                        )));
                    }
                    let d = bytes_of(&payloads[*src as usize], &[], &sref, 0);
                    if d.len() as u64 != *bytes {
                        return Err(io::Error::other(format!(
                            "takeover recv size mismatch: want {bytes}, got {}",
                            d.len()
                        )));
                    }
                    counters::add_bytes_copied(d.len() as u64);
                    staging[*staging_off as usize..*staging_off as usize + d.len()]
                        .copy_from_slice(&d);
                }
                Op::Barrier { .. } => {
                    return Err(io::Error::other(format!(
                        "takeover of rank {orphan} hit a barrier (unsupported plan shape)"
                    )));
                }
                Op::Open { file, create } => {
                    if self.staged_for(file.0).is_some() {
                        continue;
                    }
                    let path = self.file_path(file.0);
                    let f = if *create {
                        if let Some(parent) = path.parent() {
                            std::fs::create_dir_all(parent)?;
                        }
                        OpenOptions::new()
                            .create(true)
                            .truncate(true)
                            .write(true)
                            .read(true)
                            .open(&path)?
                    } else {
                        OpenOptions::new().write(true).read(true).open(&path)?
                    };
                    files.insert(file.0, f);
                }
                Op::WriteAt { file, offset, src } => {
                    let d = bytes_of(&payloads[orphan as usize], &staging, src, *offset);
                    counters::add_checkpoint_bytes(d.len() as u64);
                    if let Some(stage) = self.staged_for(file.0) {
                        // Successor re-stages the orphan's extent into
                        // the slab; the drain publishes it like any
                        // other staged file.
                        let name = &program.files[file.0 as usize].name;
                        stage.append(name, *offset, &d).map_err(io::Error::other)?;
                        continue;
                    }
                    let f = files.get(&file.0).expect("validated: opened");
                    match fault::write_at_with_retry(
                        f,
                        self.rank,
                        *offset,
                        &d,
                        &self.cfg.faults,
                        self.cfg.write_retries,
                        self.cfg.retry_backoff,
                    ) {
                        Ok(attempts) => {
                            self.retries
                                .fetch_add(u64::from(attempts), Ordering::Relaxed);
                        }
                        Err(fault::WriteError::Killed) => return Err(killed_error(self.rank)),
                        Err(fault::WriteError::Io(e)) => return Err(e),
                        Err(fault::WriteError::DeadlineExceeded { waited }) => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("write retries exhausted their deadline after {waited:?}"),
                            ))
                        }
                        Err(fault::WriteError::ShortWrite { written, expected }) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                format!("short write stalled at {written}/{expected} bytes"),
                            ))
                        }
                    }
                }
                Op::ReadAt {
                    file,
                    offset,
                    len,
                    staging_off,
                } => {
                    let f = files.get(&file.0).expect("validated: opened");
                    let dst =
                        &mut staging[*staging_off as usize..*staging_off as usize + *len as usize];
                    f.read_exact_at(dst, *offset)?;
                }
                Op::Close { file } => {
                    if let Some(f) = files.remove(&file.0) {
                        if self.cfg.fsync_on_close {
                            if let Some(e) = self.cfg.faults.on_fsync(self.rank) {
                                return Err(e);
                            }
                            f.sync_all()
                                .inspect_err(|_| self.cfg.faults.latch_fsync_failure(self.rank))?;
                            crash::record_fsync_file(&f);
                        }
                    }
                }
                Op::Commit { file } => {
                    if dir.begin_commit(orphan, file.0) {
                        let spec = &program.files[file.0 as usize];
                        if let Some(stage) = self.staged_for(file.0) {
                            stage.seal_file(&spec.name, spec.size);
                            continue;
                        }
                        let final_path = self.cfg.base_dir.join(&spec.name);
                        let tmp = commit::tmp_path(&final_path);
                        if self.cfg.faults.on_commit(self.rank) {
                            return Err(killed_error(self.rank));
                        }
                        commit::commit_file_with_faults(
                            &tmp,
                            &final_path,
                            spec.size,
                            self.cfg.fsync_on_close,
                            &self.cfg.faults,
                            self.rank,
                        )?;
                        sched::emit(|| sched::Event::ExtentCommit {
                            owner: orphan,
                            by: self.rank,
                            path_hash: sched::path_fingerprint(&final_path),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Ranks that perform file ops — the failover domain. For rbIO these are
/// the `ng` aggregating writers; for one-file-per-process every rank.
fn writer_ranks(program: &Program) -> Vec<u32> {
    (0..program.nranks())
        .filter(|&r| {
            program.ops[r as usize]
                .iter()
                .any(|o| matches!(o, Op::Open { .. }))
        })
        .collect()
}

/// Can a dead writer's extent be re-derived by a successor?
///
/// Takeover replays the orphan's op list from the shared payload
/// buffers, so it requires (a) no barriers on any writer — a collective
/// commit protocol cannot make progress with a member missing — and (b)
/// every send *into* a writer sourced from the sender's payload (or
/// synthetic), never from sender-side staging the successor cannot see.
fn failover_supported(program: &Program, writers: &[u32]) -> bool {
    if writers.len() < 2 {
        return false;
    }
    let writer_set: std::collections::HashSet<u32> = writers.iter().copied().collect();
    for r in 0..program.nranks() {
        for o in &program.ops[r as usize] {
            match o {
                Op::Barrier { .. } if writer_set.contains(&r) => return false,
                Op::Send { dst, src, .. }
                    if writer_set.contains(dst) && matches!(src, DataRef::Staging { .. }) =>
                {
                    return false
                }
                _ => {}
            }
        }
    }
    true
}

/// Production health monitor: watches writer heartbeats and reports
/// stalls to the director. Controlled runs never spawn this — the
/// injected hang announces the monitor's verdict deterministically.
fn monitor_writers(
    dir: &FailoverDirector,
    beats: &[Arc<AtomicU64>],
    ranks_alive: &AtomicUsize,
    abort: &AtomicBool,
) {
    let policy = *dir.policy();
    let poll = (policy.straggler_after / 4).max(Duration::from_millis(1));
    let now = Instant::now();
    let mut last: Vec<(u32, u64, Instant)> = dir
        .writers()
        .iter()
        .map(|&w| (w, beats[w as usize].load(Ordering::Relaxed), now))
        .collect();
    loop {
        if ranks_alive.load(Ordering::Acquire) == 0 || abort.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(poll);
        for entry in &mut last {
            let (w, seen, since) = *entry;
            if dir.is_done(w) || dir.is_fenced(w) {
                continue;
            }
            let v = beats[w as usize].load(Ordering::Relaxed);
            if v != seen {
                *entry = (w, v, Instant::now());
                continue;
            }
            match policy.classify_stall(since.elapsed()) {
                WriterHealth::Dead => {
                    let _ = dir.report_dead(w);
                }
                WriterHealth::Straggling => dir.report_straggling(w),
                WriterHealth::Healthy => {}
            }
        }
    }
}

/// Execute `program` with the given per-rank payload buffers under `cfg`.
///
/// `payloads[r]` must be at least `program.payload[r]` bytes. The program
/// should already be validated (plans from [`crate::CheckpointSpec::plan`]
/// are); an invalid program may deadlock or panic.
pub fn execute(
    program: &Program,
    payloads: Vec<Vec<u8>>,
    cfg: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    let nranks = program.nranks() as usize;
    if payloads.len() != nranks {
        return Err(ExecError::Setup(format!(
            "got {} payloads for {} ranks",
            payloads.len(),
            nranks
        )));
    }
    for (r, p) in payloads.iter().enumerate() {
        if (p.len() as u64) < program.payload[r] {
            return Err(ExecError::Setup(format!(
                "rank {r}: payload {} bytes < required {}",
                p.len(),
                program.payload[r]
            )));
        }
    }
    if nranks > 4096 {
        return Err(ExecError::Setup(format!(
            "real executor spawns one thread per rank; {nranks} ranks is too many \
             (use the simulator for machine-scale runs)"
        )));
    }
    std::fs::create_dir_all(&cfg.base_dir)
        .map_err(|e| ExecError::Setup(format!("create base dir: {e}")))?;
    sched::emit(|| sched::Event::ExecStarted {
        nranks: nranks as u32,
    });

    // Wrap each payload once; every rank-side reference is a refcounted
    // slice of this single allocation (no per-op copies under ZeroCopy).
    let payloads: Vec<Bytes> = payloads.into_iter().map(Bytes::from_vec).collect();

    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = sync_channel::<Msg>(cfg.chan_capacity.max(1));
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let barriers: Vec<AbortBarrier> = program
        .comms
        .iter()
        .map(|m| AbortBarrier::new(m.len()))
        .collect();
    let start_gate = Barrier::new(nranks);
    let abort = AtomicBool::new(false);
    let retries = AtomicU64::new(0);
    // Under a controlled scheduler the driver must not block in the
    // scope join while rank threads still need the run token — it spins
    // on this counter at a yield point instead, and only joins once all
    // ranks have left the controlled world.
    let controlled = sched::controlled();
    let ranks_alive = AtomicUsize::new(nranks);

    // Failover engages only when the policy asks for it AND the plan
    // shape supports pull-based takeover; otherwise a dead writer aborts
    // the run exactly as before.
    let writers = writer_ranks(program);
    let director = (cfg.failover.enabled && failover_supported(program, &writers))
        .then(|| FailoverDirector::new(cfg.failover, writers.clone()));
    let director = director.as_ref();
    // Per-rank liveness heartbeats; `Arc` because the shared flush pool's
    // detached workers bump them too while draining a writer's jobs.
    let heartbeats: Vec<Arc<AtomicU64>> = (0..nranks).map(|_| Arc::default()).collect();

    let mut rank_times = vec![Duration::ZERO; nranks];
    // Prefer a root-cause error (fault/I-O) over abort-induced collateral.
    let mut first_err: Option<ExecError> = None;
    let mut first_collateral: Option<ExecError> = None;

    std::thread::scope(|scope| {
        if let Some(dir) = director {
            if !controlled {
                let beats = &heartbeats;
                let ranks_alive = &ranks_alive;
                let abort = &abort;
                scope.spawn(move || monitor_writers(dir, beats, ranks_alive, abort));
            }
        }
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.iter_mut().enumerate() {
            let rx = rx.take().expect("receiver present");
            let payload = &payloads[rank];
            let payloads = &payloads;
            let txs = &txs;
            let barriers = &barriers;
            let start_gate = &start_gate;
            let abort = &abort;
            let retries = &retries;
            let ranks_alive = &ranks_alive;
            let beat = Arc::clone(&heartbeats[rank]);
            if controlled {
                sched::spawning();
            }
            handles.push(scope.spawn(move || {
                if controlled {
                    sched::register(&format!("rank{rank}"));
                }
                let pipe = (cfg.pipeline_depth >= 2).then(|| {
                    FlushPool::current().register(
                        rank as u32,
                        cfg.pipeline_depth,
                        cfg.faults.clone(),
                        WriterTuning {
                            write_retries: cfg.write_retries,
                            retry_backoff: cfg.retry_backoff,
                            jitter_seed: cfg.pipeline_jitter,
                            hedge_after: director
                                .and_then(|d| d.enabled().then(|| d.policy().straggler_after)),
                            beat: Some(Arc::clone(&beat)),
                            backend: Some(crate::backend::resolve(cfg.io_backend)),
                        },
                    )
                });
                let mut ctx = RankCtx {
                    rank: rank as u32,
                    program,
                    payload,
                    all_payloads: payloads,
                    staging: vec![0u8; program.staging[rank] as usize],
                    rx,
                    stash: HashMap::new(),
                    senders: txs,
                    barriers,
                    files: HashMap::new(),
                    cfg,
                    abort,
                    retries,
                    pipe,
                    director,
                    beat,
                };
                if !controlled {
                    // Registration already serializes controlled ranks;
                    // an OS barrier here would wedge the run token.
                    start_gate.wait();
                }
                let rank32 = rank as u32;
                let t0 = Instant::now();
                let mut res = ctx.run();
                if let (Err(e), Some(dir)) = (&res, director) {
                    if is_killed_error(e) {
                        // Quiesce this writer's pipeline *before* the
                        // death is announced, so a successor never races
                        // leftover background jobs.
                        ctx.pipe.take();
                        if dir.report_dead(rank32) {
                            // Failover engaged: the death is absorbed and
                            // a surviving writer re-stages the extent.
                            res = Ok(());
                        }
                    } else if dir.is_fenced(rank32) {
                        // A fenced zombie's late errors are moot: workers
                        // reroute around it (its receives time out) and a
                        // successor owns its extent. Swallow them so the
                        // revived thread can't abort a healthy run.
                        ctx.pipe.take();
                        res = Ok(());
                    }
                }
                let dt = t0.elapsed();
                // Surviving writers serve as successors until the
                // generation quiesces: every writer done or dead, every
                // orphaned extent re-written and committed.
                if let Some(dir) = director {
                    if res.is_ok() && dir.is_writer(rank32) && !dir.is_fenced(rank32) {
                        dir.mark_writer_done(rank32);
                        loop {
                            if abort.load(Ordering::Acquire) {
                                break;
                            }
                            if let Some(orphan) = dir.claim_orphan(rank32) {
                                match ctx.run_takeover(orphan, dir) {
                                    Ok(()) => dir.orphan_completed(orphan),
                                    Err(e) => {
                                        if is_killed_error(&e) && {
                                            ctx.pipe.take();
                                            dir.report_dead(rank32)
                                        } {
                                            // Cascade: the successor died
                                            // mid-takeover; the orphan is
                                            // re-homed to the next survivor.
                                        } else {
                                            res = Err(e);
                                        }
                                        break;
                                    }
                                }
                            } else if dir.quiesced() {
                                break;
                            } else if controlled {
                                sched::yield_now(Point::JoinWait);
                            } else {
                                dir.wait_changed(Duration::from_millis(2));
                            }
                        }
                    }
                }
                if res.is_err() {
                    // Release peers stuck in barriers/receives.
                    abort.store(true, Ordering::Release);
                    for b in barriers {
                        b.wake();
                    }
                }
                let out = (dt, res);
                // The writer handle must quiesce while this thread is
                // still scheduled: its drop waits on in-flight jobs,
                // which only make progress while the token circulates.
                drop(ctx);
                ranks_alive.fetch_sub(1, Ordering::Release);
                if controlled {
                    sched::unregister();
                }
                out
            }));
        }
        if controlled {
            while ranks_alive.load(Ordering::Acquire) > 0 {
                sched::yield_now(Point::JoinWait);
            }
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((dt, Ok(()))) => rank_times[rank] = dt,
                Ok((dt, Err(e))) => {
                    rank_times[rank] = dt;
                    let collateral = e.kind() == io::ErrorKind::Interrupted;
                    let slot = if collateral {
                        &mut first_collateral
                    } else {
                        &mut first_err
                    };
                    if slot.is_none() {
                        *slot = Some(ExecError::Io {
                            rank: rank as u32,
                            source: e,
                        });
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(ExecError::Io {
                            rank: rank as u32,
                            source: io::Error::other("rank thread panicked"),
                        });
                    }
                }
            }
        }
    });

    if let Some(e) = first_err.or(first_collateral) {
        return Err(e);
    }
    let stats = program.stats();
    let wall_time = rank_times.iter().copied().max().unwrap_or(Duration::ZERO);
    Ok(ExecReport {
        rank_times,
        wall_time,
        bytes_written: stats.bytes_written,
        bytes_sent: stats.bytes_sent,
        retries: retries.load(Ordering::Relaxed),
        failovers: director
            .map(|d| d.completed_takeovers())
            .unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbio_plan::{validate, CoverageMode, ProgramBuilder, Tag};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-exec-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn direct_writes_land_at_offsets() {
        let mut b = ProgramBuilder::new(vec![4, 4]);
        let f = b.file("out.bin", 8);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(0, Op::Close { file: f });
        // Rank 1 waits for rank 0's close via a message, then appends.
        b.reserve_staging(1, 1);
        b.push(
            0,
            Op::Send {
                dst: 1,
                tag: Tag(9),
                src: DataRef::Own { off: 0, len: 1 },
            },
        );
        b.push(
            1,
            Op::Recv {
                src: 0,
                tag: Tag(9),
                bytes: 1,
                staging_off: 0,
            },
        );
        b.push(
            1,
            Op::Open {
                file: f,
                create: false,
            },
        );
        b.push(
            1,
            Op::WriteAt {
                file: f,
                offset: 4,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(1, Op::Close { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();

        let dir = tmpdir("direct");
        let payloads = vec![vec![1u8, 2, 3, 4], vec![5u8, 6, 7, 8]];
        let rep = execute(&p, payloads, &ExecConfig::new(&dir)).unwrap();
        assert_eq!(rep.bytes_written, 8);
        assert_eq!(rep.rank_times.len(), 2);
        let bytes = std::fs::read(dir.join("out.bin")).unwrap();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stalled_receiver_bounds_resident_queue_and_times_out() {
        // Pre-PR the rank mailboxes were unbounded `mpsc::channel`s: a
        // sender bursting at a stalled receiver grew the heap without
        // limit and never surfaced an error. Bounded mailboxes cap the
        // resident queue at `chan_capacity` messages and surface the
        // typed send timeout.
        let before = counters::service_snapshot();
        let cap = 4usize;
        let burst = 8usize;
        let mut b = ProgramBuilder::new(vec![0, 0]);
        // Rank 1 "stalls" (models a slow writer) before draining.
        b.push(
            1,
            Op::Compute {
                nanos: Duration::from_millis(400).as_nanos() as u64,
            },
        );
        b.reserve_staging(1, 1024);
        for _ in 0..burst {
            b.push(
                0,
                Op::Send {
                    dst: 1,
                    tag: Tag(7),
                    src: DataRef::Synthetic { len: 1024 },
                },
            );
            b.push(
                1,
                Op::Recv {
                    src: 0,
                    tag: Tag(7),
                    bytes: 1024,
                    staging_off: 0,
                },
            );
        }
        let p = b.build();
        let dir = tmpdir("stalled-recv");
        let cfg = ExecConfig::new(&dir).chan_capacity(cap);
        let cfg = ExecConfig {
            honor_compute: true,
            recv_timeout: Duration::from_millis(50),
            ..cfg
        };
        let err = execute(&p, vec![vec![], vec![]], &cfg).expect_err("send must time out");
        match err {
            ExecError::Io { rank: 0, source } => {
                assert_eq!(source.kind(), io::ErrorKind::TimedOut, "{source}");
                assert!(source.to_string().contains("send timeout"), "{source}");
            }
            other => panic!("expected rank 0 send timeout, got {other}"),
        }
        let delta = counters::service_snapshot().delta_since(&before);
        assert!(delta.send_backpressure_blocks >= 1, "block must be counted");
        assert!(
            delta.send_backpressure_timeouts >= 1,
            "timeout must be counted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregation_via_messages() {
        // Rank 1 and 2 send to rank 0, which reorders into one file.
        let mut b = ProgramBuilder::new(vec![0, 3, 3]);
        let f = b.file("agg.bin", 6);
        b.reserve_staging(0, 6);
        b.push(
            1,
            Op::Send {
                dst: 0,
                tag: Tag(0),
                src: DataRef::Own { off: 0, len: 3 },
            },
        );
        b.push(
            2,
            Op::Send {
                dst: 0,
                tag: Tag(0),
                src: DataRef::Own { off: 0, len: 3 },
            },
        );
        // Receive rank 2's data *first* (stash must hold rank 1's if it
        // arrives early).
        b.push(
            0,
            Op::Recv {
                src: 2,
                tag: Tag(0),
                bytes: 3,
                staging_off: 3,
            },
        );
        b.push(
            0,
            Op::Recv {
                src: 1,
                tag: Tag(0),
                bytes: 3,
                staging_off: 0,
            },
        );
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Staging { off: 0, len: 6 },
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();

        let dir = tmpdir("agg");
        let payloads = vec![vec![], vec![10, 11, 12], vec![20, 21, 22]];
        execute(&p, payloads, &ExecConfig::new(&dir)).unwrap();
        let bytes = std::fs::read(dir.join("agg.bin")).unwrap();
        assert_eq!(bytes, vec![10, 11, 12, 20, 21, 22]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthetic_writes_are_deterministic() {
        let mut b = ProgramBuilder::new(vec![0]);
        let f = b.file("syn.bin", 16);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Synthetic { len: 16 },
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("syn");
        execute(&p, vec![vec![]], &ExecConfig::new(&dir)).unwrap();
        let bytes = std::fs::read(dir.join("syn.bin")).unwrap();
        let expect: Vec<u8> = (0..16u64).map(synthetic_byte).collect();
        assert_eq!(bytes, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn setup_errors() {
        let b = ProgramBuilder::new(vec![10]);
        let p = b.build();
        let err = execute(&p, vec![], &ExecConfig::new(tmpdir("e1"))).unwrap_err();
        assert!(matches!(err, ExecError::Setup(_)));
        let err = execute(&p, vec![vec![0u8; 5]], &ExecConfig::new(tmpdir("e2"))).unwrap_err();
        assert!(matches!(err, ExecError::Setup(_)));
    }

    #[test]
    fn injected_transient_write_error_is_retried() {
        let mut b = ProgramBuilder::new(vec![4]);
        let f = b.file("retry.bin", 4);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("retry");
        let cfg = ExecConfig::new(&dir).faults(FaultPlan::none().fail_nth_write(0, 0, 2));
        let rep = execute(&p, vec![vec![1, 2, 3, 4]], &cfg).unwrap();
        assert_eq!(rep.retries, 2);
        assert_eq!(
            std::fs::read(dir.join("retry.bin")).unwrap(),
            vec![1, 2, 3, 4]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_error_beyond_retry_budget_fails() {
        let mut b = ProgramBuilder::new(vec![4]);
        let f = b.file("exhaust.bin", 4);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("exhaust");
        let mut cfg = ExecConfig::new(&dir).faults(FaultPlan::none().fail_nth_write(0, 0, 10));
        cfg.write_retries = 2;
        let err = execute(&p, vec![vec![0; 4]], &cfg).unwrap_err();
        match err {
            ExecError::Io { rank: 0, source } => {
                assert_eq!(source.raw_os_error(), Some(5), "EIO expected: {source}")
            }
            other => panic!("expected rank-0 Io error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_file_commits_via_rename() {
        let mut b = ProgramBuilder::new(vec![8]);
        let f = b.file_atomic("atomic.bin", 8);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 8 },
            },
        );
        b.push(0, Op::Close { file: f });
        b.push(0, Op::Commit { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();
        let dir = tmpdir("atomic");
        execute(&p, vec![vec![7u8; 8]], &ExecConfig::new(&dir)).unwrap();
        assert!(!dir.join("atomic.bin.tmp").exists(), "tmp renamed away");
        let bytes = std::fs::read(dir.join("atomic.bin")).unwrap();
        assert_eq!(&bytes[..8], &[7u8; 8]);
        assert!(
            crate::commit::verify_committed(&bytes, 8).is_none(),
            "footer must validate"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_never_publishes_final_file() {
        let mut b = ProgramBuilder::new(vec![8]);
        let f = b.file_atomic("victim.bin", 8);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 8 },
            },
        );
        b.push(0, Op::Close { file: f });
        b.push(0, Op::Commit { file: f });
        let p = b.build();
        let dir = tmpdir("killed");
        // Threshold 4: crossed by the single 8-byte write, so the rank
        // dies at the commit edge — after its data, before the rename.
        let cfg = ExecConfig::new(&dir).faults(FaultPlan::none().kill_writer_after_bytes(0, 4));
        let err = execute(&p, vec![vec![0; 8]], &cfg).unwrap_err();
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(
            !dir.join("victim.bin").exists(),
            "final name must not appear"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_atomic_commit_matches_serial_output() {
        let mut b = ProgramBuilder::new(vec![16]);
        let f = b.file_atomic("p.bin", 16);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        for k in 0..4u64 {
            b.push(
                0,
                Op::WriteAt {
                    file: f,
                    offset: k * 4,
                    src: DataRef::Own { off: k * 4, len: 4 },
                },
            );
        }
        b.push(0, Op::Close { file: f });
        b.push(0, Op::Commit { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();
        let payload: Vec<u8> = (0..16).collect();

        let dir_s = tmpdir("pipe-serial");
        execute(&p, vec![payload.clone()], &ExecConfig::new(&dir_s)).unwrap();
        let dir_p = tmpdir("pipe-deep");
        let cfg = ExecConfig::new(&dir_p).pipeline_depth(2).pipeline_jitter(7);
        execute(&p, vec![payload], &cfg).unwrap();

        let a = std::fs::read(dir_s.join("p.bin")).unwrap();
        let b2 = std::fs::read(dir_p.join("p.bin")).unwrap();
        assert_eq!(a, b2, "pipelined output must be byte-identical");
        assert!(!dir_p.join("p.bin.tmp").exists());
        std::fs::remove_dir_all(&dir_s).ok();
        std::fs::remove_dir_all(&dir_p).ok();
    }

    #[test]
    fn pipelined_killed_writer_never_publishes_final_file() {
        let mut b = ProgramBuilder::new(vec![8]);
        let f = b.file_atomic("pvictim.bin", 8);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 8 },
            },
        );
        b.push(0, Op::Close { file: f });
        b.push(0, Op::Commit { file: f });
        let p = b.build();
        let dir = tmpdir("pipe-killed");
        let cfg = ExecConfig::new(&dir)
            .faults(FaultPlan::none().kill_writer_after_bytes(0, 4))
            .pipeline_depth(4);
        let err = execute(&p, vec![vec![0; 8]], &cfg).unwrap_err();
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(
            !dir.join("pvictim.bin").exists(),
            "final name must not appear"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_writer_fails_over_to_successor() {
        // Two independent writers, each with its own atomic file. Rank 0
        // is killed mid-extent; with failover enabled the run still
        // succeeds and rank 1 re-stages and commits rank 0's extent.
        let mut b = ProgramBuilder::new(vec![8, 8]);
        let fa = b.file_atomic("a.bin", 8);
        let fb = b.file_atomic("b.bin", 8);
        for (rank, f) in [(0u32, fa), (1u32, fb)] {
            b.push(
                rank,
                Op::Open {
                    file: f,
                    create: true,
                },
            );
            b.push(
                rank,
                Op::WriteAt {
                    file: f,
                    offset: 0,
                    src: DataRef::Own { off: 0, len: 8 },
                },
            );
            b.push(rank, Op::Close { file: f });
            b.push(rank, Op::Commit { file: f });
        }
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();
        let dir = tmpdir("failover-kill");
        let cfg = ExecConfig::new(&dir)
            .faults(FaultPlan::none().kill_writer_after_bytes(0, 4))
            .failover(FailoverPolicy::from_recv_timeout(Duration::from_secs(2)));
        let pay_a: Vec<u8> = (10..18).collect();
        let pay_b: Vec<u8> = (50..58).collect();
        let rep = execute(&p, vec![pay_a.clone(), pay_b.clone()], &cfg).unwrap();
        assert_eq!(rep.failovers, vec![(0, 1)], "rank 1 must take over rank 0");
        for (name, want) in [("a.bin", &pay_a), ("b.bin", &pay_b)] {
            let bytes = std::fs::read(dir.join(name)).unwrap();
            assert_eq!(&bytes[..8], &want[..], "{name}");
            assert!(
                crate::commit::verify_committed(&bytes, 8).is_none(),
                "{name}: committed footer must validate"
            );
            assert!(!dir.join(format!("{name}.tmp")).exists(), "{name} tmp");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hung_writer_is_fenced_and_successor_commits() {
        // Rank 0 hangs at its first write long past the dead deadline;
        // the production monitor declares it dead, rank 1 takes over,
        // and when the zombie revives its commit is refused — the
        // extent still lands exactly once.
        let mut b = ProgramBuilder::new(vec![8, 8]);
        let fa = b.file_atomic("ha.bin", 8);
        let fb = b.file_atomic("hb.bin", 8);
        for (rank, f) in [(0u32, fa), (1u32, fb)] {
            b.push(
                rank,
                Op::Open {
                    file: f,
                    create: true,
                },
            );
            b.push(
                rank,
                Op::WriteAt {
                    file: f,
                    offset: 0,
                    src: DataRef::Own { off: 0, len: 8 },
                },
            );
            b.push(rank, Op::Close { file: f });
            b.push(rank, Op::Commit { file: f });
        }
        let p = b.build();
        let dir = tmpdir("failover-hang");
        let policy = FailoverPolicy {
            enabled: true,
            straggler_after: Duration::from_millis(25),
            dead_after: Duration::from_millis(50),
        };
        let cfg = ExecConfig::new(&dir)
            .faults(FaultPlan::none().hang_writer(0, Duration::from_millis(300)))
            .failover(policy);
        let before = rbio_profile::counters::failover_snapshot();
        let pay_a: Vec<u8> = (20..28).collect();
        let pay_b: Vec<u8> = (60..68).collect();
        let rep = execute(&p, vec![pay_a.clone(), pay_b.clone()], &cfg).unwrap();
        assert_eq!(rep.failovers, vec![(0, 1)]);
        let delta = rbio_profile::counters::failover_snapshot().delta_since(&before);
        assert!(delta.failovers >= 1, "{delta:?}");
        assert!(
            delta.fenced_commits_refused >= 1,
            "the revived zombie's commit must be refused: {delta:?}"
        );
        let bytes = std::fs::read(dir.join("ha.bin")).unwrap();
        assert_eq!(&bytes[..8], &pay_a[..]);
        assert!(
            crate::commit::verify_committed(&bytes, 8).is_none(),
            "footer must survive the zombie's late writes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_sends_to_dead_writer_are_rerouted() {
        // Rank 0 aggregates worker rank 1's block, rank 2 is the other
        // writer. Rank 0 dies between its two writes; rank 2's takeover
        // re-derives the worker's message straight from rank 1's payload
        // (pull-based failover), whether or not the send was delivered.
        let mut b = ProgramBuilder::new(vec![4, 4, 4]);
        let fa = b.file_atomic("agg.bin", 8);
        let fw = b.file_atomic("w2.bin", 4);
        b.reserve_staging(0, 4);
        b.push(
            0,
            Op::Open {
                file: fa,
                create: true,
            },
        );
        b.push(
            0,
            Op::Recv {
                src: 1,
                tag: Tag(3),
                bytes: 4,
                staging_off: 0,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: fa,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: fa,
                offset: 4,
                src: DataRef::Staging { off: 0, len: 4 },
            },
        );
        b.push(0, Op::Close { file: fa });
        b.push(0, Op::Commit { file: fa });
        b.push(
            1,
            Op::Send {
                dst: 0,
                tag: Tag(3),
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(
            2,
            Op::Open {
                file: fw,
                create: true,
            },
        );
        b.push(
            2,
            Op::WriteAt {
                file: fw,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(2, Op::Close { file: fw });
        b.push(2, Op::Commit { file: fw });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();
        let dir = tmpdir("failover-reroute");
        let cfg = ExecConfig::new(&dir)
            .faults(FaultPlan::none().kill_writer_after_bytes(0, 2))
            .failover(FailoverPolicy::from_recv_timeout(Duration::from_secs(2)));
        let rep = execute(
            &p,
            vec![vec![1u8, 2, 3, 4], vec![5u8, 6, 7, 8], vec![9u8, 9, 9, 9]],
            &cfg,
        )
        .unwrap();
        assert_eq!(rep.failovers, vec![(0, 2)], "rank 2 must take over rank 0");
        let agg = std::fs::read(dir.join("agg.bin")).unwrap();
        assert_eq!(
            &agg[..8],
            &[1, 2, 3, 4, 5, 6, 7, 8],
            "own block + re-derived worker block"
        );
        assert!(crate::commit::verify_committed(&agg, 8).is_none());
        assert_eq!(&std::fs::read(dir.join("w2.bin")).unwrap()[..4], &[9; 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_background_retries_are_counted() {
        let mut b = ProgramBuilder::new(vec![4]);
        let f = b.file("pretry.bin", 4);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 4 },
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("pipe-retry");
        let cfg = ExecConfig::new(&dir)
            .faults(FaultPlan::none().fail_nth_write(0, 0, 2))
            .pipeline_depth(2);
        let rep = execute(&p, vec![vec![1, 2, 3, 4]], &cfg).unwrap();
        assert_eq!(rep.retries, 2);
        assert_eq!(
            std::fs::read(dir.join("pretry.bin")).unwrap(),
            vec![1, 2, 3, 4]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_back_via_readat() {
        let mut b = ProgramBuilder::new(vec![8]);
        let f = b.file("rb.bin", 8);
        b.reserve_staging(0, 8);
        b.push(
            0,
            Op::Open {
                file: f,
                create: true,
            },
        );
        b.push(
            0,
            Op::WriteAt {
                file: f,
                offset: 0,
                src: DataRef::Own { off: 0, len: 8 },
            },
        );
        b.push(
            0,
            Op::ReadAt {
                file: f,
                offset: 2,
                len: 4,
                staging_off: 0,
            },
        );
        b.push(
            0,
            Op::Send {
                dst: 0,
                tag: Tag(0),
                src: DataRef::Staging { off: 0, len: 4 },
            },
        );
        b.push(
            0,
            Op::Recv {
                src: 0,
                tag: Tag(0),
                bytes: 4,
                staging_off: 4,
            },
        );
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("rb");
        let payload = vec![9u8, 8, 7, 6, 5, 4, 3, 2];
        execute(&p, vec![payload], &ExecConfig::new(&dir)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
