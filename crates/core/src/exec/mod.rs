//! Real plan executor: one thread per rank, crossbeam channels for
//! messages, actual files on disk.
//!
//! This is the back-end a downstream application uses to checkpoint for
//! real (at in-process scale), and what the test suite uses to prove that
//! every strategy's plan moves every byte to its correct file offset. The
//! simulated Blue Gene/P executor in `rbio-machine` interprets the *same*
//! plans in virtual time.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rbio_plan::{DataRef, Op, Program};

use crate::format::synthetic_byte;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Directory all plan file names are resolved against.
    pub base_dir: PathBuf,
    /// Call `fsync` before closing files (slower, durable).
    pub fsync_on_close: bool,
    /// Sleep for `Compute` ops' durations (off by default: tests and
    /// benches usually want the I/O path only).
    pub honor_compute: bool,
}

impl ExecConfig {
    /// Config writing under `base_dir`, no fsync, compute ops skipped.
    pub fn new(base_dir: impl AsRef<Path>) -> Self {
        ExecConfig {
            base_dir: base_dir.as_ref().to_path_buf(),
            fsync_on_close: false,
            honor_compute: false,
        }
    }
}

/// Execution outcome.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Per-rank wall time from the synchronized start to that rank's last
    /// op retiring — the "I/O time distribution" of the paper's Figs. 9–11.
    pub rank_times: Vec<Duration>,
    /// Total wall time (slowest rank).
    pub wall_time: Duration,
    /// Total bytes written to files (headers included).
    pub bytes_written: u64,
    /// Total bytes sent through channels.
    pub bytes_sent: u64,
}

impl ExecReport {
    /// Aggregate write bandwidth in bytes/second, the paper's definition:
    /// total bytes over the slowest rank's wall time.
    pub fn bandwidth(&self) -> f64 {
        let s = self.wall_time.as_secs_f64();
        if s > 0.0 {
            self.bytes_written as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// Executor failure.
#[derive(Debug)]
pub enum ExecError {
    /// Plan/payload mismatch detected before starting.
    Setup(String),
    /// An I/O error on some rank.
    Io {
        /// Rank that failed.
        rank: u32,
        /// Underlying error.
        source: io::Error,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Setup(s) => write!(f, "executor setup: {s}"),
            ExecError::Io { rank, source } => write!(f, "rank {rank}: {source}"),
        }
    }
}

impl std::error::Error for ExecError {}

type Msg = (u32, u64, Vec<u8>); // (src, tag, data)

struct RankCtx<'a> {
    rank: u32,
    program: &'a Program,
    payload: &'a [u8],
    staging: Vec<u8>,
    rx: Receiver<Msg>,
    stash: HashMap<(u32, u64), std::collections::VecDeque<Vec<u8>>>,
    senders: &'a [Sender<Msg>],
    barriers: &'a [Barrier],
    files: HashMap<u32, File>,
    cfg: &'a ExecConfig,
}

impl RankCtx<'_> {
    fn resolve(&self, r: &DataRef, file_off_hint: u64) -> Vec<u8> {
        match *r {
            DataRef::Own { off, len } => {
                self.payload[off as usize..(off + len) as usize].to_vec()
            }
            DataRef::Staging { off, len } => {
                self.staging[off as usize..(off + len) as usize].to_vec()
            }
            DataRef::Synthetic { len } => (0..len)
                .map(|i| synthetic_byte(file_off_hint + i))
                .collect(),
        }
    }

    fn run(&mut self) -> io::Result<()> {
        // Clone the op list handle to sidestep borrow tangles; ops are small.
        for op in &self.program.ops[self.rank as usize] {
            match op {
                Op::Compute { nanos } => {
                    if self.cfg.honor_compute {
                        std::thread::sleep(Duration::from_nanos(*nanos));
                    }
                }
                Op::Pack { src, staging_off, bytes } => {
                    if let Some(s) = src {
                        match *s {
                            DataRef::Staging { off, len } => {
                                self.staging.copy_within(
                                    off as usize..(off + len) as usize,
                                    *staging_off as usize,
                                );
                            }
                            _ => {
                                let data = self.resolve(s, 0);
                                self.staging[*staging_off as usize
                                    ..*staging_off as usize + *bytes as usize]
                                    .copy_from_slice(&data);
                            }
                        }
                    }
                }
                Op::Send { dst, tag, src } => {
                    let data = self.resolve(src, 0);
                    self.senders[*dst as usize]
                        .send((self.rank, tag.0, data))
                        .expect("receiver thread alive until all programs end");
                }
                Op::Recv { src, tag, bytes, staging_off } => {
                    let data = self.recv_matching(*src, tag.0)?;
                    if data.len() as u64 != *bytes {
                        return Err(io::Error::other(format!(
                            "recv size mismatch: want {bytes}, got {}",
                            data.len()
                        )));
                    }
                    self.staging[*staging_off as usize..*staging_off as usize + data.len()]
                        .copy_from_slice(&data);
                }
                Op::Barrier { comm } => {
                    self.barriers[comm.0 as usize].wait();
                }
                Op::Open { file, create } => {
                    let path = self
                        .cfg
                        .base_dir
                        .join(&self.program.files[file.0 as usize].name);
                    let f = if *create {
                        if let Some(parent) = path.parent() {
                            std::fs::create_dir_all(parent)?;
                        }
                        OpenOptions::new()
                            .create(true)
                            .truncate(true)
                            .write(true)
                            .read(true)
                            .open(&path)?
                    } else {
                        OpenOptions::new().write(true).read(true).open(&path)?
                    };
                    self.files.insert(file.0, f);
                }
                Op::WriteAt { file, offset, src } => {
                    let data = self.resolve(src, *offset);
                    let f = self.files.get(&file.0).expect("validated: opened");
                    f.write_all_at(&data, *offset)?;
                }
                Op::ReadAt { file, offset, len, staging_off } => {
                    let f = self.files.get(&file.0).expect("validated: opened");
                    let dst = &mut self.staging
                        [*staging_off as usize..*staging_off as usize + *len as usize];
                    f.read_exact_at(dst, *offset)?;
                }
                Op::Close { file } => {
                    if let Some(f) = self.files.remove(&file.0) {
                        if self.cfg.fsync_on_close {
                            f.sync_all()?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn recv_matching(&mut self, src: u32, tag: u64) -> io::Result<Vec<u8>> {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(d) = q.pop_front() {
                return Ok(d);
            }
        }
        loop {
            let (s, t, d) = self
                .rx
                .recv()
                .map_err(|_| io::Error::other("message channel closed"))?;
            if s == src && t == tag {
                return Ok(d);
            }
            self.stash.entry((s, t)).or_default().push_back(d);
        }
    }
}

/// Execute `program` with the given per-rank payload buffers under `cfg`.
///
/// `payloads[r]` must be at least `program.payload[r]` bytes. The program
/// should already be validated (plans from [`crate::CheckpointSpec::plan`]
/// are); an invalid program may deadlock or panic.
pub fn execute(
    program: &Program,
    payloads: Vec<Vec<u8>>,
    cfg: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    let nranks = program.nranks() as usize;
    if payloads.len() != nranks {
        return Err(ExecError::Setup(format!(
            "got {} payloads for {} ranks",
            payloads.len(),
            nranks
        )));
    }
    for (r, p) in payloads.iter().enumerate() {
        if (p.len() as u64) < program.payload[r] {
            return Err(ExecError::Setup(format!(
                "rank {r}: payload {} bytes < required {}",
                p.len(),
                program.payload[r]
            )));
        }
    }
    if nranks > 4096 {
        return Err(ExecError::Setup(format!(
            "real executor spawns one thread per rank; {nranks} ranks is too many \
             (use the simulator for machine-scale runs)"
        )));
    }
    std::fs::create_dir_all(&cfg.base_dir)
        .map_err(|e| ExecError::Setup(format!("create base dir: {e}")))?;

    let mut txs = Vec::with_capacity(nranks);
    let mut rxs = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded::<Msg>();
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let barriers: Vec<Barrier> = program
        .comms
        .iter()
        .map(|m| Barrier::new(m.len()))
        .collect();
    let start_gate = Barrier::new(nranks);

    let mut rank_times = vec![Duration::ZERO; nranks];
    let mut first_err: Option<ExecError> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, rx) in rxs.iter_mut().enumerate() {
            let rx = rx.take().expect("receiver present");
            let payload = &payloads[rank];
            let txs = &txs;
            let barriers = &barriers;
            let start_gate = &start_gate;
            handles.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank: rank as u32,
                    program,
                    payload,
                    staging: vec![0u8; program.staging[rank] as usize],
                    rx,
                    stash: HashMap::new(),
                    senders: txs,
                    barriers,
                    files: HashMap::new(),
                    cfg,
                };
                start_gate.wait();
                let t0 = Instant::now();
                let res = ctx.run();
                (t0.elapsed(), res)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((dt, Ok(()))) => rank_times[rank] = dt,
                Ok((dt, Err(e))) => {
                    rank_times[rank] = dt;
                    if first_err.is_none() {
                        first_err = Some(ExecError::Io { rank: rank as u32, source: e });
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(ExecError::Io {
                            rank: rank as u32,
                            source: io::Error::other("rank thread panicked"),
                        });
                    }
                }
            }
        }
    });

    if let Some(e) = first_err {
        return Err(e);
    }
    let stats = program.stats();
    let wall_time = rank_times.iter().copied().max().unwrap_or(Duration::ZERO);
    Ok(ExecReport {
        rank_times,
        wall_time,
        bytes_written: stats.bytes_written,
        bytes_sent: stats.bytes_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbio_plan::{validate, CoverageMode, ProgramBuilder, Tag};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-exec-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn direct_writes_land_at_offsets() {
        let mut b = ProgramBuilder::new(vec![4, 4]);
        let f = b.file("out.bin", 8);
        b.push(0, Op::Open { file: f, create: true });
        b.push(0, Op::WriteAt { file: f, offset: 0, src: DataRef::Own { off: 0, len: 4 } });
        b.push(0, Op::Close { file: f });
        // Rank 1 waits for rank 0's close via a message, then appends.
        b.reserve_staging(1, 1);
        b.push(0, Op::Send { dst: 1, tag: Tag(9), src: DataRef::Own { off: 0, len: 1 } });
        b.push(1, Op::Recv { src: 0, tag: Tag(9), bytes: 1, staging_off: 0 });
        b.push(1, Op::Open { file: f, create: false });
        b.push(1, Op::WriteAt { file: f, offset: 4, src: DataRef::Own { off: 0, len: 4 } });
        b.push(1, Op::Close { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();

        let dir = tmpdir("direct");
        let payloads = vec![vec![1u8, 2, 3, 4], vec![5u8, 6, 7, 8]];
        let rep = execute(&p, payloads, &ExecConfig::new(&dir)).unwrap();
        assert_eq!(rep.bytes_written, 8);
        assert_eq!(rep.rank_times.len(), 2);
        let bytes = std::fs::read(dir.join("out.bin")).unwrap();
        assert_eq!(bytes, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregation_via_messages() {
        // Rank 1 and 2 send to rank 0, which reorders into one file.
        let mut b = ProgramBuilder::new(vec![0, 3, 3]);
        let f = b.file("agg.bin", 6);
        b.reserve_staging(0, 6);
        b.push(1, Op::Send { dst: 0, tag: Tag(0), src: DataRef::Own { off: 0, len: 3 } });
        b.push(2, Op::Send { dst: 0, tag: Tag(0), src: DataRef::Own { off: 0, len: 3 } });
        // Receive rank 2's data *first* (stash must hold rank 1's if it
        // arrives early).
        b.push(0, Op::Recv { src: 2, tag: Tag(0), bytes: 3, staging_off: 3 });
        b.push(0, Op::Recv { src: 1, tag: Tag(0), bytes: 3, staging_off: 0 });
        b.push(0, Op::Open { file: f, create: true });
        b.push(0, Op::WriteAt { file: f, offset: 0, src: DataRef::Staging { off: 0, len: 6 } });
        b.push(0, Op::Close { file: f });
        let p = b.build();
        validate(&p, CoverageMode::ExactWrite).unwrap();

        let dir = tmpdir("agg");
        let payloads = vec![vec![], vec![10, 11, 12], vec![20, 21, 22]];
        execute(&p, payloads, &ExecConfig::new(&dir)).unwrap();
        let bytes = std::fs::read(dir.join("agg.bin")).unwrap();
        assert_eq!(bytes, vec![10, 11, 12, 20, 21, 22]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthetic_writes_are_deterministic() {
        let mut b = ProgramBuilder::new(vec![0]);
        let f = b.file("syn.bin", 16);
        b.push(0, Op::Open { file: f, create: true });
        b.push(0, Op::WriteAt { file: f, offset: 0, src: DataRef::Synthetic { len: 16 } });
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("syn");
        execute(&p, vec![vec![]], &ExecConfig::new(&dir)).unwrap();
        let bytes = std::fs::read(dir.join("syn.bin")).unwrap();
        let expect: Vec<u8> = (0..16u64).map(synthetic_byte).collect();
        assert_eq!(bytes, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn setup_errors() {
        let b = ProgramBuilder::new(vec![10]);
        let p = b.build();
        let err = execute(&p, vec![], &ExecConfig::new(tmpdir("e1"))).unwrap_err();
        assert!(matches!(err, ExecError::Setup(_)));
        let err = execute(&p, vec![vec![0u8; 5]], &ExecConfig::new(tmpdir("e2"))).unwrap_err();
        assert!(matches!(err, ExecError::Setup(_)));
    }

    #[test]
    fn read_back_via_readat() {
        let mut b = ProgramBuilder::new(vec![8]);
        let f = b.file("rb.bin", 8);
        b.reserve_staging(0, 8);
        b.push(0, Op::Open { file: f, create: true });
        b.push(0, Op::WriteAt { file: f, offset: 0, src: DataRef::Own { off: 0, len: 8 } });
        b.push(0, Op::ReadAt { file: f, offset: 2, len: 4, staging_off: 0 });
        b.push(0, Op::Send { dst: 0, tag: Tag(0), src: DataRef::Staging { off: 0, len: 4 } });
        b.push(0, Op::Recv { src: 0, tag: Tag(0), bytes: 4, staging_off: 4 });
        b.push(0, Op::Close { file: f });
        let p = b.build();
        let dir = tmpdir("rb");
        let payload = vec![9u8, 8, 7, 6, 5, 4, 3, 2];
        execute(&p, vec![payload], &ExecConfig::new(&dir)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
