//! # rbio — reduced-blocking I/O for application-level checkpointing
//!
//! This crate is the paper's primary contribution as a reusable library:
//! the three checkpointing I/O strategies evaluated in *"Parallel I/O
//! Performance for Application-Level Checkpointing on the Blue Gene/P
//! System"* (Fu, Min, Latham, Carothers — CLUSTER 2011), implemented over a
//! plan IR so the same data movement can run for real (threads + files) or
//! be replayed on a simulated Blue Gene/P at 16Ki–64Ki ranks.
//!
//! * [`strategy::Strategy::OnePfpp`] — one POSIX file per processor.
//! * [`strategy::Strategy::CoIo`] — tuned MPI-IO collective writes with a
//!   tunable file count `nf` (split-collective groups).
//! * [`strategy::Strategy::RbIo`] — the paper's reduced-blocking I/O:
//!   dedicated writer ranks aggregate worker data over `Isend` and commit
//!   either independently (`nf = ng`) or collectively (`nf = 1`).
//!
//! ## Quick start
//!
//! ```
//! use rbio::layout::{DataLayout, FieldSpec};
//! use rbio::strategy::{CheckpointSpec, RbIoCommit, Strategy};
//! use rbio::exec::{execute, ExecConfig};
//! use rbio::format::materialize_payloads;
//! use rbio::restart::read_checkpoint;
//!
//! // 8 ranks, two fields of 1 KiB per rank (think Ex and Ey).
//! let layout = DataLayout::uniform(8, &[("Ex", 1024), ("Ey", 1024)]);
//! let spec = CheckpointSpec::new(layout.clone(), "step0")
//!     .strategy(Strategy::RbIo { ng: 2, commit: RbIoCommit::IndependentPerWriter });
//! let plan = spec.plan().expect("valid spec");
//!
//! // Fill fields with app data and run the plan against a temp dir.
//! let dir = std::env::temp_dir().join("rbio-doc-example");
//! let payloads = materialize_payloads(&plan, |rank, field, buf| {
//!     buf.fill(rank as u8 + field as u8)
//! });
//! let report = execute(&plan.program, payloads, &ExecConfig::new(&dir)).unwrap();
//! assert_eq!(report.bytes_written, plan.total_file_bytes());
//!
//! // Restart: every rank gets its bytes back.
//! let restored = read_checkpoint(&dir, &plan).unwrap();
//! assert_eq!(restored.field_data(3, 1)[0], 3 + 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod backend;
pub mod buf;
pub mod commit;
pub mod crash;
pub mod exec;
pub mod failover;
pub mod fault;
pub mod format;
pub mod layout;
pub mod manager;
pub mod model;
pub mod pipeline;
pub mod restart;
pub mod rt;
pub mod sched;
pub mod scrub;
pub mod service;
pub mod strategy;
pub mod tier;
pub mod vtk;

pub use layout::{DataLayout, FieldSpec};
pub use strategy::{CheckpointPlan, CheckpointSpec, RbIoCommit, Strategy};
