//! Analytic performance models from the paper (Eqs. 1–7).
//!
//! The paper derives two closed forms: the end-to-end *production time
//! improvement* from cheaper checkpoints (Eq. 1), and the *speedup of rbIO
//! over coIO* in total processor-seconds blocked by I/O (Eqs. 2–7). Both
//! are implemented literally so the benches can print model-vs-simulation
//! comparisons.

/// Eq. 1: production time improvement when checkpointing every `nc`
/// computation steps.
///
/// `ratio_old`/`ratio_new` are checkpoint-time over computation-step-time
/// ratios (the quantity of Fig. 7). With `ratio_old ≈ 1000` (1PFPP),
/// `ratio_new < 20` (rbIO) and `nc = 20` this gives the paper's ≈25×.
pub fn production_improvement(ratio_old: f64, ratio_new: f64, nc: f64) -> f64 {
    assert!(nc > 0.0);
    (ratio_old + nc) / (ratio_new + nc)
}

/// Inputs of the speedup analysis (§V-C2).
#[derive(Debug, Clone, Copy)]
pub struct SpeedupModel {
    /// Total ranks.
    pub np: f64,
    /// rbIO writers.
    pub ng: f64,
    /// Fraction of the writer's write time that workers remain blocked
    /// (λ ≈ 0 when writers flush between checkpoints).
    pub lambda: f64,
    /// coIO aggregate write bandwidth (bytes/s).
    pub bw_coio: f64,
    /// rbIO aggregate write bandwidth (bytes/s).
    pub bw_rbio: f64,
    /// Perceived bandwidth of the worker→writer handoff (bytes/s).
    pub bw_perceived: f64,
    /// Checkpoint size S (bytes).
    pub file_size: f64,
}

impl SpeedupModel {
    /// Eq. 3: total processor-seconds blocked under coIO,
    /// `T_coIO = np · S / BW_coIO`.
    pub fn t_coio(&self) -> f64 {
        self.np * self.file_size / self.bw_coio
    }

    /// Eq. 4: total processor-seconds blocked under rbIO,
    /// `T_rbIO = (np−ng)(S/BW_p + λS/BW_rbIO) + ng·S/BW_rbIO`.
    pub fn t_rbio(&self) -> f64 {
        let s = self.file_size;
        (self.np - self.ng) * (s / self.bw_perceived + self.lambda * s / self.bw_rbio)
            + self.ng * s / self.bw_rbio
    }

    /// Eq. 2/5: exact speedup `T_coIO / T_rbIO`.
    pub fn speedup(&self) -> f64 {
        self.t_coio() / self.t_rbio()
    }

    /// Eq. 6: the paper's approximation
    /// `1 / ((λ + (ng/np)(1−λ)) · BW_coIO/BW_rbIO)`
    /// (drops the `(np−ng)/np · BW_coIO/BW_p` term, which is ~1e-6).
    pub fn speedup_approx(&self) -> f64 {
        let ratio = self.bw_coio / self.bw_rbio;
        1.0 / ((self.lambda + (self.ng / self.np) * (1.0 - self.lambda)) * ratio)
    }

    /// Eq. 7: the λ→0 limit, `(np/ng) · BW_rbIO/BW_coIO`.
    pub fn speedup_limit(&self) -> f64 {
        (self.np / self.ng) * self.bw_rbio / self.bw_coio
    }
}

/// Paper-like defaults for the 64Ki-rank case: 64:1 grouping, λ≈0,
/// comparable raw bandwidths, TB/s-class perceived bandwidth.
impl Default for SpeedupModel {
    fn default() -> Self {
        SpeedupModel {
            np: 65536.0,
            ng: 1024.0,
            lambda: 0.0,
            bw_coio: 10.0e9,
            bw_rbio: 13.0e9,
            bw_perceived: 1.0e15,
            file_size: 156.0e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_reproduces_the_25x_claim() {
        // "For nc=20, Ratio_1pfpp is generally above 1000 while Ratio_rbIO
        // is under 20 … approximately 25× improvement."
        let x = production_improvement(1000.0, 20.0, 20.0);
        assert!((x - 25.5).abs() < 0.6, "got {x}");
        // Degenerate: same ratios -> no improvement.
        assert!((production_improvement(5.0, 5.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_matches_limit() {
        let m = SpeedupModel::default();
        let s = m.speedup();
        let lim = m.speedup_limit();
        // With BW_p astronomically high and λ=0 the exact and limit forms
        // agree to a fraction of a percent.
        assert!((s / lim - 1.0).abs() < 0.01, "exact {s} vs limit {lim}");
        // np/ng = 64, bw ratio 1.3 -> ≈83×.
        assert!((lim - 64.0 * 1.3).abs() < 0.2, "{lim}");
    }

    #[test]
    fn approx_tracks_exact_across_lambda() {
        for lambda in [0.0, 0.1, 0.3, 0.5, 1.0] {
            let m = SpeedupModel {
                lambda,
                ..SpeedupModel::default()
            };
            let rel = m.speedup() / m.speedup_approx();
            assert!((rel - 1.0).abs() < 0.02, "λ={lambda}: exact/approx={rel}");
        }
    }

    #[test]
    fn worst_case_half_bandwidth_still_half_ratio() {
        // "Even in the worst case where BW_rbIO is roughly half of BW_coIO,
        // the speedup is still half of the ratio (i.e., 30×)" — with
        // np/ng = 64 the halved-bandwidth limit is 32.
        let m = SpeedupModel {
            bw_rbio: 5.0e9,
            bw_coio: 10.0e9,
            lambda: 0.0,
            ..SpeedupModel::default()
        };
        let lim = m.speedup_limit();
        assert!((lim - 32.0).abs() < 1e-9, "{lim}");
    }

    #[test]
    fn blocking_times_scale_sanely() {
        let m = SpeedupModel::default();
        // coIO blocks everyone for the full write; rbIO mostly for the
        // handoff. The totals must reflect that asymmetry.
        assert!(m.t_coio() > 50.0 * m.t_rbio());
        // More writers => more writer-seconds blocked.
        let m2 = SpeedupModel { ng: 4096.0, ..m };
        assert!(m2.t_rbio() > m.t_rbio());
    }
}
