//! Background flush pipeline shared by both real executors.
//!
//! The paper's rbIO writers win by overlap: aggregation of the next
//! package proceeds while the previous one is on its way to disk. This
//! module provides that overlap for [`crate::exec`] and [`crate::rt`]: a
//! small process-wide pool of flush threads serves per-writer FIFO queues
//! of deferred file work ([`FlushJob`]), with bounded depth (double
//! buffering at depth 2) and first-error latching.
//!
//! Correctness relies on three properties, each enforced here or by the
//! callers:
//!
//! 1. **Snapshot at issue** — a `Write` job owns its bytes as an immutable
//!    [`Bytes`] slice: either a zero-copy view of storage that will never
//!    be mutated again (a payload slice), or a pooled copy taken out of
//!    mutable staging before submission, so later `Pack` and `Recv` ops
//!    can reuse the staging buffer freely.
//! 2. **Per-writer FIFO** — one pool thread at a time drains a writer's
//!    queue in order, so the [`FaultPlan`] byte accounting and the
//!    write→close→commit ordering are exactly the serial executor's.
//!    In particular the commit job can never run before (or after a
//!    failure of) the data writes it seals.
//! 3. **Drain points** — callers drain before plan barriers, before
//!    `ReadAt`, and at end of program, so cross-rank happens-before edges
//!    (e.g. "all collective writes land before the owner commits") carry
//!    over from the serial semantics.
//!
//! A latched error poisons the writer: all later jobs are skipped (never
//! executed), and the error surfaces at the next `submit` or `drain`.

use std::collections::VecDeque;
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

use rbio_plan::Rank;
use rbio_profile::counters;

use crate::backend::{self, IoBackend, IoCtx, WriteOp};
use crate::buf::Bytes;
use crate::commit;
use crate::crash;
use crate::fault::{self, FaultPlan};
use crate::sched::{self, Point};

/// Test-only regression switch: re-introduces the PR 2 double-enqueue
/// race (`submit` re-enqueues a writer that is already in the runnable
/// queue, so two pool threads can drain one writer concurrently). Used
/// by `rbio-check` pinned regression schedules to prove the harness
/// catches the historical bug; must never be set outside tests.
#[doc(hidden)]
pub static REVERT_PR2_DOUBLE_ENQUEUE: AtomicBool = AtomicBool::new(false);

/// Why a writer's background pipeline failed.
#[derive(Debug)]
pub enum PipelineError {
    /// Fault injection killed the rank in a background job.
    Killed {
        /// The killed rank.
        rank: Rank,
    },
    /// A real or injected I/O error that exhausted the retry budget.
    Io(io::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Killed { rank } => write!(f, "rank {rank} killed in background job"),
            PipelineError::Io(e) => write!(f, "pipeline I/O error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// One unit of deferred writer work, executed in submission order.
pub enum FlushJob {
    /// Flush one buffered chunk to the file.
    Write {
        /// Open target file (the `.tmp` sibling for atomic files).
        file: Arc<File>,
        /// Absolute file offset.
        offset: u64,
        /// The chunk, snapshotted at issue time (an immutable slice —
        /// zero-copy for payload data, a pooled copy for staging data).
        data: Bytes,
    },
    /// Flush several chunks destined for contiguous offsets as one
    /// vectored write (one syscall, one logical write for fault
    /// accounting — only submitted when no faults are armed).
    WriteV {
        /// Open target file (the `.tmp` sibling for atomic files).
        file: Arc<File>,
        /// Absolute file offset of the first chunk.
        offset: u64,
        /// The chunks, back to back.
        bufs: Vec<Bytes>,
    },
    /// Close the file (the job drops the final handle; optional fsync).
    Close {
        /// The handle being retired.
        file: Arc<File>,
        /// fsync before closing.
        fsync: bool,
    },
    /// Seal and publish an atomic file (footer + rename) — always the
    /// last job a writer submits for that file.
    Commit {
        /// The `.tmp` sibling holding the data.
        tmp: PathBuf,
        /// The final published name.
        final_path: PathBuf,
        /// Logical (pre-footer) size the tmp file must have.
        size: u64,
        /// fsync footer and directory.
        fsync: bool,
    },
}

impl FlushJob {
    fn kind(&self) -> sched::JobKind {
        match self {
            FlushJob::Write { .. } => sched::JobKind::Write,
            FlushJob::WriteV { .. } => sched::JobKind::WriteV,
            FlushJob::Close { .. } => sched::JobKind::Close,
            FlushJob::Commit { .. } => sched::JobKind::Commit,
        }
    }

    /// Payload fingerprint for the use-after-recycle check: hashed at
    /// submit time and again just before execution; a mismatch means
    /// the buffer was recycled and overwritten while the job was
    /// queued. Non-write jobs hash to 0. Only called under a
    /// controlled scheduler.
    fn fingerprint(&self) -> u64 {
        match self {
            FlushJob::Write { data, .. } => sched::fingerprint([data.as_ref()]),
            FlushJob::WriteV { bufs, .. } => sched::fingerprint(bufs.iter().map(|b| b.as_ref())),
            FlushJob::Close { .. } | FlushJob::Commit { .. } => 0,
        }
    }
}

/// Per-writer knobs, grouped so `register` does not grow a parameter per
/// feature. [`Default`] is "off": no retries, no jitter, no hedging, no
/// heartbeat.
#[derive(Default, Clone)]
pub struct WriterTuning {
    /// Extra attempts per failed write (see `write_at_with_retry`).
    pub write_retries: u32,
    /// Base backoff between retry attempts.
    pub retry_backoff: Duration,
    /// Deterministic interleaving perturbation: when set, each job sleeps
    /// a seed-derived pseudo-random duration (< 200 µs) before running,
    /// so equivalence tests can sweep schedules reproducibly.
    pub jitter_seed: Option<u64>,
    /// Hedged re-submit deadline: when a drain has waited this long on an
    /// in-flight write (a straggling writer — slow disk, injected delay),
    /// the drainer re-issues the same bytes itself as a raw idempotent
    /// write. Whichever write lands last wrote identical bytes, so the
    /// race is benign; the loser's buffer is simply dropped (refcounted,
    /// never double-counted in the byte counters).
    pub hedge_after: Option<Duration>,
    /// Liveness heartbeat bumped as this writer's jobs execute, so the
    /// failover monitor does not declare a rank dead while its queue is
    /// merely deep.
    pub beat: Option<Arc<AtomicU64>>,
    /// I/O backend executing this writer's write jobs. `None` uses the
    /// process default ([`backend::resolve`] of
    /// [`backend::BackendKind::Default`], i.e. `RBIO_IO_BACKEND` or the
    /// threaded baseline). Tests and check programs inject custom ring
    /// geometries here.
    pub backend: Option<Arc<dyn IoBackend>>,
}

/// Immutable per-writer execution context, set at registration.
#[derive(Clone)]
struct WriterCtx {
    rank: Rank,
    /// Pool slot index (set once the slot is known in `register`).
    wid: usize,
    faults: FaultPlan,
    write_retries: u32,
    retry_backoff: Duration,
    /// Interleaving perturbation (see [`WriterTuning::jitter_seed`]).
    jitter_seed: Option<u64>,
    /// Liveness heartbeat (see [`WriterTuning::beat`]).
    beat: Option<Arc<AtomicU64>>,
    /// Submission/completion engine for write jobs.
    backend: Arc<dyn IoBackend>,
}

impl WriterCtx {
    fn io_ctx(&self) -> IoCtx<'_> {
        IoCtx {
            rank: self.rank,
            wid: self.wid,
            faults: &self.faults,
            write_retries: self.write_retries,
            retry_backoff: self.retry_backoff,
        }
    }
}

/// Snapshot of the write job a pool thread is currently executing for a
/// writer — what a hedged re-submit replays. `Bytes` clones are O(1)
/// refcount bumps.
struct HedgeSnapshot {
    file: Arc<File>,
    offset: u64,
    bufs: Vec<Bytes>,
    /// A hedge was already issued for this job.
    hedged: bool,
}

struct WriterState {
    ctx: WriterCtx,
    queue: VecDeque<FlushJob>,
    /// Queued jobs plus the one (if any) a pool thread is executing.
    in_flight: usize,
    /// A pool thread is currently draining this writer's queue.
    active: bool,
    /// The writer sits in the runnable queue awaiting a pool thread.
    /// Together with `active` this guarantees at most one thread ever
    /// drains a writer: without it, two submits racing ahead of a busy
    /// pool would enqueue the writer twice and two threads would then
    /// pop jobs from the same queue concurrently, breaking FIFO (e.g. a
    /// commit running beside the write it is supposed to seal).
    enqueued: bool,
    /// First failure; once set, every later job is skipped.
    error: Option<PipelineError>,
    /// Retried write attempts accumulated by background jobs.
    retries: u64,
    /// Jobs executed so far (jitter sequence number).
    seq: u64,
    /// Slot is registered to a live handle.
    occupied: bool,
    /// Hedged re-submit deadline (see [`WriterTuning::hedge_after`]).
    hedge_after: Option<Duration>,
    /// The write job currently executing, if hedgeable.
    running: Option<HedgeSnapshot>,
}

#[derive(Default)]
struct Inner {
    writers: Vec<WriterState>,
    free: Vec<usize>,
    runnable: VecDeque<usize>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signaled when a writer becomes runnable.
    work: Condvar,
    /// Signaled when a job completes (backpressure / drain wakeups).
    done: Condvar,
    /// Set by [`FlushPool::shutdown`]: workers exit once idle.
    stop: AtomicBool,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }
}

/// Wait on `cv` for a state change — or, when the calling thread is
/// registered with a controlled scheduler, drop the lock and yield at
/// `point` instead (blocking on the condvar would deadlock the single
/// run token). Callers must re-check their condition in a loop either
/// way.
fn pool_wait<'a>(
    shared: &'a Shared,
    cv: &Condvar,
    g: MutexGuard<'a, Inner>,
    point: Point,
) -> MutexGuard<'a, Inner> {
    if sched::registered() {
        drop(g);
        sched::yield_now(point);
        shared.inner.lock().expect("pool lock")
    } else {
        cv.wait(g).expect("pool lock")
    }
}

/// A flush thread pool: a fixed set of worker threads draining
/// per-writer FIFO queues. Historically one process-wide instance; now
/// explicitly constructible ([`FlushPool::with_threads`]) so a
/// long-lived service owns — and can *re*-configure — its pool instead
/// of being stuck with whatever the first caller froze into the
/// `OnceLock` global.
pub struct FlushPool {
    shared: Arc<Shared>,
    threads: usize,
}

/// Pool used by controlled (`rbio-check`) runs instead of the global
/// one, so schedule decisions see a fixed, named set of worker threads.
static CHECK_POOL: RwLock<Option<Arc<FlushPool>>> = RwLock::new(None);

/// The service-owned pool, when one is installed: [`FlushPool::current`]
/// routes every executor registration here, so replacing it (new worker
/// count, fresh workers) takes effect for all subsequent runs — the
/// behavior the stale `OnceLock` global silently dropped.
static INSTALLED: RwLock<Option<Arc<FlushPool>>> = RwLock::new(None);

impl FlushPool {
    fn global_arc() -> &'static Arc<FlushPool> {
        static POOL: OnceLock<Arc<FlushPool>> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8);
            FlushPool::spawn_pool(threads, "rbio-flush")
        })
    }

    /// Spawn `threads` detached workers over a fresh shared state.
    fn spawn_pool(threads: usize, name: &str) -> Arc<FlushPool> {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new());
        for i in 0..threads {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_loop(&s))
                .expect("spawn flush worker");
        }
        Arc::new(FlushPool { shared, threads })
    }

    /// An explicitly-constructed pool with `threads` workers (min 1).
    /// The owner decides its lifetime: call [`FlushPool::shutdown`]
    /// when done, or the workers idle forever.
    pub fn with_threads(threads: usize) -> Arc<FlushPool> {
        Self::spawn_pool(threads, "rbio-pool")
    }

    /// Worker-thread count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Ask this pool's workers to exit once their queues are empty.
    /// Graceful: queued jobs still run; new registrations panic.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work.notify_all();
    }

    /// Install `pool` as the process's service-owned pool, returning
    /// the previously installed one (which the caller should shut
    /// down once its writers are quiesced). [`FlushPool::current`] and
    /// the [`FlushPool::global`] shim route through the installed pool,
    /// so *re*-installing is how a service reconfigures flushing at
    /// runtime.
    pub fn install(pool: Arc<FlushPool>) -> Option<Arc<FlushPool>> {
        INSTALLED
            .write()
            .expect("installed pool lock")
            .replace(pool)
    }

    /// Remove the installed service pool, returning it (if any).
    pub fn uninstall() -> Option<Arc<FlushPool>> {
        INSTALLED.write().expect("installed pool lock").take()
    }

    /// The currently installed service-owned pool, if any.
    pub fn installed() -> Option<Arc<FlushPool>> {
        INSTALLED.read().expect("installed pool lock").clone()
    }

    /// Compatibility shim for the historical process-wide pool. Routes
    /// to the installed service pool when one exists (so legacy callers
    /// see reconfiguration instead of frozen first-use state), else
    /// lazily creates the legacy global. Every use bumps the
    /// `stale_global_pool_uses` profiling counter — the caller should
    /// migrate to [`FlushPool::current`] or an explicit pool handle.
    pub fn global() -> Arc<FlushPool> {
        counters::add_stale_global_pool_uses(1);
        if let Some(p) = Self::installed() {
            return p;
        }
        Arc::clone(Self::global_arc())
    }

    /// The pool executors should register with: the controlled check
    /// pool while a deterministic run is active, else the installed
    /// service pool, else the legacy global pool.
    pub fn current() -> Arc<FlushPool> {
        if sched::controlled() {
            if let Some(p) = CHECK_POOL.read().expect("check pool lock").as_ref() {
                return Arc::clone(p);
            }
        }
        if let Some(p) = Self::installed() {
            return p;
        }
        Arc::clone(Self::global_arc())
    }

    /// Create (once) the controlled pool with `threads` workers named
    /// `flush{i}`, each registered with the installed scheduler. The
    /// pool persists for the process; workers park between runs.
    #[doc(hidden)]
    pub fn init_check_pool(threads: usize) {
        let mut slot = CHECK_POOL.write().expect("check pool lock");
        if slot.is_some() {
            return;
        }
        let shared = Arc::new(Shared::new());
        for i in 0..threads {
            sched::spawning();
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rbio-check-flush-{i}"))
                .spawn(move || {
                    sched::register(&format!("flush{i}"));
                    worker_loop(&s)
                })
                .expect("spawn check flush worker");
        }
        *slot = Some(Arc::new(FlushPool { shared, threads }));
    }

    /// Reset the controlled pool's writer table between runs so slot
    /// indices (`wid` in events) are assigned identically on every run —
    /// without this, the free-list order left by run *k* leaks into run
    /// *k+1*'s event stream and breaks byte-for-byte replay. Callers must
    /// guarantee no run is active and all pool workers are parked.
    #[doc(hidden)]
    pub fn reset_check_pool() {
        let slot = CHECK_POOL.read().expect("check pool lock");
        let Some(pool) = slot.as_ref() else { return };
        let mut g = pool.shared.inner.lock().expect("pool lock");
        assert!(
            g.runnable.is_empty() && g.writers.iter().all(|w| !w.occupied && w.in_flight == 0),
            "reset_check_pool during an active run"
        );
        g.writers.clear();
        g.free.clear();
    }

    /// Register one writer pipeline of `depth` outstanding jobs
    /// (depth 2 = double buffering). `depth` must be ≥ 1.
    pub fn register(
        &self,
        rank: Rank,
        depth: u32,
        faults: FaultPlan,
        tuning: WriterTuning,
    ) -> WriterHandle {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        assert!(
            !self.shared.stop.load(Ordering::Acquire),
            "register on a shut-down flush pool"
        );
        let ctx = WriterCtx {
            rank,
            wid: 0, // patched below once the slot is known
            faults,
            write_retries: tuning.write_retries,
            retry_backoff: tuning.retry_backoff,
            jitter_seed: tuning.jitter_seed,
            beat: tuning.beat,
            backend: crash::wrap_if_recording(
                tuning
                    .backend
                    .unwrap_or_else(|| backend::resolve(backend::BackendKind::Default)),
            ),
        };
        let state = WriterState {
            ctx,
            queue: VecDeque::new(),
            in_flight: 0,
            active: false,
            enqueued: false,
            error: None,
            retries: 0,
            seq: 0,
            occupied: true,
            hedge_after: tuning.hedge_after,
            running: None,
        };
        let mut g = self.shared.inner.lock().expect("pool lock");
        let wid = match g.free.pop() {
            Some(w) => {
                g.writers[w] = state;
                w
            }
            None => {
                g.writers.push(state);
                g.writers.len() - 1
            }
        };
        g.writers[wid].ctx.wid = wid;
        sched::emit(|| sched::Event::WriterRegistered { wid, rank });
        WriterHandle {
            shared: Arc::clone(&self.shared),
            wid,
            depth: depth as usize,
        }
    }
}

/// One rank's submission endpoint into the pool. Jobs run FIFO; `submit`
/// blocks while `depth` jobs are outstanding; `drain` waits for an empty
/// pipeline and reports the first latched error.
pub struct WriterHandle {
    shared: Arc<Shared>,
    wid: usize,
    depth: usize,
}

impl WriterHandle {
    /// Enqueue `job`, blocking while the pipeline is full. Fails fast
    /// with the latched error if an earlier job already failed.
    pub fn submit(&self, job: FlushJob) -> Result<(), PipelineError> {
        let mut g = self.shared.inner.lock().expect("pool lock");
        loop {
            let w = &mut g.writers[self.wid];
            if let Some(e) = w.error.take() {
                sched::emit(|| sched::Event::ErrorCleared { wid: self.wid });
                return Err(e);
            }
            if w.in_flight < self.depth {
                break;
            }
            g = pool_wait(&self.shared, &self.shared.done, g, Point::SubmitFull);
        }
        sched::emit(|| sched::Event::Submit {
            wid: self.wid,
            kind: job.kind(),
            hash: job.fingerprint(),
        });
        let w = &mut g.writers[self.wid];
        w.queue.push_back(job);
        w.in_flight += 1;
        // `!w.enqueued` is the PR 2 fix: without it, two back-to-back
        // submits ahead of a busy pool enqueue the writer twice and two
        // threads drain one queue concurrently.
        let enqueue = if REVERT_PR2_DOUBLE_ENQUEUE.load(Ordering::Relaxed) {
            !w.active
        } else {
            !w.active && !w.enqueued
        };
        if enqueue {
            w.enqueued = true;
            g.runnable.push_back(self.wid);
            self.shared.work.notify_one();
        }
        drop(g);
        sched::yield_now(Point::Submitted);
        Ok(())
    }

    /// Wait for every submitted job to finish. Returns the background
    /// retry count on success, or the first latched error.
    ///
    /// When a hedge deadline is configured and the drain stalls on an
    /// in-flight write past it, the drainer re-issues that write's bytes
    /// itself (straggler mitigation): pwrite is idempotent for identical
    /// bytes at identical offsets, so whichever copy lands last changes
    /// nothing, and the hedge never touches the fault plan's logical
    /// write accounting. The drain still waits for the original job —
    /// hedging bounds *data* latency (the bytes are durable on disk), not
    /// the job bookkeeping.
    pub fn drain(&self) -> Result<u64, PipelineError> {
        let mut g = self.shared.inner.lock().expect("pool lock");
        while g.writers[self.wid].in_flight > 0 {
            let hedge = g.writers[self.wid].hedge_after;
            match hedge {
                Some(after) if !sched::registered() => {
                    let (ng, timed_out) =
                        self.shared.done.wait_timeout(g, after).expect("pool lock");
                    g = ng;
                    if timed_out.timed_out() {
                        g = self.hedge_current(g);
                    }
                }
                _ => g = pool_wait(&self.shared, &self.shared.done, g, Point::DrainWait),
            }
        }
        let w = &mut g.writers[self.wid];
        let retries = std::mem::take(&mut w.retries);
        match w.error.take() {
            Some(e) => {
                sched::emit(|| sched::Event::ErrorCleared { wid: self.wid });
                Err(e)
            }
            None => Ok(retries),
        }
    }

    /// Issue a hedged duplicate of this writer's currently-running write
    /// job, at most once per job. Runs outside the pool lock.
    fn hedge_current<'a>(&'a self, mut g: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        let w = &mut g.writers[self.wid];
        let Some(snap) = w.running.as_mut() else {
            return g;
        };
        if snap.hedged {
            return g;
        }
        snap.hedged = true;
        let file = Arc::clone(&snap.file);
        let offset = snap.offset;
        let bufs: Vec<Bytes> = snap.bufs.clone();
        drop(g);
        let mut off = offset;
        for b in &bufs {
            // Best-effort: the original job is still running and its
            // error handling is authoritative; a hedge failure is noise.
            // The full-delivery loop counts any short-write continuation
            // it needs as a short-write retry — distinct from the one
            // hedge counted below.
            if fault::write_full_at(&file, off, b, 0).is_err() {
                break;
            }
            off += b.len() as u64;
        }
        counters::add_hedged_jobs(1);
        self.shared.inner.lock().expect("pool lock")
    }
}

impl Drop for WriterHandle {
    fn drop(&mut self) {
        // Quiesce (jobs hold no reference to the handle, but the slot
        // must not be reused while its queue drains), then free the slot.
        let mut g = self.shared.inner.lock().expect("pool lock");
        while g.writers[self.wid].in_flight > 0 {
            g = pool_wait(&self.shared, &self.shared.done, g, Point::QuiesceWait);
        }
        let w = &mut g.writers[self.wid];
        w.occupied = false;
        w.error = None;
        w.queue.clear();
        g.free.push(self.wid);
        sched::emit(|| sched::Event::WriterFreed { wid: self.wid });
    }
}

fn worker_loop(shared: &Shared) {
    let mut g = shared.inner.lock().expect("pool lock");
    loop {
        let wid = loop {
            if let Some(w) = g.runnable.pop_front() {
                break w;
            }
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            g = pool_wait(shared, &shared.work, g, Point::WorkerIdle);
        };
        sched::emit(|| sched::Event::WorkerClaim {
            wid,
            was_active: g.writers[wid].active,
        });
        g.writers[wid].enqueued = false;
        g.writers[wid].active = true;
        loop {
            let w = &mut g.writers[wid];
            let Some(job) = w.queue.pop_front() else {
                w.active = false;
                break;
            };
            let skip = w.error.is_some() || !w.occupied;
            let ctx = w.ctx.clone();
            // A run of consecutive write jobs can go to the backend as
            // one submitted batch — except when every job needs per-job
            // treatment: skipping (latched error) or hedging (the hedge
            // snapshot tracks exactly one running job).
            let max_batch = if skip || w.hedge_after.is_some() {
                1
            } else {
                ctx.backend.max_batch().max(1)
            };
            let is_write =
                |j: &FlushJob| matches!(j, FlushJob::Write { .. } | FlushJob::WriteV { .. });
            if max_batch > 1 && is_write(&job) {
                let mut jobs = vec![job];
                while jobs.len() < max_batch && w.queue.front().is_some_and(is_write) {
                    jobs.push(w.queue.pop_front().expect("front checked"));
                }
                let base_seq = w.seq;
                w.seq += jobs.len() as u64;
                for (k, j) in jobs.iter().enumerate() {
                    let seq = base_seq + k as u64;
                    sched::emit(|| sched::Event::JobStart {
                        wid,
                        seq,
                        kind: j.kind(),
                        hash: j.fingerprint(),
                        skipped: false,
                    });
                }
                drop(g);
                sched::yield_now(Point::JobRun);
                let n = jobs.len();
                let outcome = run_write_batch(&ctx, base_seq, jobs);
                g = shared.inner.lock().expect("pool lock");
                let w = &mut g.writers[wid];
                w.retries += u64::from(outcome.retries);
                let err_idx = outcome.error.as_ref().map(|(i, _)| *i);
                if let Some((_, e)) = outcome.error {
                    if w.error.is_none() {
                        w.error = Some(write_error(ctx.rank, e));
                        sched::emit(|| sched::Event::ErrorLatched { wid });
                    }
                }
                for k in 0..n {
                    // Linked-op semantics: the failing op and everything
                    // after it (canceled, never executed) end not-ok.
                    let ok = err_idx.is_none_or(|i| k < i);
                    sched::emit(|| sched::Event::JobEnd { wid, ok });
                }
                w.in_flight -= n;
                shared.done.notify_all();
                continue;
            }
            let seq = w.seq;
            w.seq += 1;
            if !skip && w.hedge_after.is_some() {
                // Expose the job to hedged re-submits while it runs.
                w.running = match &job {
                    FlushJob::Write { file, offset, data } => Some(HedgeSnapshot {
                        file: Arc::clone(file),
                        offset: *offset,
                        bufs: vec![data.clone()],
                        hedged: false,
                    }),
                    FlushJob::WriteV { file, offset, bufs } => Some(HedgeSnapshot {
                        file: Arc::clone(file),
                        offset: *offset,
                        bufs: bufs.clone(),
                        hedged: false,
                    }),
                    FlushJob::Close { .. } | FlushJob::Commit { .. } => None,
                };
            }
            sched::emit(|| sched::Event::JobStart {
                wid,
                seq,
                kind: job.kind(),
                hash: job.fingerprint(),
                skipped: skip,
            });
            if !skip && matches!(job, FlushJob::Commit { .. }) {
                sched::emit(|| sched::Event::CommitExecuted { wid });
            }
            drop(g);
            sched::yield_now(Point::JobRun);
            let res = if skip { Ok(0) } else { run_job(&ctx, seq, job) };
            g = shared.inner.lock().expect("pool lock");
            let w = &mut g.writers[wid];
            w.running = None;
            let ok = res.is_ok();
            match res {
                Ok(attempts) => w.retries += u64::from(attempts),
                Err(e) => {
                    if w.error.is_none() {
                        w.error = Some(e);
                        sched::emit(|| sched::Event::ErrorLatched { wid });
                    }
                }
            }
            sched::emit(|| sched::Event::JobEnd { wid, ok });
            w.in_flight -= 1;
            shared.done.notify_all();
        }
    }
}

/// splitmix64: a tiny, well-mixed PRNG step for jitter derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Map a fault-layer write failure into the pipeline's error space.
fn write_error(rank: Rank, e: fault::WriteError) -> PipelineError {
    match e {
        fault::WriteError::Killed => PipelineError::Killed { rank },
        fault::WriteError::Io(source) => PipelineError::Io(source),
        fault::WriteError::DeadlineExceeded { waited } => PipelineError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("write retries exhausted their deadline after {waited:?}"),
        )),
        fault::WriteError::ShortWrite { written, expected } => PipelineError::Io(io::Error::new(
            io::ErrorKind::WriteZero,
            format!("short write stalled at {written}/{expected} bytes"),
        )),
    }
}

/// Fold a backend batch outcome into the single-job result shape.
fn batch_result(out: backend::BatchOutcome, rank: Rank) -> Result<u32, PipelineError> {
    match out.error {
        Some((_, e)) => Err(write_error(rank, e)),
        None => Ok(out.retries),
    }
}

/// Execute a run of write jobs as one backend batch. Jitter applies once
/// per batch; the liveness beat advances `2·n` total, matching the
/// singleton path's heartbeat rate.
fn run_write_batch(ctx: &WriterCtx, base_seq: u64, jobs: Vec<FlushJob>) -> backend::BatchOutcome {
    let n = jobs.len() as u64;
    if let Some(b) = &ctx.beat {
        b.fetch_add(n, Ordering::Relaxed);
    }
    if let Some(seed) = ctx.jitter_seed {
        if !sched::controlled() {
            let h = splitmix64(seed ^ (u64::from(ctx.rank) << 32) ^ base_seq);
            std::thread::sleep(Duration::from_micros(h % 200));
        }
    }
    let ops: Vec<WriteOp> = jobs
        .into_iter()
        .map(|j| match j {
            FlushJob::Write { file, offset, data } => WriteOp {
                file,
                offset,
                bufs: vec![data],
            },
            FlushJob::WriteV { file, offset, bufs } => WriteOp { file, offset, bufs },
            FlushJob::Close { .. } | FlushJob::Commit { .. } => {
                unreachable!("batches contain only write jobs")
            }
        })
        .collect();
    let out = ctx.backend.run_writes(&ctx.io_ctx(), ops);
    if let Some(b) = &ctx.beat {
        b.fetch_add(n, Ordering::Relaxed);
    }
    out
}

fn run_job(ctx: &WriterCtx, seq: u64, job: FlushJob) -> Result<u32, PipelineError> {
    if let Some(b) = &ctx.beat {
        b.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(seed) = ctx.jitter_seed {
        // Under a controlled scheduler interleavings come from the
        // schedule, not wall-clock jitter.
        if !sched::controlled() {
            let h = splitmix64(seed ^ (u64::from(ctx.rank) << 32) ^ seq);
            std::thread::sleep(Duration::from_micros(h % 200));
        }
    }
    let res = match job {
        FlushJob::Write { file, offset, data } => batch_result(
            ctx.backend.run_writes(
                &ctx.io_ctx(),
                vec![WriteOp {
                    file,
                    offset,
                    bufs: vec![data],
                }],
            ),
            ctx.rank,
        ),
        FlushJob::WriteV { file, offset, bufs } => batch_result(
            ctx.backend
                .run_writes(&ctx.io_ctx(), vec![WriteOp { file, offset, bufs }]),
            ctx.rank,
        ),
        FlushJob::Close { file, fsync } => {
            if fsync {
                // Sticky fsync semantics: a rank whose fsync ever
                // failed can never report a later close durable.
                if let Some(e) = ctx.faults.on_fsync(ctx.rank) {
                    return Err(PipelineError::Io(e));
                }
                ctx.backend.sync_file(&file).map_err(|e| {
                    ctx.faults.latch_fsync_failure(ctx.rank);
                    PipelineError::Io(e)
                })?;
            }
            drop(file);
            Ok(0)
        }
        FlushJob::Commit {
            tmp,
            final_path,
            size,
            fsync,
        } => {
            if ctx.faults.on_commit(ctx.rank) {
                // Die after the data writes, before the rename: the
                // final name must never appear.
                return Err(PipelineError::Killed { rank: ctx.rank });
            }
            commit::commit_file_with_faults(&tmp, &final_path, size, fsync, &ctx.faults, ctx.rank)
                .map(|()| 0)
                .map_err(PipelineError::Io)?;
            sched::emit(|| sched::Event::ExtentCommit {
                owner: ctx.rank,
                by: ctx.rank,
                path_hash: sched::path_fingerprint(&final_path),
            });
            Ok(0)
        }
    };
    if let Some(b) = &ctx.beat {
        b.fetch_add(1, Ordering::Relaxed);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::fs::FileExt;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rbio-pipe-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn open_rw(p: &std::path::Path) -> Arc<File> {
        Arc::new(
            std::fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(p)
                .expect("open"),
        )
    }

    fn handle(rank: Rank, depth: u32, faults: FaultPlan) -> WriterHandle {
        FlushPool::global().register(
            rank,
            depth,
            faults,
            WriterTuning {
                write_retries: 3,
                retry_backoff: Duration::from_micros(100),
                ..WriterTuning::default()
            },
        )
    }

    #[test]
    fn jobs_execute_in_fifo_order() {
        let dir = tmpdir("fifo");
        let file = open_rw(&dir.join("f"));
        let h = handle(0, 2, FaultPlan::none());
        // Overlapping writes: later jobs must win, proving order.
        for i in 0..20u8 {
            h.submit(FlushJob::Write {
                file: Arc::clone(&file),
                offset: 0,
                data: Bytes::from_vec(vec![i; 8]),
            })
            .expect("submit");
        }
        h.drain().expect("drain");
        let mut buf = [0u8; 8];
        file.read_exact_at(&mut buf, 0).expect("read");
        assert_eq!(buf, [19u8; 8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rapid_double_submit_never_double_drains() {
        let dir = tmpdir("race");
        let file = open_rw(&dir.join("f"));
        // Submitting several conflicting writes back-to-back parks them
        // all on the queue before any pool thread claims the writer; a
        // single drainer must still run them FIFO. (Regression: a double
        // runnable enqueue once let two threads drain the same writer
        // concurrently, and with per-job jitter the earlier write could
        // land last.)
        let h = FlushPool::global().register(
            0,
            4,
            FaultPlan::none(),
            WriterTuning {
                write_retries: 3,
                jitter_seed: Some(0xFEED),
                ..WriterTuning::default()
            },
        );
        for round in 0..200u64 {
            for i in 0..4u8 {
                h.submit(FlushJob::Write {
                    file: Arc::clone(&file),
                    offset: 0,
                    data: Bytes::from_vec(vec![i.wrapping_add(round as u8); 32]),
                })
                .expect("submit");
            }
            h.drain().expect("drain");
            let mut buf = [0u8; 32];
            file.read_exact_at(&mut buf, 0).expect("read");
            assert_eq!(buf, [3u8.wrapping_add(round as u8); 32], "round {round}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_latches_and_poisons_later_jobs() {
        let dir = tmpdir("poison");
        let file = open_rw(&dir.join("f.tmp"));
        // Kill rank 7 immediately: the first write latches Killed, and
        // the commit job must be skipped — no final file appears.
        let h = handle(7, 4, FaultPlan::none().kill_writer_after_bytes(7, 0));
        h.submit(FlushJob::Write {
            file: Arc::clone(&file),
            offset: 0,
            data: Bytes::from_vec(vec![1; 64]),
        })
        .expect("submit");
        // The kill surfaces exactly once: at this submit if the write
        // already ran (the commit is then never enqueued), else at drain
        // (the commit is enqueued but skipped by the poisoned pipeline).
        let err = match h.submit(FlushJob::Commit {
            tmp: dir.join("f.tmp"),
            final_path: dir.join("f"),
            size: 64,
            fsync: false,
        }) {
            Err(e) => {
                h.drain().expect("nothing else failed");
                e
            }
            Ok(()) => h.drain().expect_err("must latch the kill"),
        };
        assert!(matches!(err, PipelineError::Killed { rank: 7 }));
        assert!(!dir.join("f").exists(), "final name must not appear");
        // The pipeline is reusable after drain cleared the error.
        h.submit(FlushJob::Close { file, fsync: false })
            .expect("submit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn depth_bounds_outstanding_jobs_without_deadlock() {
        let dir = tmpdir("depth");
        // More writers than pool threads, each pushing more jobs than its
        // depth: every pipeline must still drain.
        let handles: Vec<WriterHandle> = (0..16).map(|r| handle(r, 2, FaultPlan::none())).collect();
        let files: Vec<Arc<File>> = (0..16)
            .map(|r| open_rw(&dir.join(format!("f{r}"))))
            .collect();
        for (r, h) in handles.iter().enumerate() {
            for k in 0..8u64 {
                h.submit(FlushJob::Write {
                    file: Arc::clone(&files[r]),
                    offset: k * 4,
                    data: Bytes::from_vec(vec![r as u8; 4]),
                })
                .expect("submit");
            }
        }
        for (r, h) in handles.iter().enumerate() {
            h.drain().expect("drain");
            let mut buf = Vec::new();
            File::open(dir.join(format!("f{r}")))
                .expect("open")
                .read_to_end(&mut buf)
                .expect("read");
            assert_eq!(buf, vec![r as u8; 32]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stalled_write_is_hedged_by_drain() {
        let dir = tmpdir("hedge");
        let file = open_rw(&dir.join("f"));
        let before = counters::failover_snapshot();
        // Every write on rank 5 stalls well past the hedge deadline: the
        // drain must re-issue the bytes itself and count the hedge.
        let h = FlushPool::global().register(
            5,
            2,
            FaultPlan::none().delay_writes(5, Duration::from_millis(150)),
            WriterTuning {
                write_retries: 3,
                retry_backoff: Duration::from_micros(100),
                hedge_after: Some(Duration::from_millis(10)),
                ..WriterTuning::default()
            },
        );
        h.submit(FlushJob::Write {
            file: Arc::clone(&file),
            offset: 0,
            data: Bytes::from_vec(vec![7; 16]),
        })
        .expect("submit");
        h.drain().expect("drain");
        let delta = counters::failover_snapshot().delta_since(&before);
        assert!(delta.hedged_jobs >= 1, "drain must hedge the delayed write");
        let mut buf = [0u8; 16];
        file.read_exact_at(&mut buf, 0).expect("read");
        assert_eq!(buf, [7u8; 16]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_retries_are_reported_by_drain() {
        let dir = tmpdir("retries");
        let file = open_rw(&dir.join("f"));
        let h = handle(3, 2, FaultPlan::none().fail_nth_write(3, 0, 2));
        h.submit(FlushJob::Write {
            file,
            offset: 0,
            data: Bytes::from_vec(vec![9; 16]),
        })
        .expect("submit");
        assert_eq!(h.drain().expect("drain"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression for the stale-global-pool bug: before explicit pools,
    /// `global()` was a `OnceLock` and any later worker-count change
    /// silently no-oped. Now a service installs an explicit pool, and
    /// *re*-installing one with a different configuration takes effect
    /// immediately for `current()` and the `global()` shim alike.
    #[test]
    fn installed_pool_reconfiguration_takes_effect() {
        let before = counters::service_snapshot();
        let a = FlushPool::with_threads(2);
        let b = FlushPool::with_threads(3);
        assert_eq!(a.threads(), 2);
        assert_eq!(b.threads(), 3);

        FlushPool::install(Arc::clone(&a));
        assert!(Arc::ptr_eq(&FlushPool::current(), &a));
        assert!(Arc::ptr_eq(&FlushPool::global(), &a));

        // Reconfiguration: install a differently-sized pool after first
        // use. Pre-fix, this was the silent no-op; now it must replace.
        let prev = FlushPool::install(Arc::clone(&b)).expect("a was installed");
        assert!(Arc::ptr_eq(&prev, &a));
        assert!(Arc::ptr_eq(&FlushPool::current(), &b));
        assert_eq!(FlushPool::current().threads(), 3);

        // The shim is panic-free but warns through the counter.
        let d = counters::service_snapshot().delta_since(&before);
        assert!(d.stale_global_pool_uses >= 1);

        // Writers registered through the routed handle actually flush.
        let dir = tmpdir("reinstall");
        let file = open_rw(&dir.join("f"));
        let h = FlushPool::current().register(
            9,
            2,
            FaultPlan::none(),
            WriterTuning {
                write_retries: 3,
                retry_backoff: Duration::from_micros(100),
                ..WriterTuning::default()
            },
        );
        h.submit(FlushJob::Write {
            file: Arc::clone(&file),
            offset: 0,
            data: Bytes::from_vec(vec![5; 32]),
        })
        .expect("submit");
        h.drain().expect("drain");
        let mut buf = [0u8; 32];
        file.read_exact_at(&mut buf, 0).expect("read");
        assert_eq!(buf, [5u8; 32]);

        let got = FlushPool::uninstall().expect("b installed");
        assert!(Arc::ptr_eq(&got, &b));
        assert!(Arc::ptr_eq(&FlushPool::current(), FlushPool::global_arc()));
        // a and b are deliberately *not* shut down: a concurrent test
        // may have grabbed one through `current()` during the window.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_pool_refuses_new_writers() {
        let p = FlushPool::with_threads(1);
        let dir = tmpdir("shutdown");
        let file = open_rw(&dir.join("f"));
        let h = p.register(
            0,
            2,
            FaultPlan::none(),
            WriterTuning {
                write_retries: 3,
                retry_backoff: Duration::from_micros(100),
                ..WriterTuning::default()
            },
        );
        h.submit(FlushJob::Write {
            file: Arc::clone(&file),
            offset: 0,
            data: Bytes::from_vec(vec![1; 8]),
        })
        .expect("submit");
        h.drain().expect("drain");
        drop(h);
        p.shutdown();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.register(1, 2, FaultPlan::none(), WriterTuning::default())
        }));
        assert!(r.is_err(), "register after shutdown must panic");
        std::fs::remove_dir_all(&dir).ok();
    }
}
