//! Umbrella crate for the **rbio** reproduction workspace.
//!
//! This crate re-exports every member of the workspace so the top-level
//! integration tests and examples reach the whole system through one
//! dependency. Start with:
//!
//! * [`rbio`] — the checkpointing library itself (strategies, format,
//!   restart, the real threaded executor, the `rt` runtime, the campaign
//!   manager, VTK export, the Eq. 1–7 models);
//! * [`rbio_machine`] — the simulated Blue Gene/P that regenerates the
//!   paper's 16Ki–64Ki-rank results;
//! * [`rbio_nekcem`] — the SEDG Maxwell miniapps and workload constants.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! substitution rationale, and `EXPERIMENTS.md` for paper-vs-measured on
//! every table and figure.

pub use rbio;
pub use rbio_gpfs;
pub use rbio_machine;
pub use rbio_mpiio;
pub use rbio_nekcem;
pub use rbio_net;
pub use rbio_plan;
pub use rbio_profile;
pub use rbio_sim;
pub use rbio_topology;
